"""Shared benchmark plumbing.

Every reproduction benchmark runs its experiment exactly once
(``benchmark.pedantic(rounds=1)``): the experiments simulate 60-80
seconds of cluster time and are deterministic, so repeated rounds
would only re-measure the simulator's wall-clock speed.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` once under pytest-benchmark and return its result."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
