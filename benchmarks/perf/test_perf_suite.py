"""Thin pytest wrappers over the microbenchmark suite.

Run with ``pytest benchmarks/perf -s`` for a local perf report; the CI
perf-smoke job uses the ``python -m repro bench --quick`` CLI instead
(same code path, plus the baseline comparison).
"""

from repro.bench.suite import (
    bench_dmerge_values,
    bench_fig3_e2e,
    bench_kernel_events,
    bench_kernel_timeouts,
    bench_network_msgs,
    bench_structural_copy,
)


def test_perf_kernel_events():
    result = bench_kernel_events(50_000)
    print(f"\nkernel_events: {result['events_per_s']:,.0f} events/s")
    assert result["events_per_s"] > 0


def test_perf_kernel_timeouts():
    result = bench_kernel_timeouts(20_000)
    print(f"\nkernel_timeouts: {result['events_per_s']:,.0f} events/s")
    assert result["events_per_s"] > 0


def test_perf_network_msgs():
    result = bench_network_msgs(20_000)
    print(f"\nnetwork_msgs: {result['msgs_per_s']:,.0f} msgs/s")
    assert result["msgs_per_s"] > 0


def test_perf_dmerge_values():
    result = bench_dmerge_values(20_000)
    print(f"\ndmerge_values: {result['values_per_s']:,.0f} values/s")
    assert result["values_per_s"] > 0


def test_perf_structural_copy_beats_deepcopy():
    """The satellite win, asserted: the structural snapshot copy must
    stay well ahead of ``copy.deepcopy`` on checkpoint-shaped state."""
    result = bench_structural_copy(40, 20, 20)
    print(f"\nstructural_copy: {result['speedup']:.1f}x vs deepcopy")
    assert result["speedup"] > 3.0


def test_perf_fig3_quick_end_to_end():
    result = bench_fig3_e2e(quick=True)
    print(
        f"\nfig3 quick: {result['sim_duration_s']:.0f} sim-s in "
        f"{result['wall_s']:.3f} s ({result['realtime_factor']:.1f}x realtime)"
    )
    # Simulation must comfortably outrun real time on any machine.
    assert result["realtime_factor"] > 1.0
