"""ABL-BATCH -- value batching (paper §V-B).

"Since multiple values or skip messages can be decided in one Paxos
instance (batching), in our prototype the pointer refers to a value."
Batching amortizes the per-instance protocol cost; this bench sweeps
the batch size under a coordinator whose CPU charges per instance, the
regime where batching matters.
"""

from repro.harness.broadcast import BroadcastClient, BroadcastReplica
from repro.harness.report import comparison_table, section
from repro.multicast.stream import StreamDeployment
from repro.paxos.config import StreamConfig
from repro.sim import Environment, LinkSpec, Network, RngRegistry


def run_batch(batch_max_tokens: int, duration: float = 8.0):
    env = Environment()
    rng = RngRegistry(37)
    net = Network(env, rng=rng, default_link=LinkSpec(latency=0.0005))
    config = StreamConfig(
        name="S1",
        acceptors=("S1/a1", "S1/a2", "S1/a3"),
        lam=40_000,                     # keep λ above the sweep's reach
        delta_t=0.05,
        batch_max_tokens=batch_max_tokens,
        cpu_cost_per_batch=0.0005,      # 0.5 ms of coordinator CPU/instance
        window=8,                       # < thread count: pending queues form
    )
    deployment = StreamDeployment(env, net, config)
    deployment.start()
    directory = {"S1": deployment}
    replica = BroadcastReplica(env, net, "replica", "G", directory, cpu_rate=100_000)
    replica.bootstrap(["S1"])
    client = BroadcastClient(
        env, net, "client", directory, value_size=512, rng=rng.stream("c")
    )
    client.start_threads("S1", 64)
    env.run(until=duration)
    return replica.delivered_ops.rate_between(1.0, duration)


def test_bench_ablation_batching(run_once):
    def sweep():
        return {size: run_batch(size) for size in (1, 4, 16)}

    rates = run_once(sweep)
    print(section("Ablation: batch size under a per-instance CPU cost"))
    print(
        comparison_table(
            [
                (f"throughput @ batch={size}", "grows with batch", rate)
                for size, rate in sorted(rates.items())
            ]
        )
    )
    # With ~2000 instances/s of coordinator CPU, unbatched tops out
    # around 2000 ops/s; batches of 16 lift it several-fold.
    assert rates[1] < 2600
    assert rates[4] > 1.8 * rates[1]
    assert rates[16] >= 0.99 * rates[4]
