"""ABL-DT -- Δt sensitivity (paper §VII-A, λ=4000 / Δt=100 ms).

Δt is the skip sampling interval: an idle stream's positions advance in
Δt-sized steps, so values of *other* streams wait on average ~Δt/2 for
the merge to cross their position.  This bench sweeps Δt and shows the
latency cost of coarse sampling -- the trade-off studied in
"Stretching Multi-Ring Paxos" (Benz et al., SAC 2015), which the
paper's implementation builds on.
"""

from repro.harness.broadcast import BroadcastClient, BroadcastReplica
from repro.harness.report import comparison_table, section
from repro.multicast.stream import StreamDeployment
from repro.paxos.config import StreamConfig
from repro.sim import Environment, LinkSpec, Network, RngRegistry


def run_pair(delta_t: float, duration: float = 10.0):
    """One loaded stream merged with one idle stream; report p50 latency."""
    env = Environment()
    rng = RngRegistry(23)
    net = Network(env, rng=rng, default_link=LinkSpec(latency=0.0005))
    directory = {}
    for name in ("S1", "S2"):
        config = StreamConfig(
            name=name,
            acceptors=(f"{name}/a1", f"{name}/a2", f"{name}/a3"),
            lam=4000,
            delta_t=delta_t,
        )
        directory[name] = StreamDeployment(env, net, config)
        directory[name].start()
    replica = BroadcastReplica(env, net, "replica", "G", directory, cpu_rate=50_000)
    replica.bootstrap(["S1", "S2"])
    client = BroadcastClient(
        env, net, "client", directory, value_size=1024,
        timeout=duration, rng=rng.stream("c"),
    )
    client.start_threads("S1", 4)
    env.run(until=duration)
    return client.latency.percentile(50) * 1000.0   # ms


def test_bench_ablation_delta_t_sensitivity(run_once):
    def sweep():
        return {dt: run_pair(dt) for dt in (0.010, 0.050, 0.100, 0.200)}

    latencies = run_once(sweep)
    rows = [
        (f"p50 latency @ Δt={int(dt * 1000)} ms", "grows ~Δt", ms)
        for dt, ms in sorted(latencies.items())
    ]
    print(section("Ablation: skip sampling interval Δt vs merge latency"))
    print(comparison_table(rows))
    # Latency grows with Δt and is dominated by ~Δt/2 for coarse Δt.
    ordered = [latencies[dt] for dt in sorted(latencies)]
    assert ordered == sorted(ordered)
    assert latencies[0.200] > 4 * latencies[0.010]
    assert latencies[0.200] >= 0.35 * 200 / 2     # at least ~a third of Δt/2
    assert latencies[0.200] <= 2.0 * 200          # and not absurdly above Δt
