"""ABL-RING -- ring vs classic Phase-2 dissemination (paper §VI).

URingPaxos "pipelines acceptors in a stream": Phase 2 travels around an
acceptor ring (one hop per acceptor) instead of the classic fan-out to
all acceptors plus a quorum of replies plus a decision fan-out.  The
ring sends far fewer messages per decision at the cost of serialized
hops; this bench measures both modes under identical load.
"""

from repro.harness.broadcast import BroadcastClient, BroadcastReplica
from repro.harness.report import comparison_table, section
from repro.multicast.stream import StreamDeployment
from repro.paxos.config import StreamConfig
from repro.sim import Environment, LinkSpec, Network, RngRegistry


def run_mode(ring_mode: bool, duration: float = 10.0):
    env = Environment()
    rng = RngRegistry(29)
    net = Network(env, rng=rng, default_link=LinkSpec(latency=0.0005))
    config = StreamConfig(
        name="S1",
        acceptors=("S1/a1", "S1/a2", "S1/a3"),
        ring_mode=ring_mode,
        lam=4000,
        delta_t=0.05,
    )
    deployment = StreamDeployment(env, net, config)
    deployment.start()
    directory = {"S1": deployment}
    replica = BroadcastReplica(env, net, "replica", "G", directory, cpu_rate=50_000)
    replica.bootstrap(["S1"])
    client = BroadcastClient(
        env, net, "client", directory, value_size=1024, rng=rng.stream("c")
    )
    client.start_threads("S1", 8)
    env.run(until=duration)
    ops = replica.delivered_ops.total
    return {
        "throughput": replica.delivered_ops.rate_between(1.0, duration),
        "latency_p95_ms": client.latency.percentile(95) * 1000.0,
        "msgs_per_op": net.messages_sent / max(ops, 1),
    }


def test_bench_ablation_ring_vs_classic(run_once):
    def both():
        return run_mode(ring_mode=True), run_mode(ring_mode=False)

    ring, classic = run_once(both)
    print(section("Ablation: ring vs classic Phase-2 dissemination"))
    print(
        comparison_table(
            [
                ("ring: messages/op", "low (pipelined)", ring["msgs_per_op"]),
                ("classic: messages/op", "high (fan-out)", classic["msgs_per_op"]),
                ("ring: p95 latency (ms)", "~n_acceptors hops", ring["latency_p95_ms"]),
                ("classic: p95 latency (ms)", "~2 hops + quorum", classic["latency_p95_ms"]),
                ("ring: throughput (ops/s)", "-", ring["throughput"]),
                ("classic: throughput (ops/s)", "-", classic["throughput"]),
            ]
        )
    )
    # The ring needs fewer messages per decided value...
    assert ring["msgs_per_op"] < classic["msgs_per_op"]
    # ...while the classic mode wins on latency (parallel fan-out).
    assert classic["latency_p95_ms"] <= ring["latency_p95_ms"] + 0.5
    assert ring["throughput"] > 0 and classic["throughput"] > 0
