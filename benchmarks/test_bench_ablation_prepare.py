"""ABL-PREP -- the prepare_msg optimization (paper §V-C).

Fig. 3 subscribes *without* the hint and shows a dip while the new
stream is recovered; Fig. 5 subscribes *with* it and shows none.  This
ablation runs the same subscription twice and quantifies the dip.
"""

from repro.harness.experiments import VerticalConfig, run_vertical
from repro.harness.report import comparison_table, section
from repro.metrics import dip_and_recovery


def _dip(result, config):
    baseline = result.interval_averages[0]
    return dip_and_recovery(
        result.throughput,
        event_time=config.add_interval,
        window=10.0,
        baseline=baseline,
    )


def test_bench_ablation_prepare_msg(run_once):
    # One subscription is enough to expose the effect; heavier recovery
    # cost makes the no-hint stall clearly visible.
    base = dict(
        n_streams=2,
        add_interval=15.0,
        duration=30.0,
        recovery_instance_cost=0.004,
    )

    def both():
        without = run_vertical(VerticalConfig(use_prepare=False, **base))
        with_hint = run_vertical(VerticalConfig(use_prepare=True, **base))
        return without, with_hint

    without, with_hint = run_once(both)
    depth_no, recovery_no = _dip(without, without.config)
    depth_yes, recovery_yes = _dip(with_hint, with_hint.config)

    print(section("Ablation: subscription with vs without prepare_msg"))
    print(
        comparison_table(
            [
                ("dip floor, no hint (frac of rate)", "deep (Fig. 3)", depth_no),
                ("dip floor, with hint", "~1.0 (Fig. 5)", depth_yes),
                ("recovery time, no hint (s)", ">0", recovery_no),
                ("recovery time, with hint (s)", "~0", recovery_yes),
            ]
        )
    )
    # Without the hint the merge stalls while scanning the new stream.
    assert depth_no < 0.85
    # With it, recovery happened in the background: no meaningful dip.
    assert depth_yes > depth_no + 0.1
    assert depth_yes > 0.9
    assert recovery_yes <= recovery_no
