"""ABL-RECONF -- Elastic Paxos vs classical reconfiguration (paper §VIII-C).

Puts the Fig. 5 dynamic-subscription reconfiguration side by side with
the two strategies the paper argues against: stop-and-restart (service
downtime) and Lamport's membership-as-command (no downtime, but the
pipeline is serialized so steady throughput collapses).
"""

from repro.baselines import (
    BaselineReconfigConfig,
    run_membership_command_reconfig,
    run_stop_restart_reconfig,
)
from repro.harness.experiments import ReconfigConfig, run_reconfig
from repro.harness.report import comparison_table, section


def test_bench_ablation_reconfiguration_strategies(run_once):
    def all_three():
        elastic = run_reconfig(ReconfigConfig(duration=70.0))
        baseline_config = BaselineReconfigConfig(duration=70.0)
        stop = run_stop_restart_reconfig(baseline_config)
        membership = run_membership_command_reconfig(baseline_config)
        return elastic, stop, membership

    elastic, stop, membership = run_once(all_three)

    print(section("Ablation: reconfiguration strategies under the Fig. 5 load"))
    print(
        comparison_table(
            [
                ("elastic: steady ops/s", "~2150", elastic.steady_rate),
                ("elastic: downtime (s)", 0.0, 0.0 if elastic.min_rate_during_switch > 0 else 1.0),
                ("elastic: switch overhead", "none", elastic.overhead_ratio),
                ("stop-restart: steady ops/s", "same as elastic", stop.steady_rate),
                ("stop-restart: downtime (s)", ">10", stop.downtime_seconds),
                ("membership-cmd: steady ops/s", "<= elastic", membership.steady_rate),
                ("membership-cmd: switch floor (ops/s)", "deep dip (drain+phase1)",
                 membership.min_rate_during_switch),
                ("membership-cmd: p95 (ms)", "> elastic", membership.latency_p95_ms),
            ]
        )
    )
    # Elastic Paxos: no downtime, modest transient.
    assert elastic.min_rate_during_switch > 0.7 * elastic.steady_rate
    # Stop-and-restart: comparable steady state but a long outage.
    assert stop.downtime_seconds >= 8.0
    assert stop.steady_rate > 0.9 * elastic.steady_rate
    # Membership-as-command stays up but pays for serialized instances:
    # larger batches mask the throughput cost at this load, while the
    # switch (drain + Phase 1) dips deep and latency stays worse.
    assert membership.downtime_seconds <= 2.0
    assert membership.steady_rate <= 1.02 * elastic.steady_rate
    assert membership.min_rate_during_switch < 0.5 * elastic.min_rate_during_switch
    assert membership.latency_p95_ms > 1.2 * elastic.latency_p95_ms
