"""ABL-SKIP -- the λ/Δt skip mechanism (paper §III-B).

"To handle imbalanced traffic among streams and ensure that messages
will not be delivered at the pace of the slowest stream, processes can
skip Paxos executions in a stream."  The ablation merges a loaded
stream with an idle one, with and without skips.
"""

from repro.baselines import SkipAblationConfig, run_skip_ablation
from repro.harness.report import comparison_table, section


def test_bench_ablation_skip_mechanism(run_once):
    def both():
        enabled = run_skip_ablation(SkipAblationConfig(skip_enabled=True))
        disabled = run_skip_ablation(SkipAblationConfig(skip_enabled=False))
        trickle = run_skip_ablation(
            SkipAblationConfig(skip_enabled=False, idle_stream_load=5.0)
        )
        return enabled, disabled, trickle

    enabled, disabled, trickle = run_once(both)

    print(section("Ablation: merging a loaded stream with an idle one"))
    print(
        comparison_table(
            [
                ("delivered ops/s, skips on", "full rate", enabled.delivered_rate),
                ("delivered ops/s, skips off", "0 (starved)", disabled.delivered_rate),
                (
                    "skips off + 5 ops/s trickle",
                    "pace of slowest stream",
                    trickle.delivered_rate,
                ),
            ]
        )
    )
    # With skips the idle stream advances at λ and delivery flows.
    assert enabled.delivered_rate > 50
    # Without skips the round-robin merge starves entirely...
    assert disabled.merge_blocked
    # ...and with a trickle it crawls at the slowest stream's pace.
    assert 0 < trickle.delivered_rate < 0.3 * enabled.delivered_rate
