"""ABL-DISK -- acceptor stable storage as the stream bottleneck (§IV-A1).

"The performance of atomic broadcast will be typically limited by the
performance of the coordinator (CPU) or the acceptors (disk write
performance)."  The paper's cloud had no real disks (everything ran in
memory); this bench gives the acceptors a synchronous write device and
shows the stream throughput pinned by fsync latency -- the very
bottleneck that dynamically adding streams (Fig. 3) removes.
"""

from repro.harness.broadcast import BroadcastClient, BroadcastReplica
from repro.harness.report import comparison_table, section
from repro.multicast.stream import StreamDeployment
from repro.paxos.config import StreamConfig
from repro.sim import Environment, LinkSpec, Network, RngRegistry
from repro.storage import StableStore


def run_with_disk(write_latency: float, duration: float = 8.0):
    env = Environment()
    rng = RngRegistry(41)
    net = Network(env, rng=rng, default_link=LinkSpec(latency=0.0003))
    config = StreamConfig(
        name="S1",
        acceptors=("S1/a1", "S1/a2", "S1/a3"),
        lam=4000,
        delta_t=0.05,
        batch_max_tokens=1,     # isolate the per-write cost
        window=1,               # synchronous acceptors serialize anyway
    )
    deployment = StreamDeployment(
        env,
        net,
        config,
        stable_store_factory=lambda name: StableStore(
            env, write_latency=write_latency, name=name
        ),
    )
    deployment.start()
    directory = {"S1": deployment}
    replica = BroadcastReplica(env, net, "replica", "G", directory, cpu_rate=100_000)
    replica.bootstrap(["S1"])
    client = BroadcastClient(
        env, net, "client", directory, value_size=1024,
        timeout=duration, rng=rng.stream("c"),
    )
    client.start_threads("S1", 16)
    env.run(until=duration)
    return replica.delivered_ops.rate_between(1.0, duration)


def test_bench_ablation_acceptor_storage(run_once):
    def sweep():
        return {
            "memory (paper's setup)": run_with_disk(0.0),
            "fsync 1 ms": run_with_disk(0.001),
            "fsync 5 ms": run_with_disk(0.005),
        }

    rates = run_once(sweep)
    print(section("Ablation: acceptor stable-storage latency caps a stream"))
    print(
        comparison_table(
            [(label, "slower with sync writes", rate) for label, rate in rates.items()]
        )
    )
    memory = rates["memory (paper's setup)"]
    one_ms = rates["fsync 1 ms"]
    five_ms = rates["fsync 5 ms"]
    assert one_ms < memory
    assert five_ms < one_ms
    # With a ring of 3 acceptors each paying a serialized 5 ms write,
    # an instance takes >= 15 ms: well under 100 ops/s.
    assert five_ms < 100
