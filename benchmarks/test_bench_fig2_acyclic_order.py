"""FIG2 -- acyclic ordering scenario (paper §V-A, Figure 2).

Figure 2 is the paper's correctness illustration: groups G1 and G2
cross-subscribe to each other's stream and every replica must order the
shared suffix identically.  This benchmark replays the exact figure and
then measures the dMerge's raw merge throughput (tokens merged per
second of wall time), since the merge is on every delivery's hot path.
"""

from repro.multicast.elastic import ElasticMerger
from repro.multicast.stream import TokenLog
from repro.harness.report import comparison_table, section
from repro.paxos.types import AppValue, SkipToken, SubscribeMsg


def build_figure2():
    s1, s2 = TokenLog(), TokenLog()
    sub_g1 = SubscribeMsg(group="G1", stream="S2")
    sub_g2 = SubscribeMsg(group="G2", stream="S1")
    s1.append(SkipToken(count=9))
    s2.append(SkipToken(count=9))
    for token in (AppValue(payload="m1"), sub_g1, AppValue(payload="m3"),
                  AppValue(payload="m5"), sub_g2, AppValue(payload="m7")):
        s1.append(token)
    for token in (AppValue(payload="m2"), sub_g1, AppValue(payload="m4"),
                  sub_g2, AppValue(payload="m6"), AppValue(payload="m8")):
        s2.append(token)
    return {"S1": s1, "S2": s2}


def replay(group, initial, logs):
    delivered = []
    merger = ElasticMerger(
        group=group,
        deliver=lambda v, s, p: delivered.append(v.payload),
        stream_provider=lambda name: logs[name],
    )
    merger.bootstrap({name: logs[name] for name in initial})
    merger.pump()
    return delivered


def merge_throughput_run(n_tokens=200_000):
    """Merge ``n_tokens`` across two streams through one dMerge."""
    s1, s2 = TokenLog(), TokenLog()
    logs = {"S1": s1, "S2": s2}
    delivered = []
    merger = ElasticMerger(
        group="G",
        deliver=lambda v, s, p: delivered.append(None),
        stream_provider=lambda name: logs[name],
    )
    merger.bootstrap(logs)
    per_stream = n_tokens // 2
    for i in range(per_stream):
        s1.append(AppValue(payload=i, size=0))
        s2.append(AppValue(payload=i, size=0))
    merger.pump()
    assert len(delivered) == per_stream * 2
    return len(delivered)


def test_bench_fig2_scenario_and_merge_throughput(benchmark):
    logs = build_figure2()
    r1 = replay("G1", ["S1"], logs)
    r2 = replay("G2", ["S2"], logs)

    print(section("Figure 2: acyclic ordering across cross-subscribing groups"))
    print(
        comparison_table(
            [
                ("G1 delivery order", "m1 m3 m4 m5 m6 m7 m8", " ".join(r1)),
                ("G2 delivery order", "m2 m4 m6 m7 m8", " ".join(r2)),
            ]
        )
    )
    assert r1 == ["m1", "m3", "m4", "m5", "m6", "m7", "m8"]
    assert r2 == ["m2", "m4", "m6", "m7", "m8"]
    common1 = [p for p in r1 if p in set(r2)]
    common2 = [p for p in r2 if p in set(r1)]
    assert common1 == common2, "acyclic order violated"

    merged = benchmark(merge_throughput_run)
    assert merged == 200_000
