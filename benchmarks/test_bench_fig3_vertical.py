"""FIG3 -- vertical scalability (paper §VII-C, Figure 3).

Regenerates the Fig. 3 series: aggregated replica throughput while a
new stream is subscribed every 15 s, per-phase interval averages, the
post-subscribe dip, and the 95th-percentile latency.
"""

from repro.harness.experiments import VerticalConfig, run_vertical
from repro.harness.report import comparison_table, section, series_sparkline
from repro.metrics import is_monotonic_increasing, step_ratios

PAPER_INTERVAL_AVERAGES = [735.0, 1498.0, 2391.0, 2660.0]
PAPER_SCALING = 3.62
PAPER_P95_MS = 8.3


def test_bench_fig3_vertical_scalability(run_once):
    result = run_once(run_vertical, VerticalConfig())

    rows = [
        (f"interval {i + 1} avg (ops/s)", paper, measured)
        for i, (paper, measured) in enumerate(
            zip(PAPER_INTERVAL_AVERAGES, result.interval_averages)
        )
    ]
    rows.append(("scaling factor (4 streams)", PAPER_SCALING, result.scaling_factor))
    rows.append(("latency p95 (ms)", PAPER_P95_MS, result.latency_p95_ms))
    print(section("Figure 3: dynamically adding streams (every 15 s)"))
    print(comparison_table(rows))
    print("throughput:", series_sparkline(result.throughput))
    for stream in sorted(result.per_stream):
        print(f"{stream:>10}:", series_sparkline(result.per_stream[stream]))

    # Shape assertions: staircase up, diminishing return, sane latency.
    assert is_monotonic_increasing(result.interval_averages, tolerance=0.02)
    ratios = step_ratios(result.interval_averages)
    assert 1.7 <= ratios[1] <= 2.3       # second stream roughly doubles
    assert 3.0 <= ratios[3] <= 4.0       # four streams: 3-4x (paper 3.62)
    assert ratios[3] < 4.0               # replicas saturate below linear
    assert result.latency_p95_ms < 20.0
    # The subscribe instants happened on schedule.
    assert [round(t) for t in result.subscribe_times] == [15, 30, 45]
