"""FIG4 -- horizontal scalability / re-partitioning (paper §VII-D, Figure 4).

Regenerates the Fig. 4 panels: client throughput through the split of a
key/value store shard at 75% peak load, per-replica applied-ops and CPU
utilisation before/after, and the ~1 s client-timeout gap.
"""

from repro.harness.experiments import HorizontalConfig, run_horizontal
from repro.harness.report import comparison_table, section, series_sparkline

PAPER_GAP_SECONDS = 1.0
PAPER_REPLICA_DROP = 0.5       # per-replica throughput and CPU halve
PAPER_LOAD_FRACTION = 0.75


def test_bench_fig4_repartitioning(run_once):
    config = HorizontalConfig(duration=60.0)
    result = run_once(run_horizontal, config)
    ba = result.before_after

    r1_ratio = ba["r1_ops_after"] / ba["r1_ops_before"]
    r2_ratio = ba["r2_ops_after"] / ba["r2_ops_before"]
    cpu1_ratio = ba["r1_cpu_after"] / ba["r1_cpu_before"]
    cpu2_ratio = ba["r2_cpu_after"] / ba["r2_cpu_before"]

    print(section("Figure 4: splitting one shard into two (75% peak load)"))
    print(
        comparison_table(
            [
                ("re-partitioning gap (s)", PAPER_GAP_SECONDS, result.gap_duration),
                ("replica 1 ops after/before", PAPER_REPLICA_DROP, r1_ratio),
                ("replica 2 ops after/before", PAPER_REPLICA_DROP, r2_ratio),
                ("replica 1 cpu after/before", PAPER_REPLICA_DROP, cpu1_ratio),
                ("replica 2 cpu after/before", PAPER_REPLICA_DROP, cpu2_ratio),
                (
                    "aggregate after/before",
                    1.0,
                    ba["client_after"] / ba["client_before"],
                ),
                ("cpu before (fraction)", PAPER_LOAD_FRACTION, ba["r1_cpu_before"]),
            ]
        )
    )
    print("client ops:", series_sparkline(result.client_throughput))
    for name in ("r1", "r2"):
        print(f"{name} applied:", series_sparkline(result.replica_throughput[name]))

    # Shape assertions.
    assert 0.4 <= r1_ratio <= 0.6
    assert 0.4 <= r2_ratio <= 0.6
    assert 0.35 <= cpu1_ratio <= 0.65
    assert 0.35 <= cpu2_ratio <= 0.65
    assert 0.9 <= ba["client_after"] / ba["client_before"] <= 1.1
    assert 0.5 <= result.gap_duration <= 3.0
    assert result.timeouts > 0     # the gap is client-timeout driven
