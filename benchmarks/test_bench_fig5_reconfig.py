"""FIG5 -- acceptor reconfiguration under full load (paper §VII-E, Figure 5).

Regenerates the Fig. 5 series: ~550 Mbps of 32 KiB values flowing while
the replicas switch from stream S1 (old acceptors) to stream S2 (new
acceptors) with a prepare hint -- no visible overhead, p95 = 2.7 ms.
"""

from repro.harness.experiments import ReconfigConfig, run_reconfig
from repro.harness.report import comparison_table, section, series_sparkline
from repro.metrics import flat_through

PAPER_MBPS = 550.0
PAPER_P95_MS = 2.7


def test_bench_fig5_reconfiguration(run_once):
    config = ReconfigConfig(duration=70.0)
    result = run_once(run_reconfig, config)

    print(section("Figure 5: replacing the acceptor set under full load"))
    print(
        comparison_table(
            [
                ("steady throughput (Mbps)", PAPER_MBPS, result.throughput_mbps),
                ("latency p95 (ms)", PAPER_P95_MS, result.latency_p95_ms),
                ("switch overhead (fraction)", 0.0, result.overhead_ratio),
                ("client timeouts", 0, result.timeouts),
            ]
        )
    )
    print("total :", series_sparkline(result.throughput))
    for stream in sorted(result.per_stream):
        print(f"{stream:>6}:", series_sparkline(result.per_stream[stream]))

    # Shape assertions: full-rate through the switch, traffic moves
    # wholesale from S1 to S2, latency in the low milliseconds.
    assert 400 <= result.throughput_mbps <= 700
    assert result.latency_p95_ms < 6.0
    assert result.overhead_ratio < 0.20
    assert result.timeouts == 0
    assert flat_through(
        result.throughput,
        start=config.subscribe_at + 2,
        end=config.duration - 1,
        baseline=result.steady_rate,
    )
    # S1 stops delivering shortly after the switch; S2 takes over.
    s1_after = [v for t, v in result.per_stream["S1"] if t >= config.subscribe_at + 3]
    s2_after = [v for t, v in result.per_stream["S2"] if t >= config.subscribe_at + 3]
    assert max(s1_after) == 0
    assert min(s2_after) > 0.8 * result.steady_rate
