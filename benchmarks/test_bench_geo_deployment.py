"""EXT-GEO -- wide-area deployment (extension; cf. Benz et al.,
"Stretching Multi-Ring Paxos", ACM SAC 2015 -- the paper's ref [22]).

Two regions, 40 ms apart.  Atomic broadcast across both can be built
two ways:

* **global stream**: one stream whose ring spans both regions -- every
  value pays cross-region hops inside Phase 2;
* **per-region streams** (the Multi-Ring/Elastic way): each region runs
  a local stream with local acceptors; replicas everywhere subscribe to
  both and merge.  Ordering stays local to the writer's region; only
  decision dissemination crosses the ocean once.

The bench measures client-observed latency for a client co-located
with its stream, under both layouts.
"""

from repro.harness.broadcast import BroadcastClient, BroadcastReplica
from repro.harness.report import comparison_table, section
from repro.multicast.stream import StreamDeployment
from repro.paxos.config import StreamConfig
from repro.sim import Environment, LinkSpec, Network, RngRegistry

INTRA = 0.0005     # same-region one-way latency
INTER = 0.040      # cross-region one-way latency
REGIONS = ("eu", "us")


def region_of(host: str) -> str:
    return "eu" if host.startswith("eu") or host == "client-eu" else "us"


def wire_regions(net: Network, hosts: list[str]) -> None:
    for src in hosts:
        for dst in hosts:
            if src == dst:
                continue
            latency = INTRA if region_of(src) == region_of(dst) else INTER
            net.set_link(src, dst, LinkSpec(latency=latency))


def run_layout(per_region_streams: bool, duration: float = 12.0):
    env = Environment()
    rng = RngRegistry(53)
    net = Network(env, rng=rng, default_link=LinkSpec(latency=INTRA))
    directory = {}

    if per_region_streams:
        stream_specs = {
            "eu-S": ("eu-a1", "eu-a2", "eu-a3"),
            "us-S": ("us-a1", "us-a2", "us-a3"),
        }
    else:
        # One global ring alternating regions (worst case for the ring).
        stream_specs = {"eu-S": ("eu-a1", "us-a1", "eu-a2")}

    for name, acceptors in stream_specs.items():
        config = StreamConfig(
            name=name, acceptors=acceptors, lam=2000, delta_t=0.02,
            coordinator=f"{name}/coordinator",
        )
        directory[name] = StreamDeployment(env, net, config)

    replicas = []
    for region in REGIONS:
        replica = BroadcastReplica(
            env, net, f"{region}-replica", "replicas", directory, cpu_rate=50_000
        )
        replicas.append(replica)

    client = BroadcastClient(
        env, net, "client-eu", directory, value_size=1024,
        timeout=2.0, rng=rng.stream("c"),
    )

    hosts = list(net.hosts())
    wire_regions(net, hosts)
    for deployment in directory.values():
        deployment.start()
    for replica in replicas:
        replica.bootstrap(list(directory))

    # The EU client submits to its local stream.
    client.start_threads("eu-S", 4)
    env.run(until=duration)
    eu = replicas[0]
    return {
        "p50_ms": client.latency.percentile(50) * 1000.0,
        "p95_ms": client.latency.percentile(95) * 1000.0,
        "ops": eu.delivered_ops.rate_between(1.0, duration),
    }


def test_bench_geo_deployment(run_once):
    def both():
        return run_layout(per_region_streams=True), run_layout(
            per_region_streams=False
        )

    multi, single = run_once(both)
    print(section("Extension: WAN deployment, 2 regions 40 ms apart"))
    print(
        comparison_table(
            [
                ("per-region streams: p50 (ms)", "~1 ocean crossing", multi["p50_ms"]),
                ("per-region streams: p95 (ms)", "-", multi["p95_ms"]),
                ("global ring: p50 (ms)", "several crossings", single["p50_ms"]),
                ("global ring: p95 (ms)", "-", single["p95_ms"]),
            ]
        )
    )
    # The EU client's values order locally and cross the ocean once
    # (ack from the local replica), while the global ring pays the
    # inter-region hops inside every Phase 2.
    assert multi["p50_ms"] < single["p50_ms"] * 0.7
    assert single["p50_ms"] > 2 * INTER * 1000 * 0.8   # >= ~2 crossings
    assert multi["ops"] > 0 and single["ops"] > 0