"""TXT-60s -- stream provisioning time (paper §VI).

"Adding a new stream from newly created virtual machines (three
acceptors) takes approximately 60 seconds."  The benchmark boots a Heat
autoscaling group, deploys the stream when the VMs turn ACTIVE,
subscribes the replicas and measures request-to-first-delivery.
"""

from repro.harness.experiments import ProvisioningConfig, run_provisioning
from repro.harness.report import comparison_table, section

PAPER_SECONDS = 60.0


def test_bench_stream_provisioning_time(run_once):
    result = run_once(run_provisioning, ProvisioningConfig())

    boot = result.vms_active_at - result.requested_at
    subscribe = result.first_delivery_at - result.subscribed_at
    print(section("§VI: adding a stream from freshly booted VMs"))
    print(
        comparison_table(
            [
                ("total time to new stream (s)", PAPER_SECONDS, result.total_seconds),
                ("  of which VM boot (s)", "~55-65", boot),
                ("  of which subscribe+merge (s)", "(small)", subscribe),
            ]
        )
    )
    # Dominated by VM boot, ends within the paper's ballpark.
    assert 50.0 <= result.total_seconds <= 75.0
    assert boot / result.total_seconds > 0.9
