"""Closing the loop: throughput-driven autoscaling (paper §VI).

"A controller or a client can create or destroy virtual machines,
forming additional streams depending on the currently measured
application throughput."  This example wires the elasticity controller
to the cloud model: when measured throughput nears the current streams'
capacity, it boots three acceptor VMs through a Heat-style autoscaling
group, deploys a stream on them once ACTIVE, aligns its position
counter and subscribes the replicas -- fully automatic vertical scaling.

(VM boot time is scaled down to 6 s so the demo runs quickly; the
paper's real boots take ~60 s, see benchmarks/test_bench_vm_provisioning.)

Run:  python examples/autoscaling_controller.py
"""

from repro.cloud import CloudCompute, ElasticityController
from repro.harness.broadcast import BroadcastClient, BroadcastReplica
from repro.multicast.api import MulticastClient
from repro.multicast.stream import StreamDeployment
from repro.paxos.config import StreamConfig
from repro.sim import Environment, LinkSpec, Network, RngRegistry

LAM = 1000
PER_STREAM_CAPACITY = 300.0   # ops/s one stream sustains (throttled)


def main():
    env = Environment()
    rng = RngRegistry(11)
    network = Network(env, rng=rng, default_link=LinkSpec(latency=0.001))
    compute = CloudCompute(env, boot_time=6.0, boot_jitter=1.0, rng=rng)

    directory = {}

    def deploy_stream(name):
        config = StreamConfig(
            name=name,
            acceptors=(f"{name}/a1", f"{name}/a2", f"{name}/a3"),
            lam=LAM,
            delta_t=0.05,
            value_rate_limit=PER_STREAM_CAPACITY,
        )
        deployment = StreamDeployment(env, network, config)
        directory[name] = deployment
        deployment.start()
        return deployment

    # Initial stream on pre-existing VMs.
    for i in range(3):
        compute.create_server(f"S1-acc-{i}", anti_affinity_group="S1")
    deploy_stream("S1")

    replica = BroadcastReplica(
        env, network, "replica-1", "replicas", directory, cpu_rate=5000
    )
    replica.bootstrap(["S1"])
    control = MulticastClient(env, network, "control", directory)
    client = BroadcastClient(
        env, network, "client", directory, value_size=1024,
        rng=rng.stream("client"),
    )
    client.start_threads("S1", 8)   # demands more than one stream can give

    def provision_stream(index, vms):
        name = f"S{index + 1}"
        print(f"  t={env.now:5.1f}s  VMs {[vm.name for vm in vms]} ACTIVE; "
              f"deploying stream {name} and subscribing")
        deploy_stream(name)   # self-aligns: skips pace against λ·now
        control.subscribe_msg("replicas", name, via_stream="S1")
        client.start_threads(name, 8)

    controller = ElasticityController(
        env,
        compute,
        throughput=replica.delivered_ops,
        capacity_per_stream=PER_STREAM_CAPACITY,
        provision_stream=provision_stream,
        high_watermark=0.8,
        sample_interval=2.0,
        max_streams=3,
    )
    controller.start()

    env.run(until=40.0)

    print("\nscale events (time, streams):",
          [(round(t, 1), n) for t, n in controller.scale_events])
    print("final subscriptions:", replica.subscriptions)
    for window in ((2, 8), (18, 24), (32, 38)):
        rate = replica.delivered_ops.rate_between(*window)
        print(f"throughput over t={window}: {rate:6.0f} ops/s")
    assert len(controller.scale_events) >= 1, "controller never scaled"
    print("\nthe controller added streams as load saturated capacity ✓")


if __name__ == "__main__":
    main()
