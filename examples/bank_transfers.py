"""Cross-shard bank transfers: atomicity from ordering alone.

Accounts are hash-sharded over two partitions.  A transfer between
accounts on *different* shards is a one-shot transaction multicast to
the shared stream: both shards deliver it at the same merged position,
apply their half, and exchange execution signals before replying.
No locks, no two-phase commit -- the atomic multicast already ordered
the transfer against every conflicting operation (the S-SMR/Calvin
design the paper's introduction motivates).

An auditor thread keeps reading all balances with a consistent
cross-shard transaction: the total is conserved in every snapshot even
while transfers are in full flight.

Run:  python examples/bank_transfers.py
"""

from repro.harness.cluster import KvCluster
from repro.kvstore import Partition, PartitionMap
from repro.workload import KeyspaceWorkload

N_ACCOUNTS = 20
INITIAL_BALANCE = 1_000


def main():
    cluster = KvCluster(seed=17, lam=1000, delta_t=0.02)
    for stream in ("S1", "S2", "SHARED"):
        cluster.add_stream(stream)
    pmap = PartitionMap(
        version=0,
        partitions=(
            Partition(index=0, stream="S1", replicas=("r1",)),
            Partition(index=1, stream="S2", replicas=("r2",)),
        ),
        shared_stream="SHARED",
    )
    cluster.add_replica("r1", "g1", ["S1", "SHARED"], pmap)
    cluster.add_replica("r2", "g2", ["S2", "SHARED"], pmap)
    cluster.publish_map(pmap)
    client = cluster.add_client(
        "bank", pmap, KeyspaceWorkload(n_keys=10), n_threads=0, timeout=1.0
    )
    env = cluster.env
    accounts = [f"acct-{i:04d}" for i in range(N_ACCOUNTS)]
    cross_shard = len({pmap.partition_of(a).index for a in accounts})
    print(f"{N_ACCOUNTS} accounts over {cross_shard} shards")

    for account in accounts:
        env.process(client.execute(("txn", ((account, "put", INITIAL_BALANCE),))))
    cluster.run(until=1.0)

    rng = cluster.rng.stream("bank")
    stats = {"transfers": 0, "cross_shard": 0}

    def teller():
        while True:
            src, dst = rng.sample(accounts, 2)
            amount = rng.randrange(1, 100)
            yield from client.execute(
                ("txn", ((src, "add", -amount), (dst, "add", amount)))
            )
            stats["transfers"] += 1
            if pmap.partition_of(src).index != pmap.partition_of(dst).index:
                stats["cross_shard"] += 1

    for _ in range(5):
        env.process(teller())

    audits = []

    def auditor():
        read_ops = tuple((account, "read", None) for account in accounts)
        while True:
            yield env.timeout(1.0)
            results = yield from client.execute(("txn", read_ops))
            balances = {}
            for partial in results:
                balances.update(partial)
            total = sum(balances.values())
            audits.append(total)
            marker = "OK" if total == N_ACCOUNTS * INITIAL_BALANCE else "BROKEN!"
            print(f"  t={env.now:5.2f}s  audit total = {total}  [{marker}]  "
                  f"({stats['transfers']} transfers so far, "
                  f"{stats['cross_shard']} cross-shard)")

    env.process(auditor())
    cluster.run(until=8.0)

    expected = N_ACCOUNTS * INITIAL_BALANCE
    assert all(total == expected for total in audits), "invariant violated!"
    print(f"\n{stats['transfers']} transfers "
          f"({stats['cross_shard']} cross-shard), {len(audits)} audits, "
          "money conserved in every snapshot ✓")


if __name__ == "__main__":
    main()
