"""Splitting a partitioned key/value store without stopping it (Fig. 4).

One shard served by two replicas splits into two shards of one replica
each, under load: the moving replica subscribes to a fresh stream, the
new partition map is ordered like any other command, clients re-route
after a registry notification, and each replica ends up serving (and
storing) only half the keyspace.

Run:  python examples/kvstore_repartition.py
"""

from repro.harness.cluster import KvCluster
from repro.kvstore import Partition, PartitionMap
from repro.workload import KeyspaceWorkload


def main():
    cluster = KvCluster(seed=7, lam=1000, delta_t=0.05)
    cluster.add_stream("S1")
    cluster.add_stream("S2")

    initial_map = PartitionMap(
        version=0,
        partitions=(Partition(index=0, stream="S1", replicas=("r1", "r2")),),
    )
    r1 = cluster.add_replica("r1", "shard-a", ["S1"], initial_map, cpu_rate=2000)
    r2 = cluster.add_replica("r2", "shard-b", ["S1"], initial_map, cpu_rate=2000)
    cluster.publish_map(initial_map)

    client = cluster.add_client(
        "client",
        initial_map,
        KeyspaceWorkload(n_keys=5_000, value_size=1024),
        n_threads=30,
        timeout=0.5,
        think_time=0.02,
    )

    print("phase 1: one partition, both replicas replicate every key")
    cluster.run(until=5.0)
    print(f"  r1 holds {len(r1.store)} keys, r2 holds {len(r2.store)} keys")
    print(f"  client completed {client.completed} ops")

    print("\nphase 2: split partition 0 -> (0: r1 on S1, 1: r2 on S2)")
    split = cluster.orchestrator.split(
        old_map=initial_map,
        split_index=0,
        moving_group="shard-b",
        moving_replicas=("r2",),
        new_stream="S2",
        settle_delay=1.0,
    )
    cluster.run(until=12.0)
    new_map = split.value
    print(f"  new map version {new_map.version} with "
          f"{new_map.n_partitions} partitions")
    print(f"  r1 subscriptions: {r1.subscriptions}   "
          f"r2 subscriptions: {r2.subscriptions}")
    print(f"  r1 holds {len(r1.store)} keys, r2 holds {len(r2.store)} keys "
          "(disjoint halves)")
    print(f"  client timeouts during the switch: {client.timeouts} "
          "(commands that reached the wrong shard were discarded and resent)")

    before = client.ops.rate_between(2.0, 5.0)
    after = client.ops.rate_between(9.0, 12.0)
    print(f"\n  aggregate throughput: {before:.0f} ops/s before, "
          f"{after:.0f} ops/s after (uninterrupted)")
    r1_after = r1.applied_ops.rate_between(9.0, 12.0)
    r2_after = r2.applied_ops.rate_between(9.0, 12.0)
    print(f"  per-replica load after: r1={r1_after:.0f}, r2={r2_after:.0f} "
          "(each ~half: capacity doubled)")


if __name__ == "__main__":
    main()
