"""The Figure 1 store: single- and multi-partition operations.

Two shards (G1 on stream S1, G2 on stream S3 in the paper's naming),
plus a shared stream every replica subscribes to.  Single-key get/put
commands are multicast to the owning shard's stream; consistent
``getrange`` queries are multicast to the shared stream, executed by
every shard at the same merged position, coordinated with direct signal
messages, and assembled at the client.

Run:  python examples/multi_partition_queries.py
"""

from repro.harness.cluster import KvCluster
from repro.kvstore import Partition, PartitionMap
from repro.workload import KeyspaceWorkload, key_name


def main():
    cluster = KvCluster(seed=5, lam=1000, delta_t=0.02)
    for stream in ("S1", "S3", "SHARED"):
        cluster.add_stream(stream)

    pmap = PartitionMap(
        version=0,
        partitions=(
            Partition(index=0, stream="S1", replicas=("g1-r1", "g1-r2")),
            Partition(index=1, stream="S3", replicas=("g2-r1", "g2-r2")),
        ),
        shared_stream="SHARED",
    )
    replicas = {}
    for partition in pmap.partitions:
        for name in partition.replicas:
            group = name.split("-")[0]
            replicas[name] = cluster.add_replica(
                name, f"group-{name}", [partition.stream, "SHARED"], pmap
            )
    cluster.publish_map(pmap)

    print("phase 1: load 2000 keys through single-partition puts")
    seeder = cluster.add_client(
        "seeder", pmap,
        KeyspaceWorkload(n_keys=2_000, value_size=256, put_fraction=1.0),
        n_threads=20,
    )
    cluster.run(until=4.0)
    seeder.stop_workers()
    for name, replica in sorted(replicas.items()):
        print(f"  {name}: {len(replica.store)} keys "
              f"(shard {replica.partition_index})")

    print("\nphase 2: consistent getrange across both shards")
    ranger = cluster.add_client(
        "ranger", pmap,
        KeyspaceWorkload(n_keys=2_000, put_fraction=0.0, range_fraction=1.0,
                         range_span=200),
        n_threads=2,
    )
    cluster.run(until=7.0)
    ranger.stop_workers()
    print(f"  completed {ranger.completed} range queries, "
          f"{ranger.timeouts} timeouts")
    print(f"  p95 latency: {ranger.latency.percentile(95) * 1000:.1f} ms "
          "(one merged delivery + signal exchange)")

    print("\nphase 3: mixed workload (70% put / 25% get / 5% range)")
    mixed = cluster.add_client(
        "mixed", pmap,
        KeyspaceWorkload(n_keys=2_000, value_size=256, put_fraction=0.70,
                         range_fraction=0.05, range_span=50),
        n_threads=20,
    )
    cluster.run(until=11.0)
    rate = mixed.ops.rate_between(8.0, 11.0)
    print(f"  {mixed.completed} ops, {rate:.0f} ops/s steady, "
          f"p95 {mixed.latency.percentile(95) * 1000:.1f} ms")
    print("\nEvery range result is a consistent cut: each shard executed the")
    print("query at the same merged position and signalled the others before")
    print("replying (S-SMR-style execution signals, paper §VI).")


if __name__ == "__main__":
    main()
