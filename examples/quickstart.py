"""Quickstart: dynamic atomic multicast in ~60 lines.

Builds two Paxos streams, a replica group subscribed to the first,
multicasts a few messages, then *dynamically subscribes* the group to
the second stream at run time -- the headline capability of Elastic
Paxos -- and shows the merged delivery order.

Run:  python examples/quickstart.py
"""

from repro import Environment, LinkSpec, Network, RngRegistry, StreamConfig
from repro.multicast import MulticastClient, MulticastReplica, StreamDeployment


def main():
    env = Environment()
    network = Network(env, rng=RngRegistry(42), default_link=LinkSpec(latency=0.001))

    # Two streams, three acceptors each (λ tops idle streams up with
    # skips so the merge never stalls).
    directory = {}
    for name in ("S1", "S2"):
        config = StreamConfig(
            name=name,
            acceptors=(f"{name}/a1", f"{name}/a2", f"{name}/a3"),
            lam=500,
            delta_t=0.05,
        )
        directory[name] = StreamDeployment(env, network, config)
        directory[name].start()

    # A replica group of two; both start subscribed to S1 only.
    delivered = {"replica-1": [], "replica-2": []}

    def make_replica(name):
        replica = MulticastReplica(
            env,
            network,
            name,
            group="G",
            directory=directory,
            on_deliver=lambda value, stream, pos, _n=name: delivered[_n].append(
                (value.payload, stream)
            ),
        )
        replica.bootstrap(["S1"])
        return replica

    replicas = [make_replica("replica-1"), make_replica("replica-2")]
    client = MulticastClient(env, network, "client", directory)

    def scenario():
        # Plain multicast to the subscribed stream.
        for i in range(3):
            client.multicast("S1", payload=f"s1-msg-{i}")
            yield env.timeout(0.02)

        # Dynamic subscription: ordered in BOTH S2 and S1; the replicas
        # compute the merge point and start merging S2 deterministically.
        print("subscribing group G to stream S2 ...")
        client.subscribe_msg("G", new_stream="S2", via_stream="S1")
        yield env.timeout(0.2)

        for i in range(3):
            client.multicast("S2", payload=f"s2-msg-{i}")
            client.multicast("S1", payload=f"s1-more-{i}")
            yield env.timeout(0.02)

        # And unsubscribe again -- one ordered message is enough.
        print("unsubscribing group G from stream S2 ...")
        client.unsubscribe_msg("G", "S2")

    env.process(scenario())
    env.run(until=2.0)

    print("\nsubscriptions now:", replicas[0].subscriptions)
    print("\ndelivery order (replica-1):")
    for payload, stream in delivered["replica-1"]:
        print(f"  [{stream}] {payload}")
    assert delivered["replica-1"] == delivered["replica-2"], "replicas diverged!"
    print("\nboth replicas delivered the identical sequence ✓")


if __name__ == "__main__":
    main()
