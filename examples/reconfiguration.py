"""Replacing the acceptor set of a running state machine (Fig. 5).

Reconfiguration as dynamic subscription: create a new stream backed by
a different set of acceptors, send a prepare hint so replicas recover
it in the background, subscribe, repoint the clients, and unsubscribe
the original stream -- all without pausing delivery.

Run:  python examples/reconfiguration.py
"""

from repro.harness.experiments import ReconfigConfig, run_reconfig
from repro.harness.report import series_sparkline


def main():
    config = ReconfigConfig(
        duration=30.0,
        prepare_at=12.0,
        subscribe_at=15.0,
        n_threads=20,
        think_time=0.01,
    )
    print("running: replace acceptors S1/a* with S2/a* at t=15 s ...")
    result = run_reconfig(config)

    print("\nthroughput (1 s intervals):")
    print("  total:", series_sparkline(result.throughput))
    for stream in sorted(result.per_stream):
        print(f"  {stream:>5}:", series_sparkline(result.per_stream[stream],
                                                  maximum=result.steady_rate))
    print(f"\n  steady rate: {result.steady_rate:.0f} ops/s "
          f"({result.throughput_mbps:.0f} Mbps of 32 KiB values)")
    print(f"  minimum rate during the switch: "
          f"{result.min_rate_during_switch:.0f} ops/s "
          f"(overhead {result.overhead_ratio:.1%})")
    print(f"  client latency p95: {result.latency_p95_ms:.2f} ms")
    print(f"  client timeouts: {result.timeouts}")
    print("\nThe old acceptors are idle from t=15 on and can be shut down;")
    print("the state machine never stopped.")


if __name__ == "__main__":
    main()
