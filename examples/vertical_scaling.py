"""Vertical scalability demo (the Fig. 3 scenario, scaled down).

Atomic broadcast over one throttled stream is the bottleneck; every few
seconds the replicas dynamically subscribe to another stream, and the
aggregate throughput climbs in steps.

Run:  python examples/vertical_scaling.py
"""

from repro.harness.experiments import VerticalConfig, run_vertical
from repro.harness.report import series_sparkline


def main():
    config = VerticalConfig(
        n_streams=3,
        add_interval=5.0,
        duration=15.0,
        per_stream_limit=400.0,
        replica_cpu_rate=1500.0,
        lam=1000,
    )
    print("running: add a stream every 5 s (3 streams total) ...")
    result = run_vertical(config)

    print("\nthroughput (1 s intervals):")
    print(" ", series_sparkline(result.throughput))
    for index, average in enumerate(result.interval_averages):
        streams = index + 1
        print(f"  {streams} stream(s): {average:7.0f} ops/s")
    print(f"  scaling with {config.n_streams} streams: "
          f"{result.scaling_factor:.2f}x")
    print(f"  client latency p95: {result.latency_p95_ms:.1f} ms")
    print("\nNote the dip right after each subscription: the paper's Fig. 3")
    print("runs without prepare_msg, so the merge stalls while the new")
    print("stream is recovered; see examples/reconfiguration.py for the")
    print("hint-assisted, stall-free variant.")


if __name__ == "__main__":
    main()
