"""Elastic Paxos: a dynamic atomic multicast protocol (ICDCS 2017).

A from-scratch reproduction of Benz & Pedone's Elastic Paxos on a
deterministic discrete-event simulator.  The package layers:

* :mod:`repro.sim` -- simulation kernel, network, capacity models;
* :mod:`repro.paxos` -- Multi-Paxos streams (coordinator, acceptors,
  learners, lambda/delta-t skips, ring dissemination, recovery);
* :mod:`repro.multicast` -- the paper's contribution: streams composed
  by a deterministic merge with **dynamic subscriptions** (Algorithm 1);
* :mod:`repro.coordination` -- ZooKeeper-style config registry;
* :mod:`repro.cloud` -- OpenStack-style VMs, anti-affinity, autoscaling;
* :mod:`repro.kvstore` -- the partitioned key/value store of section VI;
* :mod:`repro.baselines` -- static broadcast and reconfiguration
  baselines;
* :mod:`repro.harness` -- deployment builder and the experiments that
  regenerate Figures 3-5.

Quickstart::

    from repro.harness.experiments import run_vertical
    result = run_vertical()
    print(result.interval_averages)   # the Fig. 3 staircase
"""

from .multicast import (
    ElasticMerger,
    MulticastClient,
    MulticastReplica,
    StaticMerger,
    StreamDeployment,
    TokenLog,
)
from .paxos import (
    AppValue,
    Batch,
    PrepareMsg,
    SkipToken,
    StreamConfig,
    SubscribeMsg,
    UnsubscribeMsg,
)
from .sim import Environment, LinkSpec, Network, RngRegistry

__version__ = "1.0.0"

__all__ = [
    "AppValue",
    "Batch",
    "ElasticMerger",
    "Environment",
    "LinkSpec",
    "MulticastClient",
    "MulticastReplica",
    "Network",
    "PrepareMsg",
    "RngRegistry",
    "SkipToken",
    "StaticMerger",
    "StreamConfig",
    "StreamDeployment",
    "SubscribeMsg",
    "TokenLog",
    "UnsubscribeMsg",
    "__version__",
]
