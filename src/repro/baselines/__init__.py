"""Baselines and ablations the paper compares against."""

from .reconfig_baselines import (
    BaselineReconfigConfig,
    BaselineReconfigResult,
    run_membership_command_reconfig,
    run_stop_restart_reconfig,
)
from .skip_ablation import SkipAblationConfig, SkipAblationResult, run_skip_ablation
from .static_broadcast import (
    StaticBroadcastConfig,
    StaticBroadcastResult,
    run_static_broadcast,
)

__all__ = [
    "BaselineReconfigConfig",
    "BaselineReconfigResult",
    "SkipAblationConfig",
    "SkipAblationResult",
    "StaticBroadcastConfig",
    "StaticBroadcastResult",
    "run_membership_command_reconfig",
    "run_skip_ablation",
    "run_static_broadcast",
    "run_stop_restart_reconfig",
]
