"""Baseline acceptor-reconfiguration strategies (§VIII-C, §IV-A3).

Two alternatives the paper contrasts Elastic Paxos against:

* **stop-and-restart** -- "existing solutions consist in stopping
  processes in the current configuration, redefining the set of
  processes in the new configuration, and re-starting the processes":
  the service is down while replicas checkpoint, the new deployment
  boots and replicas recover;
* **membership-as-command** (Lamport) -- the acceptor set is part of
  the state and changed by an ordered command.  "Such a mechanism
  prevents multiple consensus instances from executing concurrently,
  which limits performance": the stream runs with a pipeline window of
  1 and must drain + re-run Phase 1 on the new acceptors at the switch.
  Batching partially masks the serialized window's throughput cost at
  moderate load, but the latency penalty and the deep stall at the
  switch remain.

Both are measured under the Fig. 5 load so the ablation benchmark can
put the three strategies side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..harness.broadcast import BroadcastClient, BroadcastReplica
from ..multicast.stream import StreamDeployment
from ..paxos.acceptor import AcceptorActor
from ..paxos.config import StreamConfig
from ..sim.core import Environment
from ..sim.network import LinkSpec, Network
from ..sim.rng import RngRegistry

__all__ = [
    "BaselineReconfigConfig",
    "BaselineReconfigResult",
    "run_stop_restart_reconfig",
    "run_membership_command_reconfig",
]


@dataclass
class BaselineReconfigConfig:
    duration: float = 80.0
    reconfigure_at: float = 45.0
    n_threads: int = 60
    value_size: int = 32 * 1024
    think_time: float = 0.025
    replica_cpu_rate: float = 4000.0
    lam: int = 4000
    delta_t: float = 0.100
    link_latency: float = 0.0004
    # Stop-and-restart: checkpoint + boot + recover window.
    restart_downtime: float = 12.0
    # Membership-as-command: drain + Phase 1 on the new acceptor set.
    drain_delay: float = 0.8
    seed: int = 7
    measure_interval: float = 1.0


@dataclass
class BaselineReconfigResult:
    config: BaselineReconfigConfig
    strategy: str = ""
    throughput: list = field(default_factory=list)
    steady_rate: float = 0.0
    min_rate_during_switch: float = 0.0
    downtime_seconds: float = 0.0        # intervals with ~zero delivery
    latency_p95_ms: float = 0.0


def _measure(result, counter, client, config, switch_window=20.0):
    result.throughput = counter.interval_rates(
        config.measure_interval, 0.0, config.duration
    )
    result.steady_rate = counter.rate_between(
        0.3 * config.reconfigure_at, config.reconfigure_at
    )
    switch_rates = [
        rate
        for t, rate in result.throughput
        if config.reconfigure_at - 1 <= t <= config.reconfigure_at + switch_window
    ]
    result.min_rate_during_switch = min(switch_rates) if switch_rates else 0.0
    result.downtime_seconds = sum(
        config.measure_interval
        for rate in switch_rates
        if rate < 0.05 * max(result.steady_rate, 1.0)
    )
    result.latency_p95_ms = client.latency.percentile(95) * 1000.0
    return result


def _build_world(config: BaselineReconfigConfig, window: int = 16):
    env = Environment()
    rng = RngRegistry(config.seed)
    network = Network(env, rng=rng, default_link=LinkSpec(latency=config.link_latency))
    stream_config = StreamConfig(
        name="S1",
        acceptors=("S1/a1", "S1/a2", "S1/a3"),
        lam=config.lam,
        delta_t=config.delta_t,
        window=window,
    )
    deployment = StreamDeployment(env, network, stream_config)
    deployment.start()
    directory = {"S1": deployment}
    return env, rng, network, deployment, directory


def run_stop_restart_reconfig(
    config: BaselineReconfigConfig = BaselineReconfigConfig(),
) -> BaselineReconfigResult:
    """Reconfigure by halting the whole stack and restarting it."""
    env, rng, network, deployment, directory = _build_world(config)

    # One counter per service epoch (before/after restart); combined
    # for measurement.
    measured_counters = []

    def make_replicas(suffix: str) -> list[BroadcastReplica]:
        replicas = []
        for index in range(2):
            replica = BroadcastReplica(
                env,
                network,
                f"replica-{index + 1}{suffix}",
                f"replicas{suffix}",
                directory,
                cpu_rate=config.replica_cpu_rate,
            )
            replica.bootstrap(["S1"])
            replicas.append(replica)
        measured_counters.append(replicas[0].delivered_ops)
        return replicas

    replicas = make_replicas("")

    client = BroadcastClient(
        env,
        network,
        "client",
        directory,
        value_size=config.value_size,
        think_time=config.think_time,
        timeout=2.0,
        rng=rng.stream("client"),
    )
    client.start_threads("S1", config.n_threads)

    def reconfigure():
        yield env.timeout(config.reconfigure_at)
        # Stop the world: clients, replicas, the stream itself.
        client.stop_threads()
        for replica in replicas:
            replica.stop()
        deployment.stop()
        yield env.timeout(config.restart_downtime)
        # New acceptor set under the same stream name (fresh actors).
        new_config = StreamConfig(
            name="S1",
            acceptors=("S1/b1", "S1/b2", "S1/b3"),
            lam=config.lam,
            delta_t=config.delta_t,
        )
        new_deployment = StreamDeployment(env, network, new_config)
        directory["S1"] = new_deployment
        new_deployment.start()
        make_replicas("-v2")
        client.start_threads("S1", config.n_threads)

    env.process(reconfigure())
    env.run(until=config.duration)

    class _Combined:
        """Presents the per-epoch counters as one counter."""

        def interval_rates(self, interval, start, end):
            series = [c.interval_rates(interval, start, end) for c in measured_counters]
            return [
                (points[0][0], sum(p[1] for p in points))
                for points in zip(*series)
            ]

        def rate_between(self, start, end):
            return sum(c.rate_between(start, end) for c in measured_counters)

    result = BaselineReconfigResult(config=config, strategy="stop-restart")
    return _measure(result, _Combined(), client, config)


def run_membership_command_reconfig(
    config: BaselineReconfigConfig = BaselineReconfigConfig(),
) -> BaselineReconfigResult:
    """Reconfigure through an ordered membership command (Lamport).

    The stream runs with window=1 (membership may change at any
    instance, so instances cannot be decided concurrently) and the
    switch drains the pipeline and re-runs Phase 1 on the new acceptors.
    """
    env, rng, network, deployment, directory = _build_world(config, window=1)

    replicas = []
    for index in range(2):
        replica = BroadcastReplica(
            env,
            network,
            f"replica-{index + 1}",
            "replicas",
            directory,
            cpu_rate=config.replica_cpu_rate,
        )
        replica.bootstrap(["S1"])
        replicas.append(replica)

    client = BroadcastClient(
        env,
        network,
        "client",
        directory,
        value_size=config.value_size,
        think_time=config.think_time,
        timeout=2.0,
        rng=rng.stream("client"),
    )
    client.start_threads("S1", config.n_threads)

    def reconfigure():
        yield env.timeout(config.reconfigure_at)
        coordinator = deployment.coordinator
        # The membership command is ordered like any value; once decided
        # the pipeline drains before any instance may use the new set.
        coordinator.leading = False
        yield env.timeout(config.drain_delay)
        # Fresh acceptors take over; the coordinator re-runs Phase 1.
        new_names = ("S1/b1", "S1/b2", "S1/b3")
        new_acceptors = [
            AcceptorActor(env, network, name, stream="S1", ring=new_names)
            for name in new_names
        ]
        for acceptor in new_acceptors:
            acceptor.start()
        coordinator.config.acceptors = new_names
        deployment.acceptors = new_acceptors
        deployment._sync_decision_targets()
        coordinator.take_over()

    env.process(reconfigure())
    env.run(until=config.duration)
    result = BaselineReconfigResult(config=config, strategy="membership-command")
    return _measure(result, replicas[0].delivered_ops, client, config)
