"""Ablation of the λ/Δt skip mechanism (§III-B).

Two streams merged by one replica group: S1 carries all the traffic,
S2 is idle.  With skips enabled the idle stream advances at the virtual
rate λ and the merge delivers S1 at full speed; with skips disabled the
round-robin merge starves waiting for S2 -- "messages will be delivered
at the pace of the slowest stream".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..harness.broadcast import BroadcastClient, BroadcastReplica
from ..multicast.stream import StreamDeployment
from ..paxos.config import StreamConfig
from ..sim.core import Environment
from ..sim.network import LinkSpec, Network
from ..sim.rng import RngRegistry

__all__ = ["SkipAblationConfig", "SkipAblationResult", "run_skip_ablation"]


@dataclass
class SkipAblationConfig:
    duration: float = 20.0
    n_threads: int = 10
    value_size: int = 1024
    idle_stream_load: float = 0.0     # ops/s injected into S2 (0 = idle)
    skip_enabled: bool = True
    lam: int = 4000
    delta_t: float = 0.100
    link_latency: float = 0.0005
    seed: int = 8


@dataclass
class SkipAblationResult:
    config: SkipAblationConfig
    delivered_rate: float = 0.0
    completed_ops: int = 0
    merge_blocked: bool = False


def run_skip_ablation(
    config: SkipAblationConfig = SkipAblationConfig(),
) -> SkipAblationResult:
    env = Environment()
    rng = RngRegistry(config.seed)
    network = Network(env, rng=rng, default_link=LinkSpec(latency=config.link_latency))

    directory = {}
    for name in ("S1", "S2"):
        stream_config = StreamConfig(
            name=name,
            acceptors=tuple(f"{name}/a{j}" for j in range(1, 4)),
            lam=config.lam,
            delta_t=config.delta_t,
            skip_enabled=config.skip_enabled,
        )
        directory[name] = StreamDeployment(env, network, stream_config)
        directory[name].start()

    replica = BroadcastReplica(env, network, "replica-1", "replicas", directory)
    replica.bootstrap(["S1", "S2"])
    client = BroadcastClient(
        env,
        network,
        "client",
        directory,
        value_size=config.value_size,
        timeout=config.duration + 1,   # no retries: we measure starvation
        rng=rng.stream("client"),
    )
    client.start_threads("S1", config.n_threads)
    if config.idle_stream_load > 0:
        def trickle():
            from ..paxos.types import AppValue

            interval = 1.0 / config.idle_stream_load
            while True:
                directory["S2"].propose(AppValue(payload=None, size=64))
                yield env.timeout(interval)

        env.process(trickle())

    env.run(until=config.duration)

    result = SkipAblationResult(config=config)
    result.completed_ops = int(client.ops.total)
    if config.duration > 5.0:
        result.delivered_rate = replica.delivered_ops.rate_between(
            1.0, config.duration
        )
    result.merge_blocked = result.delivered_rate < 1.0
    return result
