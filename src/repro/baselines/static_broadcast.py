"""Baseline: static single-stream atomic broadcast.

This is the system Elastic Paxos improves on in §IV-A1: atomic
broadcast over one Paxos stream, whose throughput is capped by the
stream (coordinator CPU / acceptor storage).  Without dynamic
subscriptions the only remedies are over-provisioning up front or a
stop-the-world reconfiguration.

``run_static_broadcast`` drives the same client/replica setup as the
Fig. 3 experiment but never adds streams: throughput stays pinned at
the single-stream ceiling no matter how many client threads arrive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..harness.broadcast import BroadcastClient, BroadcastReplica
from ..multicast.stream import StreamDeployment
from ..paxos.config import StreamConfig
from ..sim.core import Environment
from ..sim.network import LinkSpec, Network
from ..sim.rng import RngRegistry

__all__ = ["StaticBroadcastConfig", "StaticBroadcastResult", "run_static_broadcast"]


@dataclass
class StaticBroadcastConfig:
    duration: float = 60.0
    add_threads_interval: float = 15.0   # more load arrives periodically...
    threads_per_step: int = 5            # ...but no stream is ever added
    n_steps: int = 4
    value_size: int = 32 * 1024
    stream_limit: float = 760.0          # same single-stream cap as Fig. 3
    replica_cpu_rate: float = 2820.0
    lam: int = 4000
    delta_t: float = 0.100
    link_latency: float = 0.0008
    seed: int = 6
    measure_interval: float = 1.0


@dataclass
class StaticBroadcastResult:
    config: StaticBroadcastConfig
    throughput: list = field(default_factory=list)
    interval_averages: list = field(default_factory=list)
    latency_p95_ms: float = 0.0
    scaling_factor: float = 0.0


def run_static_broadcast(
    config: StaticBroadcastConfig = StaticBroadcastConfig(),
) -> StaticBroadcastResult:
    env = Environment()
    rng = RngRegistry(config.seed)
    network = Network(env, rng=rng, default_link=LinkSpec(latency=config.link_latency))
    stream_config = StreamConfig(
        name="S1",
        acceptors=("S1/a1", "S1/a2", "S1/a3"),
        lam=config.lam,
        delta_t=config.delta_t,
        value_rate_limit=config.stream_limit,
    )
    deployment = StreamDeployment(env, network, stream_config)
    deployment.start()
    directory = {"S1": deployment}

    replicas = []
    for index in range(2):
        replica = BroadcastReplica(
            env,
            network,
            f"replica-{index + 1}",
            "replicas",
            directory,
            cpu_rate=config.replica_cpu_rate,
        )
        replica.bootstrap(["S1"])
        replicas.append(replica)

    client = BroadcastClient(
        env,
        network,
        "client",
        directory,
        value_size=config.value_size,
        rng=rng.stream("client"),
    )
    client.start_threads("S1", config.threads_per_step)

    def loader():
        for _ in range(config.n_steps - 1):
            yield env.timeout(config.add_threads_interval)
            client.start_threads("S1", config.threads_per_step)

    env.process(loader())
    env.run(until=config.duration)

    measured = replicas[0]
    result = StaticBroadcastResult(config=config)
    result.throughput = measured.delivered_ops.interval_rates(
        config.measure_interval, 0.0, config.duration
    )
    boundaries = [
        min(k * config.add_threads_interval, config.duration)
        for k in range(config.n_steps)
    ] + [config.duration]
    for start, end in zip(boundaries, boundaries[1:]):
        if end > start:
            result.interval_averages.append(
                measured.delivered_ops.rate_between(start, end)
            )
    result.latency_p95_ms = client.latency.percentile(95) * 1000.0
    if result.interval_averages and result.interval_averages[0] > 0:
        result.scaling_factor = (
            result.interval_averages[-1] / result.interval_averages[0]
        )
    return result
