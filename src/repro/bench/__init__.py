"""Performance microbenchmark suite (``python -m repro bench``).

Measures the hot layers of the reproduction in isolation -- the event
calendar, the network hop, the dynamic merge -- plus the figure-3
experiment end to end, and emits a machine-readable JSON report that
the CI perf-smoke job compares against a committed baseline
(``BENCH_baseline.json``).  See ``docs/PERFORMANCE.md``.
"""

from .suite import (
    BENCH_SCHEMA_VERSION,
    PRE_PR_FIG3_WALL_S,
    bench_fig3_latency_budget,
    compare_to_baseline,
    profiler_overhead,
    run_bench,
    summary_lines,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "PRE_PR_FIG3_WALL_S",
    "bench_fig3_latency_budget",
    "compare_to_baseline",
    "profiler_overhead",
    "run_bench",
    "summary_lines",
]
