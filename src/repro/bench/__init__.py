"""Performance microbenchmark suite (``python -m repro bench``).

Measures the hot layers of the reproduction in isolation -- the event
calendar, the network hop, the dynamic merge -- plus the figure-3
experiment end to end, and emits a machine-readable JSON report that
the CI perf-smoke job compares against a committed baseline
(``BENCH_baseline.json``).  See ``docs/PERFORMANCE.md``.

``python -m repro bench --live`` runs the live-backend suite instead
(:mod:`repro.bench.live`): codec and transport microbenchmarks plus a
localhost cluster at fixed offered load, gated in CI by the
live-perf-smoke job against ``BENCH_PR8.json``.
"""

from .live import (
    LIVE_BENCH_SCHEMA_VERSION,
    PRE_PR_LIVE,
    compare_live_to_baseline,
    live_summary_lines,
    run_live_bench,
)
from .suite import (
    BENCH_SCHEMA_VERSION,
    PRE_PR_FIG3_WALL_S,
    bench_fig3_latency_budget,
    compare_to_baseline,
    profiler_overhead,
    run_bench,
    summary_lines,
)

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "LIVE_BENCH_SCHEMA_VERSION",
    "PRE_PR_FIG3_WALL_S",
    "PRE_PR_LIVE",
    "bench_fig3_latency_budget",
    "compare_live_to_baseline",
    "compare_to_baseline",
    "live_summary_lines",
    "profiler_overhead",
    "run_bench",
    "run_live_bench",
    "summary_lines",
]
