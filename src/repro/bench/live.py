"""Live-backend benchmarks (``python -m repro bench --live``).

The sim hot paths have been regression-gated since PR 3; this module
does the same for the *live* asyncio/TCP datapath (codec -> transport
-> coordinator batching -> delivery).  Three benchmarks:

``codec_roundtrip``
    Encode+decode of the two hot wire shapes -- a client ``Propose``
    carrying one ``AppValue`` and a ``RingAccept`` carrying a full
    batch -- in a tight loop.  Pure CPU: no sockets.

``transport_stream``
    One :class:`~repro.runtime.transport.TcpTransport`, one sender host
    streaming ``Propose`` frames to a receiving actor over a real
    localhost socket.  Measures the framed send path end to end
    (encode, queue, writer task, TCP, decode, dispatch) and reports the
    coalescing counters, so the frames-per-flush win is visible in the
    JSON.

``live_cluster``
    A full single-stream cluster (coordinator, acceptor ring, two
    replicas) under a fixed open-loop offered load, measured over a
    steady-state window after a warm-up.  The headline metric is
    *delivered values per second at the slowest replica* -- the number
    the ISSUE's >=1.5x acceptance criterion is judged on -- plus
    delivery latency p50/p99 and the replica-agreement verdict.

Wall-clock numbers vary with the machine (and live runs are not
deterministic -- see ``docs/RUNTIME.md``); the committed
``BENCH_PR8.json`` plus the CI ``live-perf-smoke`` job gate regressions
the same way ``BENCH_baseline.json`` gates the sim suite.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

__all__ = [
    "LIVE_BENCH_SCHEMA_VERSION",
    "PRE_PR_LIVE",
    "bench_codec_roundtrip",
    "bench_live_cluster",
    "bench_transport_stream",
    "compare_live_to_baseline",
    "install_uvloop",
    "live_summary_lines",
    "run_live_bench",
]


def install_uvloop() -> bool:
    """Install uvloop's event-loop policy if the package is present.

    uvloop is a *soft* dependency -- never assumed installed.  Returns
    True when the policy was installed; False leaves the stdlib policy
    untouched so the suite still runs everywhere.
    """
    try:
        import uvloop
    except ImportError:
        return False
    asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
    return True

LIVE_BENCH_SCHEMA_VERSION = 1

# Quick-configuration numbers measured on the pre-overhaul tree (the
# commit before this PR: per-message encode allocations, one
# write()+drain() per frame, body-copying decode, fixed batch=16).
# Machine-specific, recorded for provenance; the >=1.5x live_cluster
# criterion of ISSUE 8 is judged against values_per_s.
PRE_PR_LIVE = {
    "codec_roundtrip": {"roundtrips_per_s": 15639.0},
    "transport_stream": {"frames_per_s": 40660.0},
    "live_cluster": {"values_per_s": 3234.0},
}


def _timed(fn):
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


# -- codec: the hot wire shapes ----------------------------------------------


def _hot_messages():
    from ..paxos.messages import Propose, RingAccept
    from ..paxos.types import AppValue, Batch

    value = AppValue(payload="x" * 32, size=128, msg_id=7, sender="client")
    batch = Batch(
        tokens=tuple(
            AppValue(payload=f"v{i:03d}" * 8, size=128, msg_id=100 + i,
                     sender="client")
            for i in range(16)
        )
    )
    return (
        Propose(stream="s1", token=value),
        RingAccept(stream="s1", ballot=0, instance=3, batch=batch,
                   accepted_by=1),
    )


def bench_codec_roundtrip(n: int) -> dict:
    """``n`` encode+decode round trips over the hot message shapes."""
    from ..runtime import codec

    messages = _hot_messages()
    frames = [codec.encode(m) for m in messages]
    nbytes = sum(len(f) for f in frames)
    reps = n // len(messages)

    def run():
        encode = codec.encode
        decode = codec.decode
        for _ in range(reps):
            for message in messages:
                decode(encode(message))

    wall, _ = _timed(run)
    roundtrips = reps * len(messages)
    return {
        "roundtrips": roundtrips,
        "frame_bytes": nbytes,
        "wall_s": wall,
        "roundtrips_per_s": roundtrips / wall,
        "mb_per_s": (nbytes / len(messages)) * roundtrips / wall / 1e6,
    }


# -- transport: framed localhost stream --------------------------------------


def bench_transport_stream(n: int) -> dict:
    """Stream ``n`` Propose frames through one TcpTransport socket."""
    from ..net.actor import Actor
    from ..paxos.messages import Propose
    from ..paxos.types import AppValue
    from ..runtime.asyncio_kernel import AsyncioKernel
    from ..runtime.transport import TcpTransport

    class Receiver(Actor):
        def __init__(self, env, network, name):
            super().__init__(env, network, name)
            self.received = 0

        def on_propose(self, msg, src):
            self.received += 1

    async def main() -> dict:
        kernel = AsyncioKernel()
        # Queue sized to hold the whole run: this benchmark measures
        # drain speed, not the backpressure drop policy.
        transport = TcpTransport(kernel, send_queue_frames=n + 16)
        receiver = Receiver(kernel, transport, "b")
        await transport.start()
        receiver.start()
        message = Propose(
            stream="s1",
            token=AppValue(payload="y" * 32, size=128, msg_id=1, sender="a"),
        )
        t0 = time.perf_counter()
        send = transport.send
        for _ in range(n):
            send("a", "b", message, 160)
        while receiver.received < n:
            await asyncio.sleep(0.001)
        wall = time.perf_counter() - t0
        counters = dict(transport.counters())
        receiver.stop()
        await transport.stop()
        result = {
            "frames": n,
            "wall_s": wall,
            "frames_per_s": n / wall,
            "bytes_delivered": counters.get("bytes_delivered", 0),
            "mb_per_s": counters.get("bytes_delivered", 0) / wall / 1e6,
        }
        # Coalescing instrumentation (present after the PR-8 overhaul).
        for key in ("frames_coalesced", "writer_flushes"):
            if key in counters:
                result[key] = counters[key]
        if counters.get("writer_flushes"):
            result["frames_per_flush"] = (
                counters.get("frames_coalesced", n) / counters["writer_flushes"]
            )
        return result

    return asyncio.run(main())


# -- cluster: delivered values/s under fixed offered load --------------------


def _cluster_kwargs(quick: bool) -> dict:
    # Single stream, two replicas, a three-acceptor ring: the smallest
    # deployment that exercises every live datapath layer.  The offered
    # load is far above the pre-overhaul capacity so the measurement is
    # a *saturation* throughput, not an echo of the arrival rate.
    return dict(
        streams=1,
        replicas=2,
        acceptors_per_stream=3,
        duration=1.0,            # unused: the bench drives its own load
        rate=6000.0 if quick else 9000.0,
        payload_size=64,
        drain_timeout=30.0,
    )


def bench_live_cluster(
    quick: bool,
    warmup: Optional[float] = None,
    window: Optional[float] = None,
    burst: int = 24,
) -> dict:
    """Offered-load throughput of a full live cluster.

    Open-loop: values are submitted at the configured rate in bursts
    regardless of completion, the pipeline saturates, and the delivered
    rate at the slowest replica over a steady-state window is the
    datapath's capacity.  Ends with a drain + replica-agreement check,
    so a fast-but-wrong datapath cannot pass.
    """
    from ..runtime.supervisor import LiveCluster, LiveConfig

    warmup = (0.5 if quick else 1.0) if warmup is None else warmup
    window = (2.0 if quick else 4.0) if window is None else window
    config = LiveConfig(**_cluster_kwargs(quick))

    async def main() -> dict:
        cluster = LiveCluster(config)
        loop = cluster._loop
        interval = burst / config.rate
        sequence = 0
        # Deadline-based pacing: asyncio.sleep overshoots by scheduler
        # granularity, so a sleep-per-burst loop silently under-offers.
        # Tracking an absolute next-burst deadline keeps the offered
        # rate honest -- late wakeups submit the bursts they owe.
        next_at = loop.time()

        async def pump(until: float) -> None:
            nonlocal sequence, next_at
            while True:
                now = loop.time()
                if now >= until:
                    return
                while next_at <= now:
                    for _ in range(burst):
                        cluster.multicast("s1", sequence)
                        sequence += 1
                    next_at += interval
                await asyncio.sleep(min(next_at - loop.time(), until - now))

        def slowest_delivered() -> int:
            return min(
                len(log.records) for log in cluster.invariants.logs.values()
            )

        try:
            await cluster.start()
            await pump(loop.time() + warmup)
            before = slowest_delivered()
            t0 = time.perf_counter()
            await pump(loop.time() + window)
            t1 = time.perf_counter()
            after = slowest_delivered()
            agreed = await cluster.drain(config.drain_timeout)
            latencies = sorted(cluster.latencies_ms)

            def pct(p: float) -> Optional[float]:
                if not latencies:
                    return None
                rank = max(
                    0,
                    min(len(latencies) - 1,
                        round(p / 100 * len(latencies)) - 1),
                )
                return latencies[rank]

            counters: dict = {}
            for node in cluster.nodes:
                for key, value in node.transport.counters().items():
                    counters[key] = counters.get(key, 0) + value
            measured = after - before
            return {
                "offered_per_s": config.rate,
                "burst": burst,
                "warmup_s": warmup,
                "window_s": t1 - t0,
                "submitted": sequence,
                "delivered_in_window": measured,
                "values_per_s": measured / (t1 - t0),
                "latency_p50_ms": pct(50),
                "latency_p99_ms": pct(99),
                "agreed": agreed,
                "transport": counters,
            }
        finally:
            await cluster.stop()

    return asyncio.run(main())


# -- the suite ----------------------------------------------------------------


def _best_of(reps: int, fn, key: str) -> dict:
    best: Optional[dict] = None
    for _ in range(reps):
        result = fn()
        if best is None or result[key] > best[key]:
            best = result
    assert best is not None
    return best


# Metric compared against the baseline per benchmark (all rates: a
# regression is a drop beyond the threshold).
LIVE_BASELINE_METRICS: dict[str, tuple[str, str]] = {
    "codec_roundtrip": ("rate", "roundtrips_per_s"),
    "transport_stream": ("rate", "frames_per_s"),
    "live_cluster": ("rate", "values_per_s"),
}


def run_live_bench(quick: bool = False, reps: int = 2) -> dict:
    """Run the live suite best-of-``reps``; JSON-serialisable report."""
    sizes = dict(codec=20_000, transport=10_000) if quick else dict(
        codec=60_000, transport=40_000
    )
    benchmarks = {
        "codec_roundtrip": _best_of(
            reps, lambda: bench_codec_roundtrip(sizes["codec"]),
            "roundtrips_per_s"),
        "transport_stream": _best_of(
            reps, lambda: bench_transport_stream(sizes["transport"]),
            "frames_per_s"),
        "live_cluster": _best_of(
            reps, lambda: bench_live_cluster(quick), "values_per_s"),
    }
    report = {
        "schema": LIVE_BENCH_SCHEMA_VERSION,
        "suite": "live",
        "quick": quick,
        "reps": reps,
        "benchmarks": benchmarks,
    }
    pre = PRE_PR_LIVE.get("live_cluster", {}).get("values_per_s")
    if quick and pre:
        report["pre_pr"] = PRE_PR_LIVE
        report["speedup_vs_pre_pr"] = (
            benchmarks["live_cluster"]["values_per_s"] / pre
        )
    return report


def compare_live_to_baseline(
    report: dict, baseline: dict, threshold: float
) -> tuple[list[str], list[str]]:
    """Live-suite baseline comparison (same contract as the sim one)."""
    from .suite import compare_to_baseline

    return compare_to_baseline(
        report, baseline, threshold, metrics=LIVE_BASELINE_METRICS
    )


def live_summary_lines(report: dict) -> list[str]:
    b = report["benchmarks"]
    codec = b["codec_roundtrip"]
    stream = b["transport_stream"]
    cluster = b["live_cluster"]
    per_flush = stream.get("frames_per_flush")
    lines = [
        f"   codec_roundtrip: {codec['roundtrips_per_s']:>12,.0f} msgs/s "
        f"({codec['mb_per_s']:.1f} MB/s)",
        f"  transport_stream: {stream['frames_per_s']:>12,.0f} frames/s "
        f"({stream['mb_per_s']:.1f} MB/s"
        + (f", {per_flush:.1f} frames/flush" if per_flush else "")
        + ")",
        f"      live_cluster: {cluster['values_per_s']:>12,.0f} values/s "
        f"delivered (offered {cluster['offered_per_s']:,.0f}/s, "
        f"p50 {cluster['latency_p50_ms']:.0f} ms, "
        f"p99 {cluster['latency_p99_ms']:.0f} ms, "
        f"{'agreed' if cluster['agreed'] else 'DIVERGENT'})",
    ]
    if "speedup_vs_pre_pr" in report:
        lines.append(
            f"      live_cluster: {report['speedup_vs_pre_pr']:.2f}x "
            f"vs pre-PR-8 datapath "
            f"({PRE_PR_LIVE['live_cluster']['values_per_s']:,.0f} values/s)"
        )
    return lines
