"""Thread-based sampling profiler for the bench suite.

``cProfile`` distorts the simulator's profile badly at this call rate:
it attributes C-level ``heappop`` time to the caller and inflates
call-heavy frames, which is exactly the shape of the hot path.  A
sampling profiler built on ``sys._current_frames`` leaves the measured
run untouched and reports honest wall-clock attribution.
"""

from __future__ import annotations

import collections
import sys
import threading
import time
from typing import Any, Callable

__all__ = ["sample_profile"]


def sample_profile(
    fn: Callable[[], Any],
    interval: float = 0.001,
    depth: int = 3,
) -> tuple[Any, float, "collections.Counter[str]", int]:
    """Run ``fn`` while sampling the caller's stack.

    Returns ``(result, wall_seconds, stack_counter, total_samples)``
    where each counter key is an innermost-first chain of up to
    ``depth`` frames formatted ``file:function<file:function<...``.
    """
    samples: collections.Counter[str] = collections.Counter()
    target_id = threading.get_ident()
    stop = threading.Event()

    def sampler() -> None:
        while not stop.is_set():
            frame = sys._current_frames().get(target_id)
            if frame is not None:
                chain = []
                f = frame
                for _ in range(depth):
                    if f is None:
                        break
                    code = f.f_code
                    chain.append(
                        f"{code.co_filename.rsplit('/', 1)[-1]}:{code.co_name}"
                    )
                    f = f.f_back
                samples["<".join(chain)] += 1
            time.sleep(interval)

    thread = threading.Thread(target=sampler, daemon=True)
    thread.start()
    t0 = time.perf_counter()
    try:
        result = fn()
    finally:
        wall = time.perf_counter() - t0
        stop.set()
        thread.join()
    return result, wall, samples, sum(samples.values())
