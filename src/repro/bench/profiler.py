"""Thread-based sampling profiler for the bench suite.

``cProfile`` distorts the simulator's profile badly at this call rate:
it attributes C-level ``heappop`` time to the caller and inflates
call-heavy frames, which is exactly the shape of the hot path.  A
sampling profiler built on ``sys._current_frames`` leaves the measured
run untouched and reports honest wall-clock attribution.

Built on :class:`repro.runtime.profiling.StackSampler`, which samples
*all* threads -- the original implementation pinned
``threading.get_ident()`` of the caller, so in live mode (where the
asyncio loop and transport writers run on other threads) profiles came
back empty or misattributed.  Stacks are tagged with the thread name
(``[MainThread] sim:run<...``) so multi-threaded profiles stay legible.
"""

from __future__ import annotations

import collections
import time
from typing import Any, Callable

from ..runtime.profiling import StackSampler

__all__ = ["StackSampler", "sample_profile"]


def sample_profile(
    fn: Callable[[], Any],
    interval: float = 0.001,
    depth: int = 3,
) -> tuple[Any, float, "collections.Counter[str]", int]:
    """Run ``fn`` while sampling every thread's stack.

    Returns ``(result, wall_seconds, stack_counter, total_samples)``
    where each counter key is ``[thread] `` followed by an
    innermost-first chain of up to ``depth`` frames formatted
    ``file:function<file:function<...``.
    """
    sampler = StackSampler(interval=interval)
    sampler.start()
    t0 = time.perf_counter()
    try:
        result = fn()
    finally:
        wall = time.perf_counter() - t0
        sampler.stop()
    samples: collections.Counter[str] = collections.Counter()
    for (thread, frames), count in sampler.samples.items():
        # StackSampler keeps frames root-first; the bench report reads
        # innermost-first, truncated to the requested depth.
        chain = "<".join(reversed(frames[-depth:] if depth else frames))
        samples[f"[{thread}] {chain}"] += count
    return result, wall, samples, sum(samples.values())
