"""The benchmarks themselves.

Each benchmark drives one hot layer of the reproduction and reports a
wall-clock rate.  Wall-clock numbers vary with the machine; everything
*simulated* inside a benchmark is deterministic, and the figure-3
benchmark also reports the sha256 digest of its result series so a
bench run doubles as a determinism check (see
``tests/baselines/test_golden_digests.py`` for the pinned values).

The suite has two sizes:

``quick``
    Seconds-scale; used by the CI perf-smoke job.  The figure-3 run
    uses the *compact* configuration whose digest is pinned by the
    golden tests.
``full``
    The real measurement: figure 3 at 20 simulated seconds, the
    configuration the ISSUE's 2x acceptance criterion is judged on.
"""

from __future__ import annotations

import copy
import hashlib
import time
from typing import Any, Callable, Optional

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "PRE_PR_FIG3_WALL_S",
    "bench_fig3_latency_budget",
    "compare_to_baseline",
    "profiler_overhead",
    "run_bench",
    "summary_lines",
]

BENCH_SCHEMA_VERSION = 1

# Figure 3 at duration=20, seed=1, measured on the pre-optimisation
# tree (commit d17ac55): the reference the >=2x speedup criterion is
# judged against.  Machine-specific, recorded for provenance.
PRE_PR_FIG3_WALL_S = 5.664

# Paper numbers the end-to-end benchmark is compared against (Fig. 3:
# per-interval average throughput as streams are added, and the
# four-stream scaling factor).
PAPER_FIG3_INTERVALS = (735.0, 1498.0, 2391.0, 2660.0)
PAPER_FIG3_SCALING = 3.62


def _timed(fn: Callable[[], Any]) -> tuple[float, Any]:
    t0 = time.perf_counter()
    result = fn()
    return time.perf_counter() - t0, result


# -- kernel: event calendar ---------------------------------------------------

def bench_kernel_events(n: int) -> dict:
    """Drain ``n`` scheduled callbacks through the calendar."""
    from ..sim.core import Environment

    env = Environment()
    hits = [0]

    def tick():
        hits[0] += 1

    for i in range(n):
        env.call_later(i * 1e-6, tick)
    wall, _ = _timed(lambda: env.run())
    assert hits[0] == n
    return {"events": n, "wall_s": wall, "events_per_s": n / wall}


def bench_kernel_timeouts(n: int) -> dict:
    """One process yielding ``n`` timeouts: allocation + resume cost."""
    from ..sim.core import Environment

    env = Environment()

    def proc():
        for _ in range(n):
            yield env.timeout(0.001)

    env.process(proc())
    wall, _ = _timed(lambda: env.run())
    return {"events": n, "wall_s": wall, "events_per_s": n / wall}


# -- network: one hop ---------------------------------------------------------

def bench_network_msgs(n: int) -> dict:
    """``n`` unicast sends delivered into an inbox (no consumer)."""
    from ..sim.network import LinkSpec, Network
    from ..sim.core import Environment

    env = Environment()
    net = Network(env, default_link=LinkSpec(latency=0.0001))
    net.add_host("a")
    b = net.add_host("b")
    payload = object()
    for _ in range(n):
        net.send("a", "b", payload, 100)
    wall, _ = _timed(lambda: env.run())
    assert len(b.inbox) == n
    return {"messages": n, "wall_s": wall, "msgs_per_s": n / wall}


# -- merge: dynamic round-robin delivery --------------------------------------

def bench_dmerge_values(n_values: int) -> dict:
    """Pump ``n_values`` app values (interleaved with skips) through
    the elastic merger across two streams."""
    from ..multicast.elastic import ElasticMerger
    from ..multicast.stream import TokenLog
    from ..paxos.types import AppValue, SkipToken

    logs = {"S1": TokenLog(), "S2": TokenLog()}
    per_stream = n_values // 2
    for name, log in logs.items():
        for i in range(per_stream):
            log.append(AppValue(payload=i, size=64))
            log.append(SkipToken(count=4))
    delivered = [0]
    merger = ElasticMerger(
        "G1",
        deliver=lambda v, s, p: delivered.__setitem__(0, delivered[0] + 1),
        stream_provider=lambda name: logs[name],
    )
    merger.bootstrap(logs)
    wall, _ = _timed(merger.pump)
    assert delivered[0] == per_stream * 2
    return {
        "values": delivered[0],
        "wall_s": wall,
        "values_per_s": delivered[0] / wall,
    }


# -- snapshots: structural copy vs deepcopy -----------------------------------

def _checkpoint_state(keys: int, per_key: int) -> dict:
    """A representative replica checkpoint: plain containers over
    immutable leaves, the shape ``structural_copy`` is specified for."""
    from ..paxos.types import AppValue

    return {
        f"k{i}": {
            "values": [AppValue(payload=f"v{i}:{j}", size=64) for j in range(per_key)],
            "positions": tuple(range(per_key)),
            "acked": {j for j in range(0, per_key, 2)},
        }
        for i in range(keys)
    }


def bench_structural_copy(keys: int, per_key: int, reps: int) -> dict:
    """Measure the satellite win: deepcopy vs structural copy of the
    same checkpoint-shaped state."""
    from ..storage.snapshot import structural_copy

    state = _checkpoint_state(keys, per_key)

    def run_deepcopy():
        for _ in range(reps):
            copy.deepcopy(state)

    def run_structural():
        for _ in range(reps):
            structural_copy(state)

    deep_wall, _ = _timed(run_deepcopy)
    struct_wall, _ = _timed(run_structural)
    return {
        "keys": keys,
        "values_per_key": per_key,
        "reps": reps,
        "deepcopy_s": deep_wall,
        "structural_s": struct_wall,
        "speedup": deep_wall / struct_wall if struct_wall > 0 else float("inf"),
    }


# -- end to end: figure 3 -----------------------------------------------------

def _fig3_config(quick: bool):
    from ..harness.experiments.vertical import VerticalConfig

    if quick:
        # The compact configuration pinned by the golden-digest tests.
        return VerticalConfig(
            duration=6.0, add_interval=2.0, n_streams=3,
            threads_per_stream=2, value_size=1024,
            per_stream_limit=300.0, lam=1000, delta_t=0.05, seed=1,
        )
    return VerticalConfig(duration=20.0, seed=1)


def fig3_result_digest(result) -> str:
    """sha256 over the run's observable series; bit-identical across
    same-seed runs (the determinism contract the optimisations keep)."""
    blob = repr((
        result.throughput,
        sorted(result.per_stream.items()),
        result.interval_averages,
        result.latency_p95_ms,
        result.subscribe_times,
    ))
    return hashlib.sha256(blob.encode()).hexdigest()


def bench_fig3_e2e(quick: bool) -> dict:
    from ..harness.experiments.vertical import run_vertical

    config = _fig3_config(quick)
    wall, result = _timed(lambda: run_vertical(config))
    out = {
        "quick": quick,
        "sim_duration_s": config.duration,
        "seed": config.seed,
        "wall_s": wall,
        "realtime_factor": config.duration / wall,
        "interval_averages": list(result.interval_averages),
        "scaling_factor": result.scaling_factor,
        "latency_p95_ms": result.latency_p95_ms,
        "digest": fig3_result_digest(result),
    }
    if not quick:
        out["pre_pr_wall_s"] = PRE_PR_FIG3_WALL_S
        out["speedup_vs_pre_pr"] = PRE_PR_FIG3_WALL_S / wall
    return out


def bench_fig3_latency_budget(quick: bool) -> dict:
    """Re-run the figure-3 experiment under a streaming LifecycleIndex
    tracer and return its latency-budget report
    (``repro bench --latency-budget`` embeds it in the BENCH json).

    Deterministic: the sim runs in virtual time, so the budget is a
    pure function of the pinned seed -- same seed, same report.
    """
    from ..harness.experiments.vertical import run_vertical
    from ..obs.critpath import latency_budget
    from ..obs.spans import LifecycleIndex
    from ..obs.trace import Tracer, installed

    index = LifecycleIndex()
    with installed(Tracer(sinks=[index])):
        run_vertical(_fig3_config(quick))
    return latency_budget(index)


def profiler_overhead(reps: int = 5, interval: float = 0.02) -> dict:
    """Quick fig3 wall clock with the stack sampler off vs. on.

    The always-on profiling plane is only viable if sampling stays in
    the noise; CI asserts the overhead below 5%
    (``repro bench --profile-overhead``).  Off/on reps are interleaved
    and each side keeps its best wall clock, so slow drift on a shared
    CI box (cache state, noisy neighbours) cancels instead of landing
    on whichever side ran last.
    """
    from ..harness.experiments.vertical import run_vertical
    from ..runtime.profiling import StackSampler

    config = _fig3_config(True)

    off_wall = float("inf")
    on_wall = float("inf")
    on_samples = 0
    run_vertical(config)   # warm-up: imports + allocator steady state
    for _ in range(reps):
        wall, _ = _timed(lambda: run_vertical(config))
        off_wall = min(off_wall, wall)
        sampler = StackSampler(interval=interval)
        sampler.start()
        try:
            wall, _ = _timed(lambda: run_vertical(config))
        finally:
            samples = sampler.stop()
        if wall < on_wall:
            on_wall, on_samples = wall, samples
    return {
        "off_wall_s": off_wall,
        "on_wall_s": on_wall,
        "samples": on_samples,
        "interval": interval,
        "overhead": on_wall / off_wall - 1.0,
    }


# -- the suite ----------------------------------------------------------------

def _best_of(reps: int, fn: Callable[[], dict], key: str) -> dict:
    """Run ``fn`` ``reps`` times, keep the run with the best ``key``
    (max for rates, min for wall clock).  Wall-clock noise on shared
    machines dwarfs real regressions on single runs; best-of-N is what
    the CI threshold is judged against."""
    best: Optional[dict] = None
    for _ in range(reps):
        result = fn()
        if best is None:
            best = result
        elif key == "wall_s":
            if result[key] < best[key]:
                best = result
        elif result[key] > best[key]:
            best = result
    assert best is not None
    return best


def run_bench(quick: bool = False, reps: int = 3) -> dict:
    """Run every benchmark best-of-``reps``; returns the
    JSON-serialisable report."""
    if quick:
        sizes = dict(kernel=50_000, timeouts=20_000, network=20_000,
                     dmerge=20_000, copy=(40, 20, 20))
    else:
        sizes = dict(kernel=200_000, timeouts=100_000, network=100_000,
                     dmerge=100_000, copy=(200, 50, 20))
    benchmarks = {
        "kernel_events": _best_of(
            reps, lambda: bench_kernel_events(sizes["kernel"]),
            "events_per_s"),
        "kernel_timeouts": _best_of(
            reps, lambda: bench_kernel_timeouts(sizes["timeouts"]),
            "events_per_s"),
        "network_msgs": _best_of(
            reps, lambda: bench_network_msgs(sizes["network"]),
            "msgs_per_s"),
        "dmerge_values": _best_of(
            reps, lambda: bench_dmerge_values(sizes["dmerge"]),
            "values_per_s"),
        "structural_copy": _best_of(
            reps, lambda: bench_structural_copy(*sizes["copy"]),
            "speedup"),
        "fig3_e2e": _best_of(reps, lambda: bench_fig3_e2e(quick), "wall_s"),
    }
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "quick": quick,
        "reps": reps,
        "benchmarks": benchmarks,
    }


# Metric compared against the baseline, per benchmark, with direction:
# ("rate", key) regresses when it drops; ("wall", key) when it grows.
_BASELINE_METRICS: dict[str, tuple[str, str]] = {
    "kernel_events": ("rate", "events_per_s"),
    "kernel_timeouts": ("rate", "events_per_s"),
    "network_msgs": ("rate", "msgs_per_s"),
    "dmerge_values": ("rate", "values_per_s"),
    "structural_copy": ("rate", "speedup"),
    "fig3_e2e": ("wall", "wall_s"),
}


def compare_to_baseline(
    report: dict, baseline: dict, threshold: float,
    metrics: Optional[dict[str, tuple[str, str]]] = None,
) -> tuple[list[str], list[str]]:
    """Compare a report to a baseline report.

    Returns ``(lines, regressions)``: human-readable comparison lines
    for every shared benchmark, and the subset flagged as regressed
    beyond ``threshold`` (a fraction, e.g. ``0.25`` = 25%).

    ``metrics`` maps benchmark name to ``(direction, key)`` and
    defaults to the sim suite's set; the live suite passes its own
    (``repro.bench.live.LIVE_BASELINE_METRICS``).
    """
    lines: list[str] = []
    regressions: list[str] = []
    base_benchmarks = baseline.get("benchmarks", {})
    if metrics is None:
        metrics = _BASELINE_METRICS
    for name, (direction, key) in metrics.items():
        current = report["benchmarks"].get(name, {}).get(key)
        base = base_benchmarks.get(name, {}).get(key)
        if current is None or base is None or base == 0:
            continue
        if direction == "rate":
            change = current / base - 1.0
            regressed = change < -threshold
        else:
            change = base / current - 1.0   # positive = faster
            regressed = current > base * (1.0 + threshold)
        marker = "REGRESSION" if regressed else "ok"
        lines.append(
            f"{name:>18}: {key}={current:,.1f} baseline={base:,.1f} "
            f"({change:+.1%}) {marker}"
        )
        if regressed:
            regressions.append(name)
    return lines, regressions


def summary_lines(report: dict) -> list[str]:
    """Human-readable summary, one line per benchmark, plus the
    paper-vs-measured line EXPERIMENTS.md cites."""
    b = report["benchmarks"]
    fig3 = b["fig3_e2e"]
    lines = [
        f"     kernel_events: {b['kernel_events']['events_per_s']:>12,.0f} events/s",
        f"   kernel_timeouts: {b['kernel_timeouts']['events_per_s']:>12,.0f} events/s",
        f"      network_msgs: {b['network_msgs']['msgs_per_s']:>12,.0f} msgs/s",
        f"     dmerge_values: {b['dmerge_values']['values_per_s']:>12,.0f} values/s",
        f"   structural_copy: {b['structural_copy']['speedup']:>12,.1f} x vs deepcopy",
        f"          fig3_e2e: {fig3['sim_duration_s']:.0f} sim-s in "
        f"{fig3['wall_s']:.3f} s wall ({fig3['realtime_factor']:.1f}x realtime)"
        + (f", {fig3['speedup_vs_pre_pr']:.2f}x vs pre-PR"
           if "speedup_vs_pre_pr" in fig3 else ""),
    ]
    measured = "/".join(f"{v:.0f}" for v in fig3["interval_averages"])
    paper = "/".join(f"{v:.0f}" for v in PAPER_FIG3_INTERVALS)
    lines.append(
        f"fig3 paper-vs-measured: paper {paper} ops/s "
        f"(scaling {PAPER_FIG3_SCALING:.2f}x) | measured {measured} ops/s "
        f"(scaling {fig3['scaling_factor']:.2f}x)"
        + (" [quick config: shapes, not paper scale]" if fig3["quick"] else "")
    )
    return lines
