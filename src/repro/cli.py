"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro fig3 [--duration 60] [--seed 1] [--prepare]
    python -m repro fig4 [--duration 60]
    python -m repro fig5 [--duration 70] [--no-prepare]
    python -m repro provisioning
    python -m repro all
    python -m repro faults list
    python -m repro faults run <scenario> [--seed 1] [--seeds N]
    python -m repro elasticity --list
    python -m repro elasticity --scenario ramp [--seed 1] [--dry-run]
    python -m repro trace <experiment> --out trace.jsonl [--categories ...]
    python -m repro stats trace.jsonl
    python -m repro stats metrics.json
    python -m repro validate-trace trace.jsonl
    python -m repro latency trace.jsonl [--out budget.json] [--diff base.json]
    python -m repro bench [--quick] [--profile] [--out BENCH.json]
                          [--baseline BENCH_baseline.json] [--threshold 0.25]
                          [--latency-budget] [--profile-overhead]
    python -m repro live [--streams 2] [--replicas 3] [--duration 5]
                         [--rate 200] [--metrics-out metrics.json]
                         [--nodes 2] [--telemetry-dir DIR] [--clock-skew 0.5]
                         [--profile-dir DIR]
    python -m repro trace-merge n1.trace.jsonl n2.trace.jsonl --out merged.jsonl
    python -m repro top DIR/endpoints.json [--interval 1] [--iterations N]
                        [--timeout 0.5]
    python -m repro trace node.trace.jsonl --follow [--max-events N]
    python -m repro watch RUN_DIR|endpoints.json [--follow] [--out alerts.jsonl]
                          [--fail-on-alert] [--duration N]

Each experiment command runs on the simulator and prints the
paper-vs-measured comparison plus sparkline series; ``faults`` runs a
named fault-injection scenario (see ``docs/FAULTS.md``) under the
always-on safety invariant checkers and prints the invariant report.
``trace`` re-runs an experiment with the observability layer capturing
protocol events to JSONL (see ``docs/OBSERVABILITY.md``); ``stats``
reconstructs per-message causal lifecycles from such a trace and prints
per-stage latency percentiles; ``validate-trace`` checks a trace
against the event schema (the CI smoke test).  ``bench`` runs the
performance microbenchmark suite (see ``docs/PERFORMANCE.md``) and can
compare against a committed baseline for the CI perf-smoke job.
``live`` boots a real asyncio/TCP cluster (see ``docs/RUNTIME.md``),
drives a workload with a runtime subscribe, and prints the agreement /
latency summary; ``stats`` also reads the metrics dump a live run
writes with ``--metrics-out``.  With ``--nodes N --telemetry-dir DIR``
the live cluster is partitioned into N clock domains, each streaming a
node-stamped trace and serving live HTTP metrics/health endpoints;
``trace-merge`` aligns and merges those per-node traces into one
causally-consistent timeline (readable by ``stats`` /
``validate-trace``), and ``top`` renders the endpoints as a live
console (see the "Live mode" section of ``docs/OBSERVABILITY.md``).
``latency`` decomposes each delivered message's end-to-end latency
into named critical-path segments and prints the latency-budget
report (works on sim traces and ``trace-merge``d live traces alike;
see the "Latency attribution" section of ``docs/OBSERVABILITY.md``).
``watch`` is the online safety certifier + anomaly watchdog: point it
at a deploy run directory (tails the per-node traces, certifies prefix
agreement / uniform acyclic order / no lost-or-duplicated deliveries
live) or at an ``endpoints.json`` (polls ``/health``); exits 1 on a
safety violation, and with ``--fail-on-alert`` exits 2 if any anomaly
alert fired (the CI false-positive gate); ``trace FILE --follow``
tails a node's JSONL trace live with the same incremental reader (see
the "Online audit" section of ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import argparse
import os
import sys

from .harness.experiments import (
    HorizontalConfig,
    ProvisioningConfig,
    ReconfigConfig,
    VerticalConfig,
    run_horizontal,
    run_provisioning,
    run_reconfig,
    run_vertical,
)
from .harness.report import comparison_table, plain_table, section, series_sparkline

__all__ = ["main"]


def _fig3(args) -> None:
    config = VerticalConfig(
        duration=args.duration, seed=args.seed, use_prepare=args.prepare
    )
    result = run_vertical(config)
    print(section("Figure 3: vertical scalability (add a stream every 15 s)"))
    paper = [735.0, 1498.0, 2391.0, 2660.0]
    rows = [
        (f"interval {i + 1} avg (ops/s)", p, m)
        for i, (p, m) in enumerate(zip(paper, result.interval_averages))
    ]
    rows.append(("scaling factor", 3.62, result.scaling_factor))
    rows.append(("latency p95 (ms)", 8.3, result.latency_p95_ms))
    print(comparison_table(rows))
    print("throughput:", series_sparkline(result.throughput))
    for stream in sorted(result.per_stream):
        print(f"{stream:>10}:", series_sparkline(result.per_stream[stream]))


def _fig4(args) -> None:
    config = HorizontalConfig(duration=args.duration, seed=args.seed)
    result = run_horizontal(config)
    ba = result.before_after
    print(section("Figure 4: re-partitioning a key/value store (75% peak load)"))
    print(
        comparison_table(
            [
                ("re-partitioning gap (s)", 1.0, result.gap_duration),
                ("replica 1 ops after/before", 0.5,
                 ba["r1_ops_after"] / ba["r1_ops_before"]),
                ("replica 2 ops after/before", 0.5,
                 ba["r2_ops_after"] / ba["r2_ops_before"]),
                ("replica 1 cpu after/before", 0.5,
                 ba["r1_cpu_after"] / ba["r1_cpu_before"]),
                ("aggregate after/before", 1.0,
                 ba["client_after"] / ba["client_before"]),
            ]
        )
    )
    print("client ops:", series_sparkline(result.client_throughput))
    for name in ("r1", "r2"):
        print(f"{name} applied:", series_sparkline(result.replica_throughput[name]))


def _fig5(args) -> None:
    config = ReconfigConfig(
        duration=args.duration, seed=args.seed, use_prepare=not args.no_prepare
    )
    result = run_reconfig(config)
    print(section("Figure 5: acceptor reconfiguration under full load"))
    print(
        comparison_table(
            [
                ("steady throughput (Mbps)", 550.0, result.throughput_mbps),
                ("latency p95 (ms)", 2.7, result.latency_p95_ms),
                ("switch overhead (fraction)", 0.0, result.overhead_ratio),
                ("client timeouts", 0, result.timeouts),
            ]
        )
    )
    print("total :", series_sparkline(result.throughput))
    for stream in sorted(result.per_stream):
        print(f"{stream:>6}:", series_sparkline(result.per_stream[stream]))


def _provisioning(args) -> None:
    result = run_provisioning(ProvisioningConfig(seed=args.seed))
    print(section("§VI: adding a stream from freshly booted VMs"))
    print(
        comparison_table(
            [
                ("total (s)", 60.0, result.total_seconds),
                ("VM boot (s)", "~55-65",
                 result.vms_active_at - result.requested_at),
                ("subscribe+merge (s)", "(small)",
                 result.first_delivery_at - result.subscribed_at),
            ]
        )
    )


def _faults(args) -> int:
    from .faults import SCENARIOS, get_scenario, run_scenario

    if args.faults_command == "list":
        print(section("Fault-injection scenarios"))
        for name in sorted(SCENARIOS):
            print(f"  {name:<28} {SCENARIOS[name]().description}")
        return 0
    try:
        spec = get_scenario(args.scenario)
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        print(f"error: unknown scenario {args.scenario!r} (known: {known})",
              file=sys.stderr)
        return 2
    failures = 0
    for seed in range(args.seed, args.seed + args.seeds):
        print(section(f"faults: {spec.name} (seed {seed})"))
        try:
            result = run_scenario(spec, seed=seed)
        except AssertionError as violation:
            failures += 1
            print(f"INVARIANT VIOLATION: {violation}")
            print(f"reproduce with: python -m repro faults run "
                  f"{spec.name} --seed {seed}")
            continue
        print(result.report())
    return 1 if failures else 0


def _elasticity(args) -> int:
    from .elasticity import SCENARIOS, run_scenario
    from .faults.invariants import InvariantViolation

    if args.list:
        print(section("Elasticity scenarios"))
        for name in sorted(SCENARIOS):
            print(f"  {name:<16} {SCENARIOS[name].description}")
        return 0
    if args.scenario is None:
        print("error: --scenario NAME required (or --list)", file=sys.stderr)
        return 2
    if args.scenario not in SCENARIOS:
        known = ", ".join(sorted(SCENARIOS))
        print(
            f"error: unknown scenario {args.scenario!r} (known: {known})",
            file=sys.stderr,
        )
        return 2
    print(section(f"elasticity: {args.scenario} (seed {args.seed})"))
    try:
        result = run_scenario(
            args.scenario, seed=args.seed, dry_run=args.dry_run
        )
    except InvariantViolation as violation:
        print(f"INVARIANT VIOLATION: {violation}")
        dump = getattr(violation, "dump_path", None)
        if dump:
            print(f"flight recording -> {dump}", file=sys.stderr)
        print(f"reproduce with: python -m repro elasticity "
              f"--scenario {args.scenario} --seed {args.seed}")
        return 1
    print(result.report())
    return 0 if result.ok else 1


_TRACEABLE = ("fig3", "fig4", "fig5", "provisioning")


def _trace_follow(args) -> int:
    """`trace FILE --follow`: tail a live node's JSONL trace, emitting
    each event as it lands -- the same incremental reader the online
    certifier runs on, so torn tails and truncation are tolerated."""
    import json
    import time

    from .obs.audit import IncrementalTraceReader

    path = args.experiment
    if not os.path.exists(path) and args.idle_timeout is None:
        # Without an idle bound, waiting on a path that never appears
        # would hang forever; catch the typo up front.
        print(f"error: {path}: no such trace file "
              f"(pass --idle-timeout to wait for it)", file=sys.stderr)
        return 2
    reader = IncrementalTraceReader(path)
    out = open(args.out, "w", encoding="utf-8") if args.out else None
    emitted = 0
    idle = 0.0
    try:
        while True:
            events = reader.poll()
            for event in events:
                line = json.dumps(event, separators=(",", ":"))
                if out is not None:
                    out.write(line)
                    out.write("\n")
                else:
                    print(line)
                emitted += 1
                if (args.max_events is not None
                        and emitted >= args.max_events):
                    return 0
            if events:
                idle = 0.0
                if out is None:
                    sys.stdout.flush()
            else:
                idle += args.interval
                if (args.idle_timeout is not None
                        and idle >= args.idle_timeout):
                    return 0
                time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        if out is not None:
            out.close()
        print(f"trace --follow: {emitted} events from {path}"
              + (f" -> {args.out}" if args.out else ""),
              file=sys.stderr)


def _trace(args) -> int:
    from .obs import ALL_CATEGORIES, DEFAULT_CATEGORIES, JsonlSink, Tracer, installed

    if args.follow:
        return _trace_follow(args)
    if args.experiment not in _TRACEABLE:
        print(f"error: unknown experiment {args.experiment!r} "
              f"(choose from {', '.join(_TRACEABLE)}, or pass --follow "
              f"with a trace JSONL file to tail)", file=sys.stderr)
        return 2
    if not args.out:
        print("error: --out is required when running an experiment",
              file=sys.stderr)
        return 2
    if args.categories == "default":
        categories = DEFAULT_CATEGORIES
    elif args.categories == "all":
        categories = ALL_CATEGORIES
    else:
        categories = frozenset(
            c.strip() for c in args.categories.split(",") if c.strip()
        )
        unknown = categories - ALL_CATEGORIES
        if unknown:
            print(
                f"error: unknown categories {sorted(unknown)} "
                f"(known: {sorted(ALL_CATEGORIES)})",
                file=sys.stderr,
            )
            return 2

    # Re-parse the experiment through the real parser so its defaults
    # (duration, prepare flags...) apply exactly as in a direct run.
    sub_argv = [args.experiment, "--seed", str(args.seed)]
    if args.duration is not None and args.experiment != "provisioning":
        sub_argv += ["--duration", str(args.duration)]
    sub_args = build_parser().parse_args(sub_argv)

    sink = JsonlSink(args.out)
    tracer = Tracer(sinks=[sink], categories=categories)
    try:
        with installed(tracer):
            _DISPATCH[args.experiment](sub_args)
    finally:
        tracer.close()
    print(f"\ntrace: {sink.written} events -> {args.out}")
    return 0


def _stats_metrics_dump(path: str, data: dict) -> int:
    from .obs import rows_from_dump

    rows = rows_from_dump(data)
    print(section(f"Metrics dump: {path}"))
    print(plain_table(("actor", "metric", "kind", "value"), rows))
    return 0


def _stats(args) -> int:
    import json

    from .obs import METRICS_DUMP_FORMAT, STAGES, LifecycleIndex
    from .sim.monitor import percentile

    # `stats` reads both artifact kinds: a trace JSONL (from `trace`)
    # and a JSON metrics dump (from `live --metrics-out`).  Sniff the
    # format marker to tell them apart.
    try:
        with open(args.trace) as fh:
            data = json.load(fh)
    except (ValueError, UnicodeDecodeError):
        data = None
    if isinstance(data, dict) and data.get("format") == METRICS_DUMP_FORMAT:
        return _stats_metrics_dump(args.trace, data)

    index = LifecycleIndex.from_jsonl(args.trace)
    complete, delivered = index.coverage()
    print(section(f"Trace statistics: {args.trace}"))
    print(f"events               : {index.events_seen}")
    print(f"messages observed    : {len(index.messages)}")
    print(f"messages delivered   : {delivered}")
    print(f"complete lifecycles  : {complete} "
          f"(submit->deliver path fully reconstructed)")
    samples = index.stage_samples()
    rows = []
    for stage in STAGES:
        latencies = samples[stage]
        if not latencies:
            rows.append((stage, 0, "-", "-", "-", "-"))
            continue
        rows.append((
            stage,
            len(latencies),
            f"{1000 * sum(latencies) / len(latencies):.2f}",
            f"{1000 * percentile(latencies, 50):.2f}",
            f"{1000 * percentile(latencies, 95):.2f}",
            f"{1000 * percentile(latencies, 99):.2f}",
        ))
    print()
    print(plain_table(
        ("stage", "n", "mean ms", "p50 ms", "p95 ms", "p99 ms"), rows
    ))
    if index.subscriptions:
        print()
        sub_rows = []
        for request_id in sorted(index.subscriptions):
            timeline = index.subscriptions[request_id]
            duration = timeline.switch_duration
            points = sorted(set(timeline.merge_points.values()))
            sub_rows.append((
                request_id,
                timeline.kind,
                timeline.group or "-",
                timeline.stream or "-",
                "-" if duration is None else f"{1000 * duration:.2f}",
                ",".join(str(p) for p in points) if points else "-",
            ))
        print(plain_table(
            ("request", "kind", "group", "stream", "switch ms", "merge point"),
            sub_rows,
        ))
    return 0


def _validate_trace(args) -> int:
    from .obs import SchemaError, validate_file

    try:
        count = validate_file(args.trace)
    except SchemaError as exc:
        print(f"INVALID: {args.trace}: {exc}", file=sys.stderr)
        return 1
    print(f"OK: {args.trace}: {count} schema-valid events")
    return 0


def _latency(args) -> int:
    from .obs import LifecycleIndex
    from .obs.critpath import (
        budget_lines,
        diff_budgets,
        latency_budget,
        load_budget,
        write_budget,
    )

    index = LifecycleIndex.from_jsonl(args.trace)
    budget = latency_budget(index)
    print(section(f"Latency budget: {args.trace}"))
    for line in budget_lines(budget):
        print(line)
    if args.diff:
        try:
            baseline = load_budget(args.diff)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print()
        print(f"diff vs {args.diff}:")
        for line in diff_budgets(baseline, budget):
            print(line)
    if args.out:
        write_budget(budget, args.out)
        print(f"\nbudget -> {args.out}")
    return 0 if budget["messages"]["complete"] else 1


def _bench(args) -> int:
    import json

    from .bench import compare_to_baseline, run_bench, summary_lines

    if args.live:
        return _bench_live(args)

    if args.profile_overhead:
        from .bench import profiler_overhead

        print(section("bench --profile-overhead: sampler cost on quick fig3"))
        result = profiler_overhead()
        print(f"off  : {result['off_wall_s']:.3f}s wall")
        print(f"on   : {result['on_wall_s']:.3f}s wall "
              f"({result['samples']} samples at "
              f"{1000 * result['interval']:g}ms)")
        print(f"overhead: {result['overhead']:+.1%} "
              f"(threshold {args.overhead_threshold:.0%})")
        if result["overhead"] > args.overhead_threshold:
            print("PROFILER OVERHEAD REGRESSION")
            return 1
        return 0

    if args.profile:
        from .bench.profiler import sample_profile
        from .bench.suite import _fig3_config

        from .harness.experiments.vertical import run_vertical

        config = _fig3_config(args.quick)
        print(section("bench --profile: sampling the figure-3 run"))
        _, wall, samples, total = sample_profile(
            lambda: run_vertical(config)
        )
        print(f"wall {wall:.3f}s, {total} samples, top stacks:")
        for key, count in samples.most_common(25):
            print(f"{100 * count / total:5.1f}% {key}")
        return 0

    report = run_bench(quick=args.quick)
    print(section(
        "Performance microbenchmarks"
        + (" (quick)" if args.quick else "")
    ))
    for line in summary_lines(report):
        print(line)

    if args.latency_budget:
        from .bench import bench_fig3_latency_budget
        from .obs.critpath import budget_lines

        budget = bench_fig3_latency_budget(args.quick)
        report["latency_budget"] = budget
        print()
        for line in budget_lines(budget):
            print(line)

    status = 0
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        lines, regressions = compare_to_baseline(
            report, baseline, args.threshold
        )
        print()
        print(f"baseline comparison ({args.baseline}, "
              f"threshold {args.threshold:.0%}):")
        for line in lines:
            print(line)
        if regressions:
            print(f"PERF REGRESSION in: {', '.join(regressions)}")
            status = 1
        else:
            print("no perf regressions")

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nreport -> {args.out}")
    return status


def _bench_live(args) -> int:
    """`bench --live`: the live-backend suite (docs/PERFORMANCE.md,
    "Live datapath performance").  Same report/baseline/threshold
    contract as the sim suite, gated in CI by live-perf-smoke against
    the committed BENCH_PR8.json."""
    import json

    from .bench.live import (
        compare_live_to_baseline,
        live_summary_lines,
        run_live_bench,
    )

    event_loop = "asyncio"
    if args.uvloop:
        from .bench.live import install_uvloop

        event_loop = "uvloop" if install_uvloop() else (
            "asyncio (uvloop unavailable)"
        )
    report = run_live_bench(quick=args.quick)
    report["event_loop"] = event_loop
    print(section(
        "Live-backend benchmarks"
        + (" (quick)" if args.quick else "")
        + (f" [{event_loop}]" if args.uvloop else "")
    ))
    for line in live_summary_lines(report):
        print(line)

    status = 0
    if args.baseline:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
        lines, regressions = compare_live_to_baseline(
            report, baseline, args.threshold
        )
        print()
        print(f"baseline comparison ({args.baseline}, "
              f"threshold {args.threshold:.0%}):")
        for line in lines:
            print(line)
        if regressions:
            print(f"PERF REGRESSION in: {', '.join(regressions)}")
            status = 1
        else:
            print("no perf regressions")
    if not report["benchmarks"]["live_cluster"]["agreed"]:
        print("REPLICA DISAGREEMENT in live_cluster bench",
              file=sys.stderr)
        status = 1

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nreport -> {args.out}")
    return status


def _live(args) -> int:
    from .obs import MetricsRegistry
    from .obs.trace import installed
    from .runtime import LiveConfig, run_live

    config = LiveConfig(
        streams=args.streams,
        replicas=args.replicas,
        duration=args.duration,
        rate=args.rate,
        metrics_out=args.metrics_out,
        nodes=args.nodes,
        telemetry_dir=args.telemetry_dir,
        clock_skew=args.clock_skew,
        autoscale=args.autoscale,
        rate_ramp=args.rate_ramp,
        autoscale_ceiling=args.autoscale_ceiling,
        profile_dir=args.profile_dir,
        dissemination=args.dissemination,
        adaptive_batching=not args.no_adaptive_batch,
        lam=args.lam,
        burst=args.burst,
        uvloop=args.uvloop,
    )
    print(section(
        f"live: {config.streams} streams x {config.replicas} replicas "
        f"on {config.nodes} node{'s' if config.nodes != 1 else ''} "
        f"over localhost TCP for {config.duration:g} s"
    ))
    if config.telemetry_dir is not None:
        # Per-node registries replace the process-wide one; no install.
        report = run_live(config)
    else:
        with installed(metrics=MetricsRegistry()):
            report = run_live(config)
    print(report.summary())
    print(f"datapath: {report.dissemination} dissemination | "
          f"adaptive batching "
          f"{'on' if config.adaptive_batching else 'off'} | "
          f"event loop {report.event_loop}")
    for event in report.autoscale_events:
        print(f"  autoscale: {event}")
    rows = [
        (name, str(count))
        for name, count in sorted(report.delivered_per_replica.items())
    ]
    rows += [
        (f"transport {name}", str(value))
        for name, value in sorted(report.transport_counters.items())
    ]
    print()
    print(plain_table(("replica / counter", "delivered"), rows))
    for violation in report.violations:
        print(f"INVARIANT VIOLATION: {violation}", file=sys.stderr)
    for failure in report.kernel_failures:
        print(f"KERNEL FAILURE: {failure}", file=sys.stderr)
    for dump in report.flight_dumps:
        print(f"flight recording -> {dump}", file=sys.stderr)
    if args.metrics_out:
        print(f"\nmetrics -> {args.metrics_out} "
              f"(read with `python -m repro stats {args.metrics_out}`)")
    if report.node_traces:
        traces = " ".join(
            report.node_traces[node] for node in sorted(report.node_traces)
        )
        print(f"\nper-node traces: {traces}")
        print(f"merge with: python -m repro trace-merge {traces} "
              f"--out merged.trace.jsonl")
    if report.profile_files:
        print("\nprofiles (flamegraph-compatible collapsed stacks):")
        for node in sorted(report.profile_files):
            print(f"  {node}: {report.profile_files[node]}")
    return 0 if report.ok else 1


def _deploy(args) -> int:
    from .deploy import SCENARIOS, run_deploy
    from .deploy.supervisor import DeployConfig

    if args.list_scenarios:
        rows = [
            (name, scenario.description)
            for name, scenario in sorted(SCENARIOS.items())
        ]
        print(plain_table(("scenario", "what it does"), rows))
        return 0
    if args.scenario not in SCENARIOS:
        print(f"unknown scenario {args.scenario!r}; "
              f"pick from {', '.join(sorted(SCENARIOS))}", file=sys.stderr)
        return 2
    scenario = SCENARIOS[args.scenario]
    spec = scenario.build_spec(
        nodes=args.nodes,
        streams=args.streams,
        replicas=args.replicas,
        duration=args.duration,
        rate=args.rate,
        burst=args.burst,
        profile=args.profile,
    )
    run_dir = args.run_dir or os.path.join("deploy-runs", args.scenario)
    config = DeployConfig(
        spec=spec,
        run_dir=run_dir,
        scenario=args.scenario,
        address_file=args.address_file,
        verbose=args.verbose,
    )
    print(section(
        f"deploy: {len(spec.nodes)} worker processes, "
        f"{len(spec.streams)} streams x {len(spec.all_replicas())} "
        f"replicas, scenario {args.scenario}"
    ))
    report = run_deploy(config)
    if not args.verbose:
        print(report.summary())
    traces = [
        trace
        for entry in report.manifest["nodes"].values()
        for trace in entry["trace_files"]
    ]
    if traces:
        print(f"\nmerge the timeline with: python -m repro trace-merge "
              f"{' '.join(traces)} --out {os.path.join(run_dir, 'merged.trace.jsonl')}")
    print(f"manifest: {report.manifest_path}")
    return 0 if report.ok else 1


def _worker(args) -> int:
    from .deploy.worker import worker_main

    return worker_main(args)


def _trace_merge(args) -> int:
    from .obs import cross_node_messages, merge_files

    events = merge_files(args.traces, out=args.out)
    nodes = sorted({e.get("node") for e in events if e.get("node")})
    spanning = cross_node_messages(events)
    print(f"trace-merge: {len(events)} events from "
          f"{len(nodes)} nodes ({', '.join(nodes)}) -> {args.out}")
    print(f"messages observed on more than one node: {len(spanning)}")
    print(f"validate with: python -m repro validate-trace {args.out}")
    return 0


def _top(args) -> int:
    import os

    from .runtime import run_top

    endpoints = args.endpoints
    if os.path.isdir(endpoints):
        endpoints = os.path.join(endpoints, "endpoints.json")
    return run_top(
        endpoints,
        interval=args.interval,
        iterations=args.iterations,
        clear=not args.no_clear,
        timeout=args.timeout,
    )


def _watch_report(tick: dict) -> None:
    for violation in tick.get("violations", ()):
        print(f"VIOLATION [{violation.property}] {violation.message}")
    for alert in tick.get("raised", ()):
        print(f"ALERT [{alert.severity}] {alert.detector}"
              f"{'/' + alert.key if alert.key else ''}: {alert.message}")
    for alert in tick.get("cleared", ()):
        print(f"clear {alert.detector}"
              f"{'/' + alert.key if alert.key else ''}")


def _watch(args) -> int:
    """`watch`: online safety certifier + anomaly watchdog (see the
    "Online audit" section of docs/OBSERVABILITY.md).

    Exit codes: 0 clean, 1 safety violation proven, 2 with
    --fail-on-alert when any anomaly alert fired (the CI
    zero-false-positive gate), or usage error.
    """
    import time

    from .obs.watch import EndpointsWatch, TraceWatch

    target = args.target
    endpoints_mode = False
    if os.path.isdir(target):
        mode = f"certifying trace dir {target}"
        watch = TraceWatch(
            directory=target, out=args.out,
            stall_after=args.stall_after,
            reconfig_bound=args.reconfig_bound,
        )
    elif os.path.isfile(target) and target.endswith(".json"):
        from .runtime.console import load_endpoints

        try:
            endpoints = load_endpoints(target)
        except (ValueError, KeyError) as exc:
            print(f"error: {target}: {exc}", file=sys.stderr)
            return 2
        mode = f"polling {len(endpoints)} endpoints from {target}"
        watch = EndpointsWatch(
            endpoints, clock=time.time, out=args.out,
            timeout=args.timeout,
        )
        endpoints_mode = True
    elif os.path.isfile(target):
        mode = f"certifying trace {target}"
        watch = TraceWatch(
            paths=[target], out=args.out,
            stall_after=args.stall_after,
            reconfig_bound=args.reconfig_bound,
        )
    else:
        print(f"error: {target}: not a run directory, trace file or "
              f"endpoints.json", file=sys.stderr)
        return 2

    print(section(f"watch: {mode}"))
    deadline = (
        None if args.duration is None else time.monotonic() + args.duration
    )
    try:
        if endpoints_mode or args.follow:
            # Live mode: keep polling until Ctrl-C or --duration.
            while deadline is None or time.monotonic() < deadline:
                tick = watch.step()
                _watch_report(tick)
                if endpoints_mode or not tick.get("events"):
                    time.sleep(args.interval)
        else:
            # Post-hoc mode: drain the traces, then stop.
            while True:
                tick = watch.step()
                _watch_report(tick)
                if not tick.get("events"):
                    break
    except KeyboardInterrupt:
        pass
    summary = watch.close()

    violations = summary.get("violations", [])
    worker_violations = summary.get("worker_violations", [])
    alerts = summary.get("alerts", [])
    print(f"events observed     : {summary.get('events', len(alerts))}")
    streams = summary.get("streams")
    if streams:
        print(f"streams             : {', '.join(streams)}")
        marks = summary.get("watermarks", {})
        for stream in streams:
            mark = marks.get(stream, {})
            print(f"  {stream:<8} low {mark.get('low', '-')} "
                  f"high {mark.get('high', '-')}")
    print(f"safety violations   : {len(violations)}")
    print(f"worker violations   : {len(worker_violations)}")
    print(f"alerts raised       : {len(alerts)} "
          f"({len(summary.get('active_alerts', []))} still active)")
    print(f"health score        : {summary.get('health_score', '-')}")
    if args.out:
        print(f"alert log -> {args.out} "
              f"(validate with: python -m repro validate-trace {args.out})")
    if violations or worker_violations:
        print("SAFETY VIOLATION", file=sys.stderr)
        return 1
    if args.fail_on_alert and alerts:
        print("ALERTS RAISED (--fail-on-alert)", file=sys.stderr)
        return 2
    print("certified: no safety violations observed")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Elastic Paxos (ICDCS 2017) experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig3 = sub.add_parser("fig3", help="vertical scalability (Fig. 3)")
    fig3.add_argument("--duration", type=float, default=60.0)
    fig3.add_argument("--prepare", action="store_true",
                      help="use the prepare_msg hint (the paper does not)")

    fig4 = sub.add_parser("fig4", help="key/value store re-partitioning (Fig. 4)")
    fig4.add_argument("--duration", type=float, default=60.0)

    fig5 = sub.add_parser("fig5", help="acceptor reconfiguration (Fig. 5)")
    fig5.add_argument("--duration", type=float, default=70.0)
    fig5.add_argument("--no-prepare", action="store_true",
                      help="skip the prepare_msg hint (shows the stall)")

    sub.add_parser("provisioning", help="~60 s stream provisioning (§VI)")
    sub.add_parser("all", help="run every experiment")

    faults = sub.add_parser(
        "faults", help="fault injection under invariant checking"
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    faults_sub.add_parser("list", help="list the named scenarios")
    faults_run = faults_sub.add_parser(
        "run", help="run a scenario and print the invariant report"
    )
    faults_run.add_argument("scenario", help="scenario name (see `faults list`)")
    faults_run.add_argument("--seed", type=int, default=1)
    faults_run.add_argument(
        "--seeds", type=int, default=1,
        help="run this many consecutive seeds starting at --seed",
    )

    elasticity = sub.add_parser(
        "elasticity",
        help="closed-loop autoscaler acceptance scenarios "
             "(docs/ELASTICITY.md)",
    )
    elasticity.add_argument("--scenario", default=None,
                            help="scenario name (see --list)")
    elasticity.add_argument("--list", action="store_true",
                            help="list the named scenarios")
    elasticity.add_argument("--dry-run", action="store_true",
                            help="advisory mode: record decisions, "
                                 "execute nothing")

    trace = sub.add_parser(
        "trace", help="run an experiment with trace capture to JSONL, "
                      "or tail a live trace file with --follow"
    )
    trace.add_argument("experiment",
                       help=f"experiment to run under tracing "
                            f"({', '.join(_TRACEABLE)}), or with "
                            f"--follow a trace JSONL file to tail")
    trace.add_argument("--out", default=None,
                       help="output JSONL path (required for "
                            "experiments; optional tee for --follow)")
    trace.add_argument("--duration", type=float, default=None,
                       help="override the experiment's default duration")
    trace.add_argument(
        "--categories", default="default",
        help="'default', 'all', or a comma-separated category list "
             "(net/sim/dispatch are the opt-in firehoses)",
    )
    trace.add_argument("--follow", action="store_true",
                       help="tail the given trace JSONL file live "
                            "(tolerates torn tails and truncation)")
    trace.add_argument("--interval", type=float, default=0.2,
                       help="with --follow: poll period in seconds "
                            "(default 0.2)")
    trace.add_argument("--max-events", type=int, default=None,
                       help="with --follow: stop after emitting this "
                            "many events")
    trace.add_argument("--idle-timeout", type=float, default=None,
                       help="with --follow: stop after this many "
                            "seconds without new events")

    stats = sub.add_parser(
        "stats", help="per-stage latency report from a recorded trace"
    )
    stats.add_argument("trace", help="trace JSONL file (from `trace`)")

    validate = sub.add_parser(
        "validate-trace", help="check a trace against the event schema"
    )
    validate.add_argument("trace", help="trace JSONL file to validate")

    latency = sub.add_parser(
        "latency",
        help="critical-path latency budget from a recorded trace",
    )
    latency.add_argument(
        "trace",
        help="trace JSONL file (from `trace` or `trace-merge`)",
    )
    latency.add_argument("--out", default=None,
                         help="write the JSON budget report here")
    latency.add_argument("--diff", default=None,
                         help="compare against a saved budget JSON")

    bench = sub.add_parser(
        "bench", help="performance microbenchmarks (docs/PERFORMANCE.md)"
    )
    bench.add_argument("--quick", action="store_true",
                       help="seconds-scale sizes (the CI perf-smoke mode)")
    bench.add_argument("--profile", action="store_true",
                       help="sampling-profile the figure-3 run instead")
    bench.add_argument("--out", default=None,
                       help="write the JSON report here (e.g. BENCH_PR3.json)")
    bench.add_argument("--baseline", default=None,
                       help="compare against a committed BENCH_*.json report")
    bench.add_argument("--threshold", type=float, default=0.25,
                       help="regression threshold as a fraction (default 0.25)")
    bench.add_argument("--latency-budget", action="store_true",
                       help="also run a traced fig3 and embed its "
                            "critical-path latency budget in the report")
    bench.add_argument("--profile-overhead", action="store_true",
                       help="measure the stack sampler's overhead on the "
                            "quick fig3 run instead (the CI gate)")
    bench.add_argument("--overhead-threshold", type=float, default=0.05,
                       help="allowed profiler overhead as a fraction "
                            "(default 0.05)")
    bench.add_argument("--live", action="store_true",
                       help="run the live-backend suite instead: codec/"
                            "transport microbenchmarks + a localhost "
                            "cluster at fixed offered load (gated in CI "
                            "against BENCH_PR8.json)")
    bench.add_argument("--uvloop", action="store_true",
                       help="with --live: run the suite on uvloop when "
                            "installed (soft dependency; falls back to "
                            "asyncio)")

    live = sub.add_parser(
        "live",
        help="run a real asyncio/TCP cluster with a runtime subscribe "
             "(docs/RUNTIME.md)",
    )
    live.add_argument("--streams", type=int, default=2,
                      help="number of Paxos streams (default 2)")
    live.add_argument("--replicas", type=int, default=3,
                      help="replicas in the group (default 3)")
    live.add_argument("--duration", type=float, default=5.0,
                      help="workload wall seconds (default 5)")
    live.add_argument("--rate", type=float, default=200.0,
                      help="client multicasts per second (default 200)")
    live.add_argument("--metrics-out", default=None,
                      help="write a JSON metrics dump here "
                           "(readable by `stats`)")
    live.add_argument("--nodes", type=int, default=1,
                      help="clock/transport domains to partition the "
                           "cluster into (default 1)")
    live.add_argument("--telemetry-dir", default=None,
                      help="write per-node traces + endpoints.json here "
                           "and serve live HTTP metrics/health endpoints")
    live.add_argument("--clock-skew", type=float, default=0.0,
                      help="artificial clock skew between nodes in "
                           "seconds (exercises trace-merge alignment)")
    live.add_argument("--autoscale", action="store_true",
                      help="closed-loop subscription: an autoscaler "
                           "polls telemetry and subscribes spare "
                           "streams under load (docs/ELASTICITY.md)")
    live.add_argument("--rate-ramp", type=float, default=None,
                      help="linearly ramp the client rate from --rate "
                           "to this value over the run")
    live.add_argument("--autoscale-ceiling", type=float, default=150.0,
                      help="decided values/s per stream that triggers "
                           "a subscription (default 150)")
    live.add_argument("--profile-dir", default=None,
                      help="run the per-node stack sampler and write "
                           "flamegraph-compatible collapsed stacks to "
                           "DIR/<node>.stacks.txt")
    live.add_argument("--dissemination", choices=("ring", "classic"),
                      default="ring",
                      help="phase-2 dissemination over TCP: ring "
                           "(coordinator->acceptor ring, default) or "
                           "classic (fan-out/fan-in)")
    live.add_argument("--no-adaptive-batch", action="store_true",
                      help="disable load-adaptive coordinator batching "
                           "and keep the fixed sim-default trigger")
    live.add_argument("--lam", type=int, default=None,
                      help="per-stream λ (positions/s) for skip pacing; "
                           "default scales with the offered rate")
    live.add_argument("--burst", type=int, default=1,
                      help="client submissions per workload tick "
                           "(amortises sleep granularity at high rates)")
    live.add_argument("--uvloop", action="store_true",
                      help="drive the cluster with uvloop when installed "
                           "(soft dependency; falls back to asyncio)")

    deploy = sub.add_parser(
        "deploy",
        help="run the cluster as real OS processes with live chaos "
             "injection (docs/DEPLOY.md)",
    )
    deploy.add_argument("--scenario", default="baseline",
                        help="chaos scenario: baseline, kill9, partition, "
                             "clock-skew, rolling-replace (default "
                             "baseline); --list-scenarios to describe")
    deploy.add_argument("--list-scenarios", action="store_true",
                        help="describe the scenarios and exit")
    deploy.add_argument("--nodes", type=int, default=3,
                        help="worker processes (default 3)")
    deploy.add_argument("--streams", type=int, default=2,
                        help="number of Paxos streams (default 2)")
    deploy.add_argument("--replicas", type=int, default=3,
                        help="replicas in the group (default 3)")
    deploy.add_argument("--duration", type=float, default=4.0,
                        help="workload wall seconds (default 4)")
    deploy.add_argument("--rate", type=float, default=200.0,
                        help="client multicasts per second (default 200)")
    deploy.add_argument("--burst", type=int, default=1,
                        help="client submissions per workload tick")
    deploy.add_argument("--run-dir", default=None,
                        help="run directory for the spec, traces, logs, "
                             "metrics and manifest (default: "
                             "deploy-runs/<scenario>)")
    deploy.add_argument("--address-file", default=None,
                        help="JSON map of pre-started remote workers' "
                             "control addresses; connect instead of "
                             "spawning children (docs/DEPLOY.md)")
    deploy.add_argument("--profile", action="store_true",
                        help="run each worker's stack sampler and write "
                             "collapsed stacks into the run directory")
    deploy.add_argument("--verbose", action="store_true",
                        help="stream supervisor progress as it happens")

    worker = sub.add_parser(
        "worker",
        help="one deployment worker process (spawned by `deploy`; "
             "start manually for --address-file mode)",
    )
    worker.add_argument("--spec", required=True,
                        help="topology spec JSON written by the supervisor")
    worker.add_argument("--node", required=True,
                        help="which node of the spec this process hosts")
    worker.add_argument("--run-dir", required=True,
                        help="directory for this node's trace/log/flight "
                             "files")
    worker.add_argument("--ready-file", default=None,
                        help="write a JSON ready marker (control address, "
                             "pid) here once listening")
    worker.add_argument("--control-host", default="127.0.0.1",
                        help="control RPC bind host (default 127.0.0.1)")
    worker.add_argument("--control-port", type=int, default=0,
                        help="control RPC bind port (default: ephemeral)")
    worker.add_argument("--transport-host", default="127.0.0.1",
                        help="data transport bind host (default 127.0.0.1)")
    worker.add_argument("--incarnation", type=int, default=0,
                        help="restart generation (stamps the trace node id)")

    merge = sub.add_parser(
        "trace-merge",
        help="merge per-node live traces into one aligned timeline",
    )
    merge.add_argument("traces", nargs="+",
                       help="per-node trace JSONL files (from `live "
                            "--telemetry-dir`)")
    merge.add_argument("--out", required=True,
                       help="output JSONL path for the merged timeline")

    top = sub.add_parser(
        "top", help="live console over a running cluster's endpoints"
    )
    top.add_argument("endpoints",
                     help="endpoints.json written by `live "
                          "--telemetry-dir` (or the directory itself)")
    top.add_argument("--interval", type=float, default=1.0,
                     help="refresh period in seconds (default 1)")
    top.add_argument("--iterations", type=int, default=None,
                     help="stop after this many frames (default: forever)")
    top.add_argument("--no-clear", action="store_true",
                     help="append frames instead of clearing the screen")
    top.add_argument("--timeout", type=float, default=0.5,
                     help="per-node scrape timeout in seconds (default "
                          "0.5); a dead node renders as unreachable "
                          "instead of freezing the console")

    watch = sub.add_parser(
        "watch",
        help="online safety certifier + anomaly watchdog over a run "
             "(docs/OBSERVABILITY.md, 'Online audit')",
    )
    watch.add_argument("target",
                       help="deploy run directory (tails its "
                            "*.trace.jsonl files), a single trace JSONL "
                            "file, or an endpoints.json (polls /health)")
    watch.add_argument("--follow", action="store_true",
                       help="keep tailing until Ctrl-C / --duration "
                            "instead of stopping at end of input")
    watch.add_argument("--interval", type=float, default=0.2,
                       help="poll period in seconds (default 0.2)")
    watch.add_argument("--duration", type=float, default=None,
                       help="stop after this many wall seconds")
    watch.add_argument("--out", default=None,
                       help="write schema-valid audit.*/alert.* records "
                            "to this JSONL alert log")
    watch.add_argument("--stall-after", type=float, default=2.0,
                       help="watermark/quorum stall bound in trace "
                            "seconds (default 2)")
    watch.add_argument("--reconfig-bound", type=float, default=5.0,
                       help="reconfiguration commit-liveness bound in "
                            "trace seconds (default 5)")
    watch.add_argument("--timeout", type=float, default=0.5,
                       help="per-node scrape timeout (endpoints mode)")
    watch.add_argument("--fail-on-alert", action="store_true",
                       help="exit 2 if any anomaly alert was raised "
                            "(the CI zero-false-positive gate)")

    for name, p in sub.choices.items():
        # Live runs are wall-clock and nondeterministic: no --seed.
        if name in ("faults", "stats", "validate-trace", "latency", "bench",
                    "live", "trace-merge", "top", "deploy", "worker",
                    "watch"):
            continue
        p.add_argument("--seed", type=int, default=1)
        if name in ("provisioning", "all"):
            p.set_defaults(duration=None)
    return parser


_DISPATCH = {
    "fig3": _fig3,
    "fig4": _fig4,
    "fig5": _fig5,
    "provisioning": _provisioning,
    "faults": _faults,
    "elasticity": _elasticity,
    "trace": _trace,
    "stats": _stats,
    "validate-trace": _validate_trace,
    "latency": _latency,
    "bench": _bench,
    "live": _live,
    "deploy": _deploy,
    "worker": _worker,
    "trace-merge": _trace_merge,
    "top": _top,
    "watch": _watch,
}


def _all(args) -> int:
    """Run every experiment, each re-parsed through the real parser so
    per-command defaults and flags apply exactly as in a direct run."""
    parser = build_parser()
    status = 0
    for name in ("fig3", "fig4", "fig5", "provisioning"):
        sub_args = parser.parse_args([name, "--seed", str(args.seed)])
        code = _DISPATCH[name](sub_args)
        if code:
            status = code
    return status


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "all":
        return _all(args)
    handler = _DISPATCH[args.command]
    return handler(args) or 0


if __name__ == "__main__":
    sys.exit(main())
