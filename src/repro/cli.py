"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro fig3 [--duration 60] [--seed 1] [--prepare]
    python -m repro fig4 [--duration 60]
    python -m repro fig5 [--duration 70] [--no-prepare]
    python -m repro provisioning
    python -m repro all
    python -m repro faults list
    python -m repro faults run <scenario> [--seed 1] [--seeds N]

Each experiment command runs on the simulator and prints the
paper-vs-measured comparison plus sparkline series; ``faults`` runs a
named fault-injection scenario (see ``docs/FAULTS.md``) under the
always-on safety invariant checkers and prints the invariant report.
"""

from __future__ import annotations

import argparse
import sys

from .harness.experiments import (
    HorizontalConfig,
    ProvisioningConfig,
    ReconfigConfig,
    VerticalConfig,
    run_horizontal,
    run_provisioning,
    run_reconfig,
    run_vertical,
)
from .harness.report import comparison_table, section, series_sparkline

__all__ = ["main"]


def _fig3(args) -> None:
    config = VerticalConfig(
        duration=args.duration, seed=args.seed, use_prepare=args.prepare
    )
    result = run_vertical(config)
    print(section("Figure 3: vertical scalability (add a stream every 15 s)"))
    paper = [735.0, 1498.0, 2391.0, 2660.0]
    rows = [
        (f"interval {i + 1} avg (ops/s)", p, m)
        for i, (p, m) in enumerate(zip(paper, result.interval_averages))
    ]
    rows.append(("scaling factor", 3.62, result.scaling_factor))
    rows.append(("latency p95 (ms)", 8.3, result.latency_p95_ms))
    print(comparison_table(rows))
    print("throughput:", series_sparkline(result.throughput))
    for stream in sorted(result.per_stream):
        print(f"{stream:>10}:", series_sparkline(result.per_stream[stream]))


def _fig4(args) -> None:
    config = HorizontalConfig(duration=args.duration, seed=args.seed)
    result = run_horizontal(config)
    ba = result.before_after
    print(section("Figure 4: re-partitioning a key/value store (75% peak load)"))
    print(
        comparison_table(
            [
                ("re-partitioning gap (s)", 1.0, result.gap_duration),
                ("replica 1 ops after/before", 0.5,
                 ba["r1_ops_after"] / ba["r1_ops_before"]),
                ("replica 2 ops after/before", 0.5,
                 ba["r2_ops_after"] / ba["r2_ops_before"]),
                ("replica 1 cpu after/before", 0.5,
                 ba["r1_cpu_after"] / ba["r1_cpu_before"]),
                ("aggregate after/before", 1.0,
                 ba["client_after"] / ba["client_before"]),
            ]
        )
    )
    print("client ops:", series_sparkline(result.client_throughput))
    for name in ("r1", "r2"):
        print(f"{name} applied:", series_sparkline(result.replica_throughput[name]))


def _fig5(args) -> None:
    config = ReconfigConfig(
        duration=args.duration, seed=args.seed, use_prepare=not args.no_prepare
    )
    result = run_reconfig(config)
    print(section("Figure 5: acceptor reconfiguration under full load"))
    print(
        comparison_table(
            [
                ("steady throughput (Mbps)", 550.0, result.throughput_mbps),
                ("latency p95 (ms)", 2.7, result.latency_p95_ms),
                ("switch overhead (fraction)", 0.0, result.overhead_ratio),
                ("client timeouts", 0, result.timeouts),
            ]
        )
    )
    print("total :", series_sparkline(result.throughput))
    for stream in sorted(result.per_stream):
        print(f"{stream:>6}:", series_sparkline(result.per_stream[stream]))


def _provisioning(args) -> None:
    result = run_provisioning(ProvisioningConfig(seed=args.seed))
    print(section("§VI: adding a stream from freshly booted VMs"))
    print(
        comparison_table(
            [
                ("total (s)", 60.0, result.total_seconds),
                ("VM boot (s)", "~55-65",
                 result.vms_active_at - result.requested_at),
                ("subscribe+merge (s)", "(small)",
                 result.first_delivery_at - result.subscribed_at),
            ]
        )
    )


def _faults(args) -> int:
    from .faults import SCENARIOS, get_scenario, run_scenario

    if args.faults_command == "list":
        print(section("Fault-injection scenarios"))
        for name in sorted(SCENARIOS):
            print(f"  {name:<28} {SCENARIOS[name]().description}")
        return 0
    try:
        spec = get_scenario(args.scenario)
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        print(f"error: unknown scenario {args.scenario!r} (known: {known})",
              file=sys.stderr)
        return 2
    failures = 0
    for seed in range(args.seed, args.seed + args.seeds):
        print(section(f"faults: {spec.name} (seed {seed})"))
        try:
            result = run_scenario(spec, seed=seed)
        except AssertionError as violation:
            failures += 1
            print(f"INVARIANT VIOLATION: {violation}")
            print(f"reproduce with: python -m repro faults run "
                  f"{spec.name} --seed {seed}")
            continue
        print(result.report())
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the Elastic Paxos (ICDCS 2017) experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig3 = sub.add_parser("fig3", help="vertical scalability (Fig. 3)")
    fig3.add_argument("--duration", type=float, default=60.0)
    fig3.add_argument("--prepare", action="store_true",
                      help="use the prepare_msg hint (the paper does not)")

    fig4 = sub.add_parser("fig4", help="key/value store re-partitioning (Fig. 4)")
    fig4.add_argument("--duration", type=float, default=60.0)

    fig5 = sub.add_parser("fig5", help="acceptor reconfiguration (Fig. 5)")
    fig5.add_argument("--duration", type=float, default=70.0)
    fig5.add_argument("--no-prepare", action="store_true",
                      help="skip the prepare_msg hint (shows the stall)")

    sub.add_parser("provisioning", help="~60 s stream provisioning (§VI)")
    sub.add_parser("all", help="run every experiment")

    faults = sub.add_parser(
        "faults", help="fault injection under invariant checking"
    )
    faults_sub = faults.add_subparsers(dest="faults_command", required=True)
    faults_sub.add_parser("list", help="list the named scenarios")
    faults_run = faults_sub.add_parser(
        "run", help="run a scenario and print the invariant report"
    )
    faults_run.add_argument("scenario", help="scenario name (see `faults list`)")
    faults_run.add_argument("--seed", type=int, default=1)
    faults_run.add_argument(
        "--seeds", type=int, default=1,
        help="run this many consecutive seeds starting at --seed",
    )

    for name, p in sub.choices.items():
        if name == "faults":
            continue
        p.add_argument("--seed", type=int, default=1)
        if name in ("provisioning", "all"):
            p.set_defaults(duration=None)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "fig3":
        _fig3(args)
    elif args.command == "fig4":
        _fig4(args)
    elif args.command == "fig5":
        _fig5(args)
    elif args.command == "provisioning":
        _provisioning(args)
    elif args.command == "faults":
        return _faults(args)
    elif args.command == "all":
        ns = argparse.Namespace(seed=args.seed, duration=60.0, prepare=False)
        _fig3(ns)
        _fig4(ns)
        ns5 = argparse.Namespace(seed=args.seed, duration=70.0, no_prepare=False)
        _fig5(ns5)
        _provisioning(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
