"""OpenStack-style cloud environment model: VMs, placement, autoscaling."""

from .controller import ElasticityController
from .openstack import AutoScalingGroup, CloudCompute, PlacementError
from .vm import DEFAULT_BOOT_TIME, VirtualMachine, VmState

__all__ = [
    "AutoScalingGroup",
    "CloudCompute",
    "DEFAULT_BOOT_TIME",
    "ElasticityController",
    "PlacementError",
    "VirtualMachine",
    "VmState",
]
