"""Elasticity controller.

§VI: "a controller or a client can create or destroy virtual machines,
forming additional streams depending on the currently measured
application throughput."  This controller samples a throughput counter
and, when utilisation stays above a high watermark, boots a fresh
acceptor group through the autoscaling API and subscribes the replicas
to the new stream once the VMs are ACTIVE.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.core import Environment, Interrupt
from ..sim.monitor import Counter
from .openstack import AutoScalingGroup, CloudCompute
from .vm import VirtualMachine

__all__ = ["ElasticityController"]


class ElasticityController:
    """Adds streams when measured throughput nears current capacity.

    Parameters
    ----------
    throughput:
        Counter of completed operations (the "currently measured
        application throughput").
    capacity_per_stream:
        Estimated ops/second one stream sustains; current capacity is
        ``streams * capacity_per_stream``.
    provision_stream:
        ``provision_stream(stream_index, vms)`` -- called once the new
        acceptor VMs are ACTIVE; must create the stream deployment and
        issue the subscribe request.  Returns nothing.
    high_watermark:
        Utilisation (0-1) above which a scale-up is triggered.
    acceptors_per_stream:
        VMs booted per new stream (3 in every paper experiment).
    max_streams:
        Upper bound on streams (including the initial one).
    """

    def __init__(
        self,
        env: Environment,
        compute: CloudCompute,
        throughput: Counter,
        capacity_per_stream: float,
        provision_stream: Callable[[int, list[VirtualMachine]], None],
        high_watermark: float = 0.8,
        sample_interval: float = 5.0,
        acceptors_per_stream: int = 3,
        max_streams: int = 8,
        initial_streams: int = 1,
    ):
        if not 0 < high_watermark <= 1:
            raise ValueError("high_watermark must be in (0, 1]")
        if capacity_per_stream <= 0:
            raise ValueError("capacity_per_stream must be positive")
        self.env = env
        self.compute = compute
        self.throughput = throughput
        self.capacity_per_stream = capacity_per_stream
        self.provision_stream = provision_stream
        self.high_watermark = high_watermark
        self.sample_interval = sample_interval
        self.acceptors_per_stream = acceptors_per_stream
        self.max_streams = max_streams
        self.streams = initial_streams
        self.scale_events: list[tuple[float, int]] = []   # (time, new count)
        self._provisioning = False
        self._proc = None

    def start(self) -> None:
        self._proc = self.env.process(self._loop())

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
        self._proc = None

    @property
    def capacity(self) -> float:
        return self.streams * self.capacity_per_stream

    def _loop(self):
        while True:
            try:
                yield self.env.timeout(self.sample_interval)
            except Interrupt:
                return
            if self._provisioning or self.streams >= self.max_streams:
                continue
            rate = self.throughput.rate_between(
                self.env.now - self.sample_interval, self.env.now
            )
            if rate >= self.high_watermark * self.capacity:
                self._scale_up()

    def _scale_up(self) -> None:
        self._provisioning = True
        index = self.streams
        group = AutoScalingGroup(
            self.compute,
            name=f"stream-{index}-acceptors",
            on_scaled=lambda vms: self._on_vms_active(index, vms),
        )
        group.scale_up(self.acceptors_per_stream)

    def _on_vms_active(self, index: int, vms: list[VirtualMachine]) -> None:
        self.provision_stream(index, vms)
        self.streams += 1
        self.scale_events.append((self.env.now, self.streams))
        self._provisioning = False
