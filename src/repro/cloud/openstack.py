"""OpenStack-style compute API: placement, anti-affinity, autoscaling.

Models the slice of OpenStack the paper relies on:

* ``create_server`` with **anti-affinity server groups** -- "Paxos
  acceptors and replicas are scheduled to different physical machines
  using the OpenStack anti-affinity host groups" (§VII-A);
* **Heat autoscaling groups** -- the vertical-scalability experiment
  deploys each stream's acceptors as a Heat-AutoScaling group that
  "allows clients to boot up or shutdown the virtual machines that
  participate in the streams" (§VII-C).

The compute pool defaults to the paper's cluster: 16 compute nodes.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.core import AllOf, Environment, Event
from ..sim.rng import RngRegistry
from .vm import DEFAULT_BOOT_TIME, VirtualMachine, VmState

__all__ = ["CloudCompute", "AutoScalingGroup", "PlacementError"]


class PlacementError(Exception):
    """No physical host satisfies the placement constraints."""


class CloudCompute:
    """The compute service: boots VMs onto physical hosts."""

    def __init__(
        self,
        env: Environment,
        n_compute_nodes: int = 16,
        vms_per_node: int = 40,
        boot_time: float = DEFAULT_BOOT_TIME,
        boot_jitter: float = 10.0,
        rng: Optional[RngRegistry] = None,
    ):
        if n_compute_nodes < 1:
            raise ValueError("need at least one compute node")
        self.env = env
        self.boot_time = boot_time
        self.boot_jitter = boot_jitter
        self._rng = (rng or RngRegistry(0)).stream("cloud")
        self.nodes = [f"compute-{i:02d}" for i in range(n_compute_nodes)]
        self.vms_per_node = vms_per_node
        self.servers: dict[str, VirtualMachine] = {}
        self._groups: dict[str, list[str]] = {}   # anti-affinity groups

    # -- placement ----------------------------------------------------------

    def _occupancy(self, node: str) -> int:
        return sum(
            1
            for vm in self.servers.values()
            if vm.physical_host == node and vm.state is not VmState.DELETED
        )

    def _place(self, anti_affinity_group: Optional[str]) -> str:
        excluded: set[str] = set()
        if anti_affinity_group is not None:
            members = self._groups.setdefault(anti_affinity_group, [])
            excluded = {
                self.servers[name].physical_host
                for name in members
                if self.servers[name].state is not VmState.DELETED
            }
        candidates = [
            node
            for node in self.nodes
            if node not in excluded and self._occupancy(node) < self.vms_per_node
        ]
        if not candidates:
            raise PlacementError(
                f"no host satisfies anti-affinity group "
                f"{anti_affinity_group!r} (excluded: {sorted(excluded)})"
            )
        # Least-loaded placement, ties broken by node order: deterministic.
        return min(candidates, key=lambda node: (self._occupancy(node), node))

    # -- API -------------------------------------------------------------------

    def create_server(
        self,
        name: str,
        anti_affinity_group: Optional[str] = None,
        flavor: str = "m1.small",
    ) -> VirtualMachine:
        """Request a VM; it becomes ACTIVE after the boot time."""
        if name in self.servers and self.servers[name].state is not VmState.DELETED:
            raise ValueError(f"server {name!r} already exists")
        host = self._place(anti_affinity_group)
        boot = self.boot_time
        if self.boot_jitter > 0:
            boot += self._rng.uniform(0.0, self.boot_jitter)
        vm = VirtualMachine(self.env, name, host, boot, flavor)
        self.servers[name] = vm
        if anti_affinity_group is not None:
            self._groups[anti_affinity_group].append(name)
        return vm

    def delete_server(self, name: str) -> None:
        try:
            self.servers[name].delete()
        except KeyError:
            raise KeyError(f"unknown server {name!r}") from None

    def server(self, name: str) -> VirtualMachine:
        return self.servers[name]

    def active_servers(self) -> list[str]:
        return sorted(
            name for name, vm in self.servers.items() if vm.is_active
        )

    def wait_active(self, vms: list[VirtualMachine]) -> Event:
        """Event that fires when every VM in ``vms`` is ACTIVE."""
        return AllOf(self.env, [vm.active_event for vm in vms])


class AutoScalingGroup:
    """A Heat-style autoscaling group of identical VMs."""

    def __init__(
        self,
        compute: CloudCompute,
        name: str,
        anti_affinity: bool = True,
        on_scaled: Optional[Callable[[list[VirtualMachine]], None]] = None,
    ):
        self.compute = compute
        self.name = name
        self.anti_affinity = anti_affinity
        self.on_scaled = on_scaled
        self.instances: list[VirtualMachine] = []
        self._counter = 0

    @property
    def size(self) -> int:
        return sum(1 for vm in self.instances if vm.state is not VmState.DELETED)

    def scale_up(self, count: int) -> list[VirtualMachine]:
        """Boot ``count`` new instances; ``on_scaled`` fires when all are
        ACTIVE."""
        if count < 1:
            raise ValueError("count must be >= 1")
        group = self.name if self.anti_affinity else None
        new_vms = []
        for _ in range(count):
            self._counter += 1
            vm = self.compute.create_server(
                f"{self.name}-{self._counter:03d}", anti_affinity_group=group
            )
            new_vms.append(vm)
            self.instances.append(vm)
        if self.on_scaled is not None:
            done = self.compute.wait_active(new_vms)
            done.callbacks.append(lambda _e: self.on_scaled(new_vms))
        return new_vms

    def scale_down(self, count: int) -> list[VirtualMachine]:
        """Delete the ``count`` newest live instances."""
        victims = [vm for vm in reversed(self.instances) if vm.state is not VmState.DELETED]
        victims = victims[:count]
        for vm in victims:
            self.compute.delete_server(vm.name)
        return victims
