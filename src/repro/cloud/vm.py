"""Virtual machine lifecycle.

The paper deploys every role (acceptors, replicas, clients) on
OpenStack VMs (2 vCPU / 2 GB) and reports that "adding a new stream
from newly created virtual machines (three acceptors) takes
approximately 60 seconds" -- dominated by VM boot.  This module models
that lifecycle: a VM is requested, boots for a configurable time, runs,
and can be deleted.
"""

from __future__ import annotations

import enum
from typing import Optional

from ..sim.core import Environment, Event

__all__ = ["VmState", "VirtualMachine", "DEFAULT_BOOT_TIME"]

# §VI: ~60 s to add a stream of three freshly booted acceptor VMs.
DEFAULT_BOOT_TIME = 55.0


class VmState(enum.Enum):
    BUILDING = "building"
    ACTIVE = "active"
    DELETED = "deleted"


class VirtualMachine:
    """One VM instance; ``active_event`` fires when boot completes."""

    def __init__(
        self,
        env: Environment,
        name: str,
        physical_host: str,
        boot_time: float,
        flavor: str = "m1.small",
    ):
        self.env = env
        self.name = name
        self.physical_host = physical_host
        self.flavor = flavor
        self.state = VmState.BUILDING
        self.requested_at = env.now
        self.active_at: Optional[float] = None
        self.active_event: Event = env.event()
        env.call_later(boot_time, self._become_active)

    def _become_active(self) -> None:
        if self.state is VmState.DELETED:
            return  # deleted while still building
        self.state = VmState.ACTIVE
        self.active_at = self.env.now
        self.active_event.succeed(self)

    def delete(self) -> None:
        self.state = VmState.DELETED

    @property
    def is_active(self) -> bool:
        return self.state is VmState.ACTIVE

    def __repr__(self) -> str:
        return f"<VM {self.name} {self.state.value} on {self.physical_host}>"
