"""Coordination service: versioned configuration registry with watches."""

from .registry import (
    RegistryClient,
    RegistryGet,
    RegistryGetReply,
    RegistryService,
    RegistrySet,
    RegistrySetReply,
    RegistryWatch,
    WatchEvent,
)

__all__ = [
    "RegistryClient",
    "RegistryGet",
    "RegistryGetReply",
    "RegistryService",
    "RegistrySet",
    "RegistrySetReply",
    "RegistryWatch",
    "WatchEvent",
]
