"""Configuration registry with watches (the ZooKeeper of URingPaxos).

URingPaxos stores ring management and protocol configuration in
ZooKeeper, and the paper's key/value store clients learn about
partition-map changes through ZooKeeper notifications ("The client is
notified about the change in the partitioning by ZooKeeper", §VII-D).

:class:`RegistryService` is a versioned key/value service with
one-shot-free (persistent) watches; :class:`RegistryClient` is the
stub other actors embed.  Both communicate over the simulated network,
so notification latency is part of every experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..net.actor import Actor
from ..net.messages import Message
from ..runtime.kernel import Kernel, Transport

__all__ = [
    "RegistryClient",
    "RegistryService",
    "RegistryGet",
    "RegistryGetReply",
    "RegistrySet",
    "RegistrySetReply",
    "RegistryWatch",
    "WatchEvent",
]


@dataclass(frozen=True)
class RegistryGet(Message):
    key: str
    request_id: int


@dataclass(frozen=True)
class RegistryGetReply(Message):
    key: str
    request_id: int
    value: Any
    version: int            # -1 when the key does not exist


@dataclass(frozen=True)
class RegistrySet(Message):
    key: str
    value: Any
    request_id: int


@dataclass(frozen=True)
class RegistrySetReply(Message):
    key: str
    request_id: int
    version: int


@dataclass(frozen=True)
class RegistryWatch(Message):
    key: str


@dataclass(frozen=True)
class WatchEvent(Message):
    key: str
    value: Any
    version: int


class RegistryService(Actor):
    """A single versioned configuration store with persistent watches."""

    def __init__(self, env: Kernel, network: Transport, name: str = "registry"):
        super().__init__(env, network, name)
        self._data: dict[str, tuple[Any, int]] = {}
        self._watchers: dict[str, list[str]] = {}

    def on_registry_get(self, msg: RegistryGet, src: str) -> None:
        value, version = self._data.get(msg.key, (None, -1))
        self.send(
            src,
            RegistryGetReply(
                key=msg.key, request_id=msg.request_id, value=value, version=version
            ),
        )

    def on_registry_set(self, msg: RegistrySet, src: str) -> None:
        _old, version = self._data.get(msg.key, (None, -1))
        version += 1
        self._data[msg.key] = (msg.value, version)
        self.send(
            src,
            RegistrySetReply(key=msg.key, request_id=msg.request_id, version=version),
        )
        event = WatchEvent(key=msg.key, value=msg.value, version=version)
        for watcher in self._watchers.get(msg.key, ()):
            self.send(watcher, event)

    def on_registry_watch(self, msg: RegistryWatch, src: str) -> None:
        watchers = self._watchers.setdefault(msg.key, [])
        if src not in watchers:
            watchers.append(src)
        # Immediately report the current value so the watcher starts
        # from a known state (ZooKeeper getData+watch idiom).
        value, version = self._data.get(msg.key, (None, -1))
        self.send(src, WatchEvent(key=msg.key, value=value, version=version))

    # -- local (zero-latency) access for the test/deploy harness -------------

    def put_local(self, key: str, value: Any) -> int:
        """Set a key from the deployment harness, notifying watchers."""
        _old, version = self._data.get(key, (None, -1))
        version += 1
        self._data[key] = (value, version)
        event = WatchEvent(key=key, value=value, version=version)
        for watcher in self._watchers.get(key, ()):
            self.send(watcher, event)
        return version

    def get_local(self, key: str) -> Optional[Any]:
        entry = self._data.get(key)
        return entry[0] if entry else None


class RegistryClient:
    """Embeddable stub: an actor mixes this in to talk to the registry.

    The owning actor must route :class:`RegistryGetReply`,
    :class:`RegistrySetReply` and :class:`WatchEvent` payloads to
    :meth:`handle_registry_message`.
    """

    def __init__(self, owner: Actor, registry_name: str = "registry"):
        self.owner = owner
        self.registry_name = registry_name
        self._next_request = 0
        self._get_callbacks: dict[int, Callable[[Any, int], None]] = {}
        self._set_callbacks: dict[int, Callable[[int], None]] = {}
        self._watch_callbacks: dict[str, Callable[[Any, int], None]] = {}

    def get(self, key: str, callback: Callable[[Any, int], None]) -> None:
        self._next_request += 1
        self._get_callbacks[self._next_request] = callback
        self.owner.send(
            self.registry_name, RegistryGet(key=key, request_id=self._next_request)
        )

    def set(
        self, key: str, value: Any, callback: Optional[Callable[[int], None]] = None
    ) -> None:
        self._next_request += 1
        if callback is not None:
            self._set_callbacks[self._next_request] = callback
        self.owner.send(
            self.registry_name,
            RegistrySet(key=key, value=value, request_id=self._next_request),
        )

    def watch(self, key: str, callback: Callable[[Any, int], None]) -> None:
        self._watch_callbacks[key] = callback
        self.owner.send(self.registry_name, RegistryWatch(key=key))

    def handle_registry_message(self, payload: Message) -> bool:
        """Returns True if the payload was a registry message."""
        if isinstance(payload, RegistryGetReply):
            callback = self._get_callbacks.pop(payload.request_id, None)
            if callback is not None:
                callback(payload.value, payload.version)
            return True
        if isinstance(payload, RegistrySetReply):
            callback = self._set_callbacks.pop(payload.request_id, None)
            if callback is not None:
                callback(payload.version)
            return True
        if isinstance(payload, WatchEvent):
            callback = self._watch_callbacks.get(payload.key)
            if callback is not None:
                callback(payload.value, payload.version)
            return True
        return False
