"""Multi-process deployment plane for the live runtime.

``python -m repro deploy`` runs the live cluster as **real OS
processes**: a supervisor (:mod:`repro.deploy.supervisor`) spawns one
worker process per node (``python -m repro worker``, see
:mod:`repro.deploy.worker`), coordinates readiness / start / workload /
drain / stop over a small length-prefixed control RPC
(:mod:`repro.deploy.control`), and collects every node's trace,
metrics and profile files into one run directory.  The chaos layer
(:mod:`repro.deploy.chaos`) ports the PR 1 fault scenarios to this
backend: ``kill -9`` with supervised restart, socket-level partitions,
and clock-skew injection -- see docs/DEPLOY.md.

This ``__init__`` stays import-light on purpose: the wire codec
(:mod:`repro.runtime.codec`) registers :mod:`repro.deploy.wire`'s
message classes at import time, which must not drag the whole
deployment plane (or, transitively, ``repro.sim``) in.  Everything
heavy loads lazily via ``__getattr__``.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "DeployConfig",
    "DeployReport",
    "DeploySupervisor",
    "JoinAck",
    "JoinLearner",
    "SCENARIOS",
    "TopologySpec",
    "build_topology",
    "run_deploy",
    "worker_main",
]

_LAZY = {
    "DeployConfig": "supervisor",
    "DeployReport": "supervisor",
    "DeploySupervisor": "supervisor",
    "JoinAck": "wire",
    "JoinLearner": "wire",
    "SCENARIOS": "chaos",
    "TopologySpec": "topology",
    "build_topology": "topology",
    "run_deploy": "chaos",
    "worker_main": "worker",
}


def __getattr__(name: str) -> Any:
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)
