"""Per-worker deploy agent: cross-process stream directory plumbing.

In the single-process live cluster every replica holds a reference to
every :class:`~repro.multicast.stream.StreamDeployment` and calls
``add_learner`` directly.  Across processes that call has to travel:
each worker runs one :class:`DeployAgent` actor (host
``<node>/agent``), and streams hosted on *other* workers appear in the
local directory as :class:`RemoteStreamDeployment` stubs that forward
``add_learner`` / ``remove_learner`` through the agent as
:class:`~repro.deploy.wire.JoinLearner` messages over the ordinary
data transport.

The transport is fire-and-forget (frames drop under backpressure,
partition, or while a link is parked unreachable), so the agent keeps
every join pending until the owner's :class:`~repro.deploy.wire.JoinAck`
arrives, resending on a timer.  The owning side applies joins
idempotently (``StreamDeployment.add_learner`` ignores duplicates), so
retries are safe.
"""

from __future__ import annotations

import asyncio
from typing import Optional

from ..multicast.stream import StreamDeployment
from ..net.actor import Actor
from ..paxos.config import StreamConfig
from ..runtime.kernel import Kernel, Transport
from .topology import agent_host
from .wire import JoinAck, JoinLearner

__all__ = ["DeployAgent", "RemoteStreamDeployment"]

_RETRY_INTERVAL = 0.5
_MAX_RETRIES = 40


class DeployAgent(Actor):
    """One per worker: answers remote joins, retries its own."""

    def __init__(self, env: Kernel, network: Transport, node: str):
        super().__init__(env, network, agent_host(node))
        self.node = node
        self.local: dict[str, StreamDeployment] = {}
        # join_id -> (owner agent host, message, attempts)
        self._pending: dict[int, tuple[str, JoinLearner, int]] = {}
        self._next_join_id = 1
        self._retry_task: Optional[asyncio.Task] = None
        self.joins_sent = 0
        self.joins_applied = 0
        self.joins_failed = 0

    def register_local(self, stream: str, deployment: StreamDeployment) -> None:
        """This worker owns ``stream``; answer joins for it here."""
        self.local[stream] = deployment

    # -- outbound (stub side) -----------------------------------------

    def request_join(self, owner: str, stream: str, learner: str,
                     add: bool) -> int:
        join_id = self._next_join_id
        self._next_join_id += 1
        message = JoinLearner(
            stream=stream, learner=learner, add=add, join_id=join_id
        )
        self._pending[join_id] = (owner, message, 1)
        self.joins_sent += 1
        self.send(owner, message)
        return join_id

    @property
    def pending_joins(self) -> int:
        return len(self._pending)

    def start(self) -> None:
        super().start()
        if self._retry_task is None:
            self._retry_task = asyncio.ensure_future(self._retry_loop())

    def stop(self) -> None:
        if self._retry_task is not None:
            self._retry_task.cancel()
            self._retry_task = None
        super().stop()

    async def _retry_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(_RETRY_INTERVAL)
                for join_id in list(self._pending):
                    owner, message, attempts = self._pending[join_id]
                    if attempts >= _MAX_RETRIES:
                        # Give up loudly: a join that never lands means
                        # the owner stayed dead for the whole window.
                        del self._pending[join_id]
                        self.joins_failed += 1
                        tracer = self.env.tracer
                        if tracer is not None:
                            tracer.emit(
                                "deploy.join_failed", self.env._now,
                                agent=self.name, stream=message.stream,
                                learner=message.learner,
                            )
                        continue
                    self._pending[join_id] = (owner, message, attempts + 1)
                    self.send(owner, message)
        except asyncio.CancelledError:
            pass

    # -- inbound (owner side) -----------------------------------------

    def on_join_learner(self, msg: JoinLearner, src: str) -> None:
        deployment = self.local.get(msg.stream)
        if deployment is not None:
            if msg.add:
                deployment.add_learner(msg.learner)
            else:
                deployment.remove_learner(msg.learner)
            self.joins_applied += 1
        # Ack even when the stream is unknown here: the requester must
        # stop retrying (a misrouted join will never become routable --
        # stream placement is fixed by the spec).
        self.send(src, JoinAck(join_id=msg.join_id))

    def on_join_ack(self, msg: JoinAck, src: str) -> None:
        self._pending.pop(msg.join_id, None)


class RemoteStreamDeployment:
    """Directory stub for a stream hosted on another worker.

    Exposes exactly the surface :class:`~repro.multicast.replica
    .MulticastReplica` and :class:`~repro.multicast.api.MulticastClient`
    use from a directory entry: ``config`` (reconstructed identically
    from the spec, so ``config.coordinator`` routes over the wire) and
    the learner registration calls, forwarded through the agent.
    """

    def __init__(self, config: StreamConfig, agent: DeployAgent,
                 owner_node: str):
        self.config = config
        self.agent = agent
        self.owner_agent = agent_host(owner_node)

    @property
    def name(self) -> str:
        return self.config.name

    def add_learner(self, learner_name: str) -> None:
        self.agent.request_join(
            self.owner_agent, self.config.name, learner_name, add=True
        )

    def remove_learner(self, learner_name: str) -> None:
        self.agent.request_join(
            self.owner_agent, self.config.name, learner_name, add=False
        )

    def start(self) -> None:       # the owner starts the real actors
        pass

    def stop(self) -> None:
        pass
