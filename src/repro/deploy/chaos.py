"""Live chaos scenarios for the multi-process deployment plane.

The PR 1 fault layer ported to real processes: each scenario drives the
Fig. 3-style workload through :class:`~repro.deploy.supervisor
.DeploySupervisor` while injecting one fault family *for real* --

* ``kill9``     -- ``SIGKILL`` a worker mid-traffic, then a supervised
  restart: the replica re-bootstraps in a fresh process and replays the
  delivery sequence from position 1 (learner gap repair against the
  surviving acceptors);
* ``partition`` -- a symmetric socket-level cut between one node and
  the rest (:meth:`TcpTransport.set_partition` on both sides), healed
  mid-run;
* ``clock-skew``-- per-node kernel clock offsets from the spec plus a
  live mid-run skew step (``kernel._t0`` shift), with a final clock
  re-sync so ``meta.clock`` reflects the post-skew domains the merge
  tool must re-align;
* ``rolling-replace`` -- the paper's acceptor-replacement drill: move
  the workload from stream s1 to a newly subscribed s2, retire s1, and
  power-cycle the node hosting s1's coordinator/acceptors while
  traffic rides s2 untouched.

Acceptance everywhere is *replica agreement across surviving
processes*; worker-side invariant suites watch continuously, and
flight-recorder dumps are written only when an invariant actually
fires or replicas disagree -- a clean drill leaves no dumps.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any, Awaitable, Callable, Optional

from .supervisor import DeployConfig, DeployReport, DeploySupervisor
from .topology import TopologySpec, build_topology

__all__ = ["SCENARIOS", "Scenario", "run_deploy"]


def _replica_only_node(spec: TopologySpec) -> Optional[str]:
    """The canonical chaos victim: hosts replicas but no streams and
    no client, so no acceptor state dies with it."""
    for node in reversed(spec.nodes):
        if node.replicas and not node.streams and not node.client:
            return node.name
    return None


async def _standard_workload(sup: DeploySupervisor) -> None:
    """Workload on the initial stream with the runtime subscribe to the
    next stream partway through -- the deployment mirror of the live
    single-process run."""
    spec = sup.spec
    workload = spec.workload
    await sup.start_workload()
    extra = [s for s in spec.streams if s not in spec.initial_streams]
    if extra:
        await asyncio.sleep(workload.subscribe_after * workload.duration)
        via = spec.initial_streams[0]
        await sup.subscribe(extra[0], via=via)
        await sup.wait_subscribed(extra[0], timeout=workload.drain_timeout)
        await sup.activate(list(spec.initial_streams) + [extra[0]])
    await sup.wait_workload(workload.duration + workload.drain_timeout)


# -- scenario drivers --------------------------------------------------

async def _drive_baseline(sup: DeploySupervisor) -> dict:
    await _standard_workload(sup)
    return {}


async def _drive_kill9(sup: DeploySupervisor) -> dict:
    spec = sup.spec
    workload = spec.workload
    victim = _replica_only_node(spec)
    if victim is None:
        raise RuntimeError("kill9 needs a replica-only node to murder")
    await sup.start_workload()
    extra = [s for s in spec.streams if s not in spec.initial_streams]
    if extra:
        await asyncio.sleep(
            workload.subscribe_after * workload.duration
        )
        await sup.subscribe(extra[0], via=spec.initial_streams[0])
        await sup.wait_subscribed(extra[0], timeout=workload.drain_timeout)
        await sup.activate(list(spec.initial_streams) + [extra[0]])
        await asyncio.sleep(0.1 * workload.duration)
    else:
        await asyncio.sleep(0.4 * workload.duration)
    killed_pid = await sup.kill9(victim)
    await asyncio.sleep(1.0)            # traffic continues over the corpse
    await sup.restart(victim)
    await sup.wait_workload(workload.duration + workload.drain_timeout)
    return {"chaos": {
        "fault": "kill9", "victim": victim, "killed_pid": killed_pid,
        "restarted_pid": sup.workers[victim].pids[-1],
    }}


async def _drive_partition(sup: DeploySupervisor) -> dict:
    spec = sup.spec
    workload = spec.workload
    victim = _replica_only_node(spec)
    if victim is None:
        raise RuntimeError("partition needs a replica-only node to isolate")
    await sup.start_workload()
    await asyncio.sleep(0.2 * workload.duration)
    await sup.set_partition(victim, blocked=True)
    await asyncio.sleep(0.3 * workload.duration)
    await sup.set_partition(victim, blocked=False)
    # Subscribe only after the heal: the isolated replica first repairs
    # its gap, then rides through the merge point like everyone else.
    extra = [s for s in spec.streams if s not in spec.initial_streams]
    if extra:
        await asyncio.sleep(0.1 * workload.duration)
        await sup.subscribe(extra[0], via=spec.initial_streams[0])
        await sup.wait_subscribed(extra[0], timeout=workload.drain_timeout)
        await sup.activate(list(spec.initial_streams) + [extra[0]])
    await sup.wait_workload(workload.duration + workload.drain_timeout)
    return {"chaos": {"fault": "partition", "victim": victim}}


async def _drive_clock_skew(sup: DeploySupervisor) -> dict:
    spec = sup.spec
    workload = spec.workload
    skewed = [n.name for n in spec.nodes if n.clock_offset]
    victim = _replica_only_node(spec) or spec.nodes[-1].name
    await sup.start_workload()
    extra = [s for s in spec.streams if s not in spec.initial_streams]
    if extra:
        await asyncio.sleep(workload.subscribe_after * workload.duration)
        await sup.subscribe(extra[0], via=spec.initial_streams[0])
        await sup.wait_subscribed(extra[0], timeout=workload.drain_timeout)
        await sup.activate(list(spec.initial_streams) + [extra[0]])
    # A live skew *step* on top of the static spec offsets: the victim's
    # clock jumps mid-run, like NTP slamming a drifted host.
    await asyncio.sleep(0.1 * workload.duration)
    await sup.skew(victim, 0.4)
    await sup.wait_workload(workload.duration + workload.drain_timeout)
    # Re-estimate offsets so the *last* meta.clock per node reflects the
    # post-step domains (trace alignment uses the last mark).
    await sup.sync_clocks()
    return {"chaos": {
        "fault": "clock-skew", "static_offsets": {
            n.name: n.clock_offset for n in spec.nodes if n.clock_offset
        },
        "stepped": {victim: 0.4},
        "note": "skewed nodes at spec offsets; "
                f"{victim} stepped +0.4s mid-run",
        "skewed_nodes": skewed,
    }}


async def _drive_rolling_replace(sup: DeploySupervisor) -> dict:
    """Acceptor replacement: retire stream s1's whole node under
    traffic by moving the workload to s2 first (runtime subscribe,
    then unsubscribe s1 *via s2* so the merge point orders the exit)."""
    spec = sup.spec
    workload = spec.workload
    old = spec.initial_streams[0]
    candidates = [s for s in spec.streams if s != old]
    if not candidates:
        raise RuntimeError("rolling-replace needs a second stream")
    new = candidates[0]
    retired_node = spec.owner_of(old)
    await sup.start_workload()
    await asyncio.sleep(workload.subscribe_after * workload.duration)
    await sup.subscribe(new, via=old)
    await sup.wait_subscribed(new, timeout=workload.drain_timeout)
    # Rotate the client wholly onto the new stream, then retire the old
    # one through it -- after this merge point no replica needs s1.
    await sup.activate([new])
    await sup.unsubscribe(old, via=new)
    await sup.wait_subscribed(
        old, timeout=workload.drain_timeout, subscribed=False
    )
    # The retired stream's node can now be power-cycled with traffic up.
    killed_pid = await sup.kill9(retired_node)
    await asyncio.sleep(0.5)
    await sup.restart(retired_node)
    await sup.wait_workload(workload.duration + workload.drain_timeout)
    return {"chaos": {
        "fault": "rolling-replace", "retired_stream": old,
        "replacement_stream": new, "recycled_node": retired_node,
        "killed_pid": killed_pid,
        "restarted_pid": sup.workers[retired_node].pids[-1],
    }}


# -- registry ----------------------------------------------------------

@dataclass
class Scenario:
    """One named chaos drill: how to shape the spec, how to drive it."""

    name: str
    description: str
    drive: Callable[[DeploySupervisor], Awaitable[dict]]
    build: Callable[..., TopologySpec] = build_topology

    def build_spec(self, **kwargs: Any) -> TopologySpec:
        return self.build(**kwargs)


def _build_clock_skew_spec(**kwargs: Any) -> TopologySpec:
    nodes = kwargs.get("nodes", 3)
    offsets = kwargs.pop("clock_offsets", None) or {
        f"n{i + 1}": 0.25 * i for i in range(1, nodes)
    }
    return build_topology(clock_offsets=offsets, **kwargs)


def _build_rolling_replace_spec(**kwargs: Any) -> TopologySpec:
    kwargs.setdefault("streams", 2)
    if kwargs["streams"] < 2:
        kwargs["streams"] = 2
    return build_topology(dedicate_stream_nodes=True, **kwargs)


SCENARIOS: dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "baseline",
            "workload + runtime subscribe, no faults",
            _drive_baseline,
        ),
        Scenario(
            "kill9",
            "SIGKILL a replica-only worker mid-traffic, restart it, "
            "require full re-convergence",
            _drive_kill9,
        ),
        Scenario(
            "partition",
            "isolate a replica-only node at the socket level, heal, "
            "require gap repair to re-converge",
            _drive_partition,
        ),
        Scenario(
            "clock-skew",
            "per-node kernel clock offsets plus a mid-run skew step; "
            "trace merge must re-align the domains",
            _drive_clock_skew,
            build=_build_clock_skew_spec,
        ),
        Scenario(
            "rolling-replace",
            "move traffic to a new stream, retire the old one, "
            "power-cycle its node under live load",
            _drive_rolling_replace,
            build=_build_rolling_replace_spec,
        ),
    )
}


async def _run(config: DeployConfig) -> DeployReport:
    scenario = SCENARIOS[config.scenario]
    sup = DeploySupervisor(config)
    extra: dict = {}
    ok, detail = False, "scenario did not complete"
    try:
        await sup.start_workers()
        await sup.wire()
        if config.watch:
            # Every scenario runs under live certification: the online
            # auditor tails the traces while the chaos plays out.
            sup.start_watch()
        extra = await scenario.drive(sup)
        ok, detail = await sup.drain()
        violations = await sup.collect_violations()
        if violations:
            ok = False
            detail += (
                f"; invariant violations on {sorted(violations)}"
            )
        audit = await sup.stop_watch()
        if audit is not None and not audit["ok"]:
            ok = False
            detail += (
                f"; online audit proved {len(audit['violations'])} "
                f"safety violations (see alerts.jsonl)"
            )
        if not ok:
            # Only an actual failure warrants the causal ring dumps.
            await sup.dump_flights(f"{config.scenario}: {detail}")
        manifest_path = await sup.collect(ok, detail, extra)
    finally:
        await sup.stop_watch()
        await sup.stop_all()
    with open(manifest_path, "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    pids = {
        name: entry["pids"]
        for name, entry in manifest["nodes"].items()
    }
    sup.log(f"scenario {config.scenario}: "
            f"{'OK' if ok else 'FAILED'} -- {detail}")
    sup.log(f"worker pids: {pids}")
    sup.log(f"run directory: {config.run_dir}")
    return DeployReport(
        ok=ok,
        scenario=config.scenario,
        run_dir=config.run_dir,
        manifest_path=manifest_path,
        manifest=manifest,
        lines=sup.lines,
    )


def run_deploy(config: DeployConfig) -> DeployReport:
    """Run one deployment scenario end to end (blocking entry point)."""
    if config.scenario not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {config.scenario!r}; "
            f"pick from {sorted(SCENARIOS)}"
        )
    return asyncio.run(_run(config))
