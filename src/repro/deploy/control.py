"""Length-prefixed JSON control RPC between supervisor and workers.

Deliberately minimal: one ``[u32 length][JSON object]`` frame per
request and per response, handled sequentially per connection.  The
request carries ``{"op": ..., **params}``; the response is
``{"ok": true, **result}`` or ``{"ok": false, "error": ...}``.  The
*data* plane (protocol messages) never touches this channel -- it
rides the binary :class:`~repro.runtime.transport.TcpTransport`; the
control plane only coordinates lifecycle (hello / register / start /
workload / status / stop) and chaos injection, where a debuggable
text protocol beats a compact one.

Both ends are plain asyncio; the server runs inside the worker's event
loop next to the transport and telemetry listeners.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Awaitable, Callable, Optional

__all__ = ["ControlClient", "ControlError", "ControlServer"]

_LEN = struct.Struct("!I")

# A control frame is small (status dumps, address maps); a frame
# claiming to be bigger than this is a protocol error, not a payload.
_MAX_FRAME = 32 * 1024 * 1024

Handler = Callable[[dict], Awaitable[dict]]


class ControlError(RuntimeError):
    """The remote handler reported failure (``ok: false``)."""


def _pack(payload: dict) -> bytes:
    raw = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _LEN.pack(len(raw)) + raw


async def _read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    try:
        header = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _LEN.unpack(header)
    if length > _MAX_FRAME:
        raise ControlError(f"control frame of {length} bytes refused")
    try:
        raw = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    return json.loads(raw.decode("utf-8"))


class ControlServer:
    """The worker-side listener dispatching ops to an async handler.

    The handler receives the request dict and returns the result dict
    (``ok`` is added here); raising surfaces as ``ok: false`` with the
    exception text, keeping one bad op from killing the worker.
    """

    def __init__(
        self,
        handler: Handler,
        bind_host: str = "127.0.0.1",
        bind_port: int = 0,
    ):
        self._handler = handler
        self._bind_host = bind_host
        self._bind_port = bind_port
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[tuple[str, int]] = None
        self.requests_served = 0

    async def start(self) -> tuple[str, int]:
        if self._server is not None:
            raise RuntimeError("control server already started")
        self._server = await asyncio.start_server(
            self._serve, self._bind_host, self._bind_port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                request = await _read_frame(reader)
                if request is None:
                    return
                try:
                    result = await self._handler(request)
                    response = {"ok": True, **(result or {})}
                except Exception as exc:   # surface, don't kill the loop
                    response = {"ok": False, "error": f"{exc!r}"}
                writer.write(_pack(response))
                await writer.drain()
                self.requests_served += 1
        except (ConnectionError, ControlError):
            pass
        finally:
            try:
                writer.close()
            except RuntimeError:
                pass


class ControlClient:
    """The supervisor's end: one persistent connection per worker."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._lock = asyncio.Lock()

    @property
    def connected(self) -> bool:
        return self._writer is not None

    async def connect(self, timeout: float = 5.0) -> None:
        self._reader, self._writer = await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), timeout
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = None
            self._writer = None

    async def call(self, op: str, timeout: float = 10.0, **params: Any) -> dict:
        """One request/response round trip; raises :class:`ControlError`
        on an ``ok: false`` response or a dead connection."""
        if self._writer is None:
            raise ControlError(f"control client to {self.host}:{self.port} "
                               f"is not connected")
        async with self._lock:      # one in-flight request per connection
            self._writer.write(_pack({"op": op, **params}))
            try:
                await self._writer.drain()
                response = await asyncio.wait_for(
                    _read_frame(self._reader), timeout
                )
            except (ConnectionError, OSError) as exc:
                raise ControlError(f"{op}: connection lost ({exc!r})") from exc
        if response is None:
            raise ControlError(f"{op}: worker closed the control connection")
        if not response.get("ok"):
            raise ControlError(f"{op}: {response.get('error', 'failed')}")
        return response
