"""Deployment supervisor: real OS processes, one per node.

The supervisor is the only piece of the deployment plane that is *not*
inside a worker: it writes the :class:`~repro.deploy.topology
.TopologySpec` to the run directory, spawns one ``python -m repro
worker`` child per node (or, with ``--address-file``, connects to
externally started workers on other machines), and drives the whole
lifecycle over the control RPC:

1. wait for each worker's ready file and say ``hello``;
2. broadcast the address map (every transport host name -> the owning
   worker's listener) so peers can dial each other;
3. NTP-style clock sync: estimate every worker's kernel-clock offset
   against the reference worker over ``clock`` round trips and have
   each worker stamp a ``meta.clock`` event into its own trace -- the
   alignment input ``repro trace-merge`` already consumes;
4. ``start`` everywhere, run the workload, inject chaos
   (:mod:`repro.deploy.chaos`), drain, and check *replica agreement
   across processes* -- the live acceptance criterion.

Worker-side invariant suites watch each node continuously; the
supervisor adds the cross-process check (identical delivery sequences
on every surviving replica) and broadcasts a flight-recorder dump
request only when something actually disagrees.

Everything observable lands in one run directory: ``topology.json``,
per-incarnation traces, worker logs, ``metrics.json``, and a
``manifest.json`` recording per-node PIDs (distinct PIDs are the
"really multi-process" acceptance check), restarts, trace files and
the agreement verdict.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Optional

from ..runtime.telemetry import aggregate_dumps, estimate_offset
from .control import ControlClient, ControlError
from .topology import TopologySpec, load_address_file
from .worker import trace_node_name

__all__ = ["DeployConfig", "DeployReport", "DeploySupervisor", "WorkerHandle"]

MANIFEST_FORMAT = "repro-deploy-manifest/1"

_READY_POLL = 0.05
_DRAIN_POLL = 0.3


@dataclass
class DeployConfig:
    """Knobs of one deployment run."""

    spec: TopologySpec
    run_dir: str
    scenario: str = "baseline"
    address_file: Optional[str] = None   # remote workers instead of children
    clock_sync_samples: int = 5
    spawn_timeout: float = 20.0          # wall seconds to a worker's ready file
    verbose: bool = False
    watch: bool = True                   # live online certifier over the run
    watch_interval: float = 0.3          # certifier poll period (wall s)


@dataclass
class DeployReport:
    """What a deployment run produced (CLI + tests consume this)."""

    ok: bool
    scenario: str
    run_dir: str
    manifest_path: str
    manifest: dict
    lines: list[str] = field(default_factory=list)

    def summary(self) -> str:
        return "\n".join(self.lines)


class WorkerHandle:
    """One node's worker across its incarnations."""

    def __init__(self, name: str, remote: bool = False):
        self.name = name
        self.remote = remote
        self.proc: Optional[subprocess.Popen] = None
        self.control: Optional[ControlClient] = None
        self.info: dict = {}              # latest hello
        self.incarnation = 0
        self.restarts = 0
        self.pids: list[int] = []         # one per incarnation, in order
        self.trace_files: list[str] = []
        self.log_path: Optional[str] = None
        self.alive = False

    @property
    def hosts(self) -> list[str]:
        return list(self.info.get("hosts", ()))

    @property
    def transport_address(self) -> Optional[tuple[str, int]]:
        address = self.info.get("transport")
        return (address[0], int(address[1])) if address else None

    async def call(self, op: str, timeout: float = 10.0, **params: Any) -> dict:
        if self.control is None:
            raise ControlError(f"worker {self.name} has no control connection")
        return await self.control.call(op, timeout=timeout, **params)


class DeploySupervisor:
    """Spawns, wires, drives and reaps the worker fleet."""

    def __init__(self, config: DeployConfig):
        self.config = config
        self.spec = config.spec
        self.run_dir = config.run_dir
        os.makedirs(self.run_dir, exist_ok=True)
        self.spec_path = os.path.join(self.run_dir, "topology.json")
        self.workers: dict[str, WorkerHandle] = {}
        self.reference = self.spec.client_node()   # clock-sync anchor
        self.flight_dumps: list[str] = []
        self.lines: list[str] = []
        self.watch = None                    # TraceWatch when running
        self.audit_summary: Optional[dict] = None
        self._watch_task: Optional[asyncio.Task] = None

    def log(self, line: str) -> None:
        self.lines.append(line)
        if self.config.verbose:
            print(line, flush=True)

    # -- spawning -----------------------------------------------------

    def _child_env(self) -> dict:
        env = dict(os.environ)
        # Make the repro package importable in the child regardless of
        # how this process found it (PYTHONPATH=src, pip -e, cwd).
        package_root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)
        )))
        parts = [package_root]
        if env.get("PYTHONPATH"):
            parts.append(env["PYTHONPATH"])
        env["PYTHONPATH"] = os.pathsep.join(parts)
        return env

    async def _spawn(self, name: str, incarnation: int) -> WorkerHandle:
        handle = self.workers.setdefault(name, WorkerHandle(name))
        handle.incarnation = incarnation
        trace_node = trace_node_name(name, incarnation)
        ready_path = os.path.join(self.run_dir, f"{trace_node}.ready.json")
        if os.path.exists(ready_path):
            os.unlink(ready_path)
        handle.log_path = os.path.join(self.run_dir, f"{name}.log")
        log_handle = open(handle.log_path, "ab")
        try:
            handle.proc = subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "worker",
                    "--spec", self.spec_path,
                    "--node", name,
                    "--run-dir", self.run_dir,
                    "--ready-file", ready_path,
                    "--incarnation", str(incarnation),
                ],
                stdout=log_handle, stderr=subprocess.STDOUT,
                env=self._child_env(),
            )
        finally:
            log_handle.close()     # the child holds its own descriptor
        deadline = (
            asyncio.get_running_loop().time() + self.config.spawn_timeout
        )
        while not os.path.exists(ready_path):
            if handle.proc.poll() is not None:
                raise RuntimeError(
                    f"worker {name} exited with {handle.proc.returncode} "
                    f"before becoming ready (see {handle.log_path})"
                )
            if asyncio.get_running_loop().time() > deadline:
                handle.proc.kill()
                raise RuntimeError(
                    f"worker {name} did not become ready within "
                    f"{self.config.spawn_timeout}s (see {handle.log_path})"
                )
            await asyncio.sleep(_READY_POLL)
        with open(ready_path, "r", encoding="utf-8") as fh:
            ready = json.load(fh)
        handle.control = ControlClient(*ready["control"])
        await handle.control.connect()
        handle.info = await handle.call("hello")
        handle.pids.append(int(handle.info["pid"]))
        if handle.info.get("trace"):
            handle.trace_files.append(handle.info["trace"])
        handle.alive = True
        self.log(
            f"worker {name} up: pid {handle.info['pid']}, "
            f"incarnation {incarnation}"
        )
        return handle

    async def _connect_remote(
        self, name: str, address: tuple[str, int]
    ) -> WorkerHandle:
        handle = self.workers.setdefault(name, WorkerHandle(name, remote=True))
        handle.control = ControlClient(*address)
        await handle.control.connect()
        handle.info = await handle.call("hello")
        handle.pids.append(int(handle.info["pid"]))
        if handle.info.get("trace"):
            handle.trace_files.append(handle.info["trace"])
        handle.incarnation = int(handle.info.get("incarnation", 0))
        handle.alive = True
        self.log(f"worker {name} attached at {address[0]}:{address[1]}")
        return handle

    async def start_workers(self) -> None:
        """Write the spec and bring every worker up (spawn or attach)."""
        self.spec.save(self.spec_path)
        if self.config.address_file is not None:
            addresses = load_address_file(self.config.address_file)
            missing = {n.name for n in self.spec.nodes} - set(addresses)
            if missing:
                raise RuntimeError(
                    f"address file lacks workers for {sorted(missing)}"
                )
            for node in self.spec.nodes:
                await self._connect_remote(node.name, addresses[node.name])
        else:
            for node in self.spec.nodes:
                await self._spawn(node.name, incarnation=0)

    # -- wiring -------------------------------------------------------

    def _address_map(self) -> dict[str, list]:
        """Transport host name -> owning worker's listener address."""
        addresses: dict[str, list] = {}
        for handle in self.workers.values():
            if not handle.alive:
                continue
            address = handle.transport_address
            if address is None:
                continue
            for host in handle.hosts:
                addresses[host] = [address[0], address[1]]
        return addresses

    async def broadcast_addresses(self) -> None:
        addresses = self._address_map()
        for handle in self.workers.values():
            if handle.alive:
                await handle.call("register", addresses=addresses)

    async def sync_clocks(self) -> None:
        """Estimate every worker's kernel-clock offset against the
        reference worker and have each stamp ``meta.clock``."""
        reference = self.workers[self.reference]
        if not reference.alive:
            # Reference down mid-scenario: skip; restart path re-syncs.
            return
        ref_node = reference.info.get("trace_node", reference.name)
        await reference.call(
            "clock_mark", ref=ref_node, offset=0.0, rtt=0.0
        )
        for handle in self.workers.values():
            if handle is reference or not handle.alive:
                continue
            samples = []
            try:
                for _ in range(max(1, self.config.clock_sync_samples)):
                    t0 = (await reference.call("clock"))["now"]
                    remote = (await handle.call("clock"))["now"]
                    t3 = (await reference.call("clock"))["now"]
                    samples.append((float(t0), float(remote), float(t3)))
                offset, rtt = estimate_offset(samples)
            except (ControlError, ValueError):
                offset, rtt = 0.0, float("inf")
            await handle.call(
                "clock_mark", ref=ref_node, offset=offset, rtt=rtt
            )

    async def start_all(self) -> None:
        for handle in self.workers.values():
            if handle.alive:
                await handle.call("start")

    async def wire(self) -> None:
        """Addresses + clocks + start: the worker fleet becomes a cluster."""
        await self.broadcast_addresses()
        await self.sync_clocks()
        await self.start_all()
        self.log(f"cluster wired: {len(self.workers)} workers, "
                 f"reference clock {self.reference}")

    # -- workload orchestration ---------------------------------------

    @property
    def client_worker(self) -> WorkerHandle:
        return self.workers[self.spec.client_node()]

    async def start_workload(self, **overrides: Any) -> None:
        await self.client_worker.call("workload", **overrides)

    async def wait_workload(self, timeout: float) -> bool:
        deadline = asyncio.get_running_loop().time() + timeout
        while asyncio.get_running_loop().time() < deadline:
            status = await self.client_worker.call("status")
            if status.get("workload_done"):
                return True
            await asyncio.sleep(_DRAIN_POLL)
        return False

    async def subscribe(self, stream: str, via: str) -> int:
        response = await self.client_worker.call(
            "subscribe", stream=stream, via=via
        )
        return int(response["request_id"])

    async def unsubscribe(self, stream: str,
                          via: Optional[str] = None) -> int:
        response = await self.client_worker.call(
            "unsubscribe", stream=stream, via=via
        )
        return int(response["request_id"])

    async def activate(self, streams: list[str]) -> None:
        await self.client_worker.call("activate", streams=streams)

    async def wait_subscribed(self, stream: str, timeout: float,
                              subscribed: bool = True) -> bool:
        """Every live replica lists (or no longer lists) ``stream``."""
        deadline = asyncio.get_running_loop().time() + timeout
        while asyncio.get_running_loop().time() < deadline:
            settled = True
            for handle in self.workers.values():
                if not handle.alive:
                    continue
                status = await handle.call("status")
                for state in status.get("replicas", {}).values():
                    has = stream in state.get("subscriptions", ())
                    if has != subscribed or state.get("pending_subscription"):
                        settled = False
            if settled:
                return True
            await asyncio.sleep(_DRAIN_POLL)
        return False

    # -- chaos primitives ---------------------------------------------

    async def kill9(self, name: str) -> int:
        """SIGKILL the worker mid-flight; returns the dead PID."""
        handle = self.workers[name]
        if handle.remote or handle.proc is None:
            raise RuntimeError(
                f"cannot kill -9 remote worker {name}; run it locally"
            )
        pid = handle.proc.pid
        handle.proc.send_signal(signal.SIGKILL)
        handle.proc.wait()
        handle.alive = False
        if handle.control is not None:
            await handle.control.close()
            handle.control = None
        self.log(f"kill -9 worker {name} (pid {pid})")
        return pid

    async def restart(self, name: str) -> WorkerHandle:
        """Respawn a killed worker as a fresh incarnation and splice it
        back in: new addresses everywhere (reviving parked peer links),
        a clock mark for its new trace, then ``start`` (the replica
        re-bootstraps and replays deliveries from position 1)."""
        handle = self.workers[name]
        handle.restarts += 1
        await self._spawn(name, incarnation=handle.incarnation + 1)
        addresses = self._address_map()
        for peer in self.workers.values():
            if peer.alive:
                await peer.call("register", addresses=addresses)
        await self.sync_clocks()
        await handle.call("start")
        self.log(f"worker {name} restarted as incarnation "
                 f"{handle.incarnation} (pid {handle.pids[-1]})")
        return handle

    async def set_partition(self, victim: str, blocked: bool = True) -> None:
        """Symmetric socket-level cut between ``victim`` and the rest."""
        victim_hosts = list(self.spec.hosts_of(victim))
        other_hosts = [
            host
            for node in self.spec.nodes if node.name != victim
            for host in self.spec.hosts_of(node.name)
        ]
        for handle in self.workers.values():
            if not handle.alive:
                continue
            peers = other_hosts if handle.name == victim else victim_hosts
            await handle.call("partition", peers=peers, blocked=blocked)
        self.log(f"partition {'up' if blocked else 'healed'}: "
                 f"{victim} <-> rest")

    async def skew(self, name: str, delta: float) -> None:
        await self.workers[name].call("skew", delta=delta)
        self.log(f"clock of {name} skewed by {delta:+.3f}s")

    # -- online certification -----------------------------------------

    def start_watch(self) -> None:
        """Begin live certification: a :class:`repro.obs.watch
        .TraceWatch` tails the run directory's per-node traces while
        the scenario runs, proving the safety properties online and
        appending watchdog alerts to ``alerts.jsonl``."""
        from ..obs.watch import TraceWatch

        self.watch = TraceWatch(
            directory=self.run_dir,
            out=os.path.join(self.run_dir, "alerts.jsonl"),
        )
        self._watch_task = asyncio.create_task(self._watch_loop())
        self.log(f"online certifier watching {self.run_dir}")

    async def _watch_loop(self) -> None:
        while True:
            try:
                tick = self.watch.step()
            except Exception as exc:
                # The observer must never take down the run it observes.
                self.log(f"watch error (certifier stopped): {exc!r}")
                return
            for violation in tick["violations"]:
                self.log(f"AUDIT VIOLATION [{violation.property}] "
                         f"{violation.message}")
            for alert in tick["raised"]:
                self.log(f"alert [{alert.severity}] {alert.detector}"
                         f"{'/' + alert.key if alert.key else ''}: "
                         f"{alert.message}")
            for alert in tick["cleared"]:
                self.log(f"alert cleared {alert.detector}"
                         f"{'/' + alert.key if alert.key else ''}")
            await asyncio.sleep(self.config.watch_interval)

    async def flush_traces(self) -> None:
        """Ask every surviving worker to flush its buffered trace lines
        to disk, so the certifier's final drain sees the complete
        timeline (a tail-end ``meta.clock`` or deliver would otherwise
        sit in a stdio buffer until process exit)."""
        for handle in self.workers.values():
            if not handle.alive:
                continue
            try:
                await handle.call("flush")
            except ControlError:
                pass

    async def stop_watch(self) -> Optional[dict]:
        """Final drain + close of the live certifier; returns (and
        remembers, for the manifest) the audit summary.  Idempotent."""
        if self.watch is None:
            return None
        if self._watch_task is not None:
            self._watch_task.cancel()
            try:
                await self._watch_task
            except asyncio.CancelledError:
                pass
            self._watch_task = None
        if not self.watch.closed:
            await self.flush_traces()
            self.watch.drain()
            summary = self.watch.close()
            self.audit_summary = summary
            self.log(
                f"certifier: {summary['events']} events, "
                f"{len(summary['violations'])} safety violations, "
                f"{len(summary['alerts'])} alerts raised, "
                f"health {summary['health_score']}"
            )
        return self.audit_summary

    # -- agreement ----------------------------------------------------

    async def gather_sequences(self) -> dict[str, list[tuple]]:
        sequences: dict[str, list[tuple]] = {}
        for handle in self.workers.values():
            if not handle.alive:
                continue
            response = await handle.call("sequences")
            for replica, entries in response.get("sequences", {}).items():
                sequences[replica] = [tuple(entry) for entry in entries]
        return sequences

    def _agreement(self, sequences: dict[str, list[tuple]]) -> tuple[bool, str]:
        if not sequences:
            return False, "no replicas reported sequences"
        names = sorted(sequences)
        reference = sequences[names[0]]
        if not reference:
            return False, f"replica {names[0]} delivered nothing"
        for name in names[1:]:
            if sequences[name] != reference:
                common = min(len(sequences[name]), len(reference))
                diverge = next(
                    (i for i in range(common)
                     if sequences[name][i] != reference[i]),
                    common,
                )
                return False, (
                    f"{name} diverges from {names[0]} at index {diverge} "
                    f"({len(sequences[name])} vs {len(reference)} values)"
                )
        return True, (
            f"{len(names)} replicas agree on {len(reference)} deliveries"
        )

    async def drain(self, timeout: Optional[float] = None) -> tuple[bool, str]:
        """Poll until every surviving replica reports the identical
        non-empty delivery sequence (or the timeout lapses)."""
        timeout = (
            timeout if timeout is not None
            else self.spec.workload.drain_timeout
        )
        deadline = asyncio.get_running_loop().time() + timeout
        verdict, detail = False, "never polled"
        while asyncio.get_running_loop().time() < deadline:
            verdict, detail = self._agreement(await self.gather_sequences())
            if verdict:
                self.log(f"drained: {detail}")
                return verdict, detail
            await asyncio.sleep(_DRAIN_POLL)
        self.log(f"drain timed out after {timeout}s: {detail}")
        return verdict, detail

    async def collect_violations(self) -> dict[str, list[str]]:
        violations: dict[str, list[str]] = {}
        for handle in self.workers.values():
            if not handle.alive:
                continue
            status = await handle.call("status")
            if status.get("violations"):
                violations[handle.name] = list(status["violations"])
        return violations

    async def dump_flights(self, label: str) -> list[str]:
        """Ask every surviving worker for a flight-recorder dump --
        called only on an actual violation/disagreement."""
        paths = []
        for handle in self.workers.values():
            if not handle.alive:
                continue
            try:
                response = await handle.call("flight_dump", label=label)
                paths.append(response["path"])
            except ControlError:
                pass
        self.flight_dumps.extend(paths)
        return paths

    # -- collection / teardown ----------------------------------------

    async def collect(self, ok: bool, agreement_detail: str,
                      extra: Optional[dict] = None) -> str:
        """Metrics + manifest into the run directory; returns the
        manifest path."""
        statuses: dict[str, dict] = {}
        dumps: dict[str, dict] = {}
        for handle in self.workers.values():
            if not handle.alive:
                continue
            try:
                statuses[handle.name] = await handle.call("status")
                dumps[handle.name] = (
                    await handle.call("metrics")
                )["dump"]
            except ControlError:
                pass
        if dumps:
            with open(os.path.join(self.run_dir, "metrics.json"), "w",
                      encoding="utf-8") as fh:
                json.dump(aggregate_dumps(dumps), fh, indent=2,
                          sort_keys=True)
                fh.write("\n")
        client_status = statuses.get(self.spec.client_node(), {})
        manifest = {
            "format": MANIFEST_FORMAT,
            "scenario": self.config.scenario,
            "ok": ok,
            "spec": self.spec.to_json(),
            "nodes": {
                name: {
                    "pids": handle.pids,
                    "restarts": handle.restarts,
                    "remote": handle.remote,
                    "alive": handle.alive,
                    "trace_files": handle.trace_files,
                    "log": handle.log_path,
                }
                for name, handle in self.workers.items()
            },
            "workload": {
                "submitted": client_status.get("submitted"),
                "latency_p50_ms": client_status.get("latency_p50_ms"),
                "latency_p99_ms": client_status.get("latency_p99_ms"),
            },
            "agreement": {"ok": ok, "detail": agreement_detail},
            "violations": {
                name: status["violations"]
                for name, status in statuses.items()
                if status.get("violations")
            },
            "transport": {
                name: status.get("transport", {})
                for name, status in statuses.items()
            },
            "flight_dumps": self.flight_dumps,
        }
        if self.audit_summary is not None:
            manifest["audit"] = self.audit_summary
        if extra:
            manifest.update(extra)
        manifest_path = os.path.join(self.run_dir, "manifest.json")
        with open(manifest_path, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.write("\n")
        return manifest_path

    async def stop_all(self) -> None:
        for handle in self.workers.values():
            if handle.control is not None:
                try:
                    await handle.call("stop", timeout=5.0)
                except ControlError:
                    pass
                await handle.control.close()
                handle.control = None
        for handle in self.workers.values():
            if handle.proc is None or handle.proc.poll() is not None:
                handle.alive = False
                continue
            deadline = asyncio.get_running_loop().time() + 5.0
            while (handle.proc.poll() is None
                   and asyncio.get_running_loop().time() < deadline):
                await asyncio.sleep(0.05)
            if handle.proc.poll() is None:
                handle.proc.kill()
                handle.proc.wait()
            handle.alive = False
