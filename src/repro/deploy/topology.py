"""JSON topology spec: what runs where in a multi-process deployment.

A :class:`TopologySpec` is the single source of truth both sides of a
deployment hydrate from: the supervisor writes it to the run directory
and passes its path to every worker (``python -m repro worker --spec
...``); each worker reads it back, builds the *local* actors its
:class:`NodeSpec` places on it, and reconstructs an identical
:class:`~repro.paxos.config.StreamConfig` for every stream -- local or
remote -- so coordinator/acceptor host names agree across processes
without any runtime negotiation.

The spec is pure data (JSON round-trippable); addresses are *not* part
of it.  Listener ports are ephemeral and distributed at runtime over
the control RPC (``register``), which is also what lets a kill-9'd
worker restart on a fresh port.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Optional

from ..paxos.config import StreamConfig
from ..paxos.skip import DEFAULT_LAMBDA

__all__ = [
    "NodeSpec",
    "TopologySpec",
    "WorkloadSpec",
    "agent_host",
    "build_topology",
    "load_address_file",
]

SPEC_FORMAT = "repro-deploy-spec/1"


def agent_host(node: str) -> str:
    """The transport host name of ``node``'s deploy agent."""
    return f"{node}/agent"


@dataclass
class NodeSpec:
    """One worker process: which cluster pieces it hosts."""

    name: str
    streams: tuple[str, ...] = ()
    replicas: tuple[str, ...] = ()
    client: bool = False
    clock_offset: float = 0.0       # artificial skew of this node's clock (s)


@dataclass
class WorkloadSpec:
    """The Fig. 3-style client workload the deployment drives."""

    duration: float = 4.0           # wall seconds of submissions
    rate: float = 200.0             # multicasts per second
    burst: int = 1                  # submissions per pacing tick
    payload_size: int = 64          # modeled payload bytes per value
    subscribe_after: float = 0.3    # runtime subscribe at this fraction
    drain_timeout: float = 12.0     # wall seconds to reach agreement


@dataclass
class TopologySpec:
    """The whole deployment: nodes, streams, knobs, workload."""

    nodes: tuple[NodeSpec, ...]
    streams: tuple[str, ...]
    acceptors_per_stream: int = 3
    group: str = "g1"
    initial_streams: tuple[str, ...] = ("s1",)
    dissemination: str = "ring"
    adaptive_batching: bool = True
    lam: int = DEFAULT_LAMBDA
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    # Transport knob: consecutive failed connect attempts before a peer
    # link parks as unreachable (docs/RUNTIME.md).  Deployments keep
    # this low so a kill-9'd worker is surfaced quickly.
    unreachable_after: int = 6
    profile: bool = False
    profile_interval: float = 0.02

    def __post_init__(self):
        if not self.nodes:
            raise ValueError("topology needs at least one node")
        if not self.streams:
            raise ValueError("topology needs at least one stream")
        names = [node.name for node in self.nodes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names in {names}")
        placed_streams = [s for node in self.nodes for s in node.streams]
        if sorted(placed_streams) != sorted(self.streams):
            raise ValueError(
                f"streams {sorted(self.streams)} must be placed on exactly "
                f"one node each (placed: {sorted(placed_streams)})"
            )
        replicas = [r for node in self.nodes for r in node.replicas]
        if len(set(replicas)) != len(replicas):
            raise ValueError(f"replica placed twice: {sorted(replicas)}")
        if not replicas:
            raise ValueError("topology needs at least one replica")
        if sum(1 for node in self.nodes if node.client) != 1:
            raise ValueError("exactly one node must host the client")
        unknown = set(self.initial_streams) - set(self.streams)
        if unknown:
            raise ValueError(f"initial streams not in topology: {unknown}")

    # -- lookups ------------------------------------------------------

    def node(self, name: str) -> NodeSpec:
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(f"unknown node {name!r}")

    def owner_of(self, stream: str) -> str:
        for node in self.nodes:
            if stream in node.streams:
                return node.name
        raise KeyError(f"stream {stream!r} not placed on any node")

    def node_of_replica(self, replica: str) -> str:
        for node in self.nodes:
            if replica in node.replicas:
                return node.name
        raise KeyError(f"replica {replica!r} not placed on any node")

    def client_node(self) -> str:
        for node in self.nodes:
            if node.client:
                return node.name
        raise AssertionError("validated spec always has a client node")

    def all_replicas(self) -> tuple[str, ...]:
        return tuple(r for node in self.nodes for r in node.replicas)

    def hosts_of(self, node_name: str) -> tuple[str, ...]:
        """Every transport host name placed on ``node_name`` -- what a
        partition between two nodes has to block."""
        node = self.node(node_name)
        hosts = [agent_host(node.name)]
        for stream in node.streams:
            config = self.stream_config(stream)
            hosts.append(config.coordinator)
            hosts.extend(config.acceptors)
        hosts.extend(node.replicas)
        if node.client:
            hosts.append("client")
        return tuple(hosts)

    def stream_config(self, stream: str) -> StreamConfig:
        """The stream's config, identical on every worker by
        construction (host names are derived from the stream name)."""
        if stream not in self.streams:
            raise KeyError(f"unknown stream {stream!r}")
        return StreamConfig(
            name=stream,
            acceptors=tuple(
                f"{stream}/acceptor-{j + 1}"
                for j in range(self.acceptors_per_stream)
            ),
            ring_mode=(self.dissemination == "ring"),
            adaptive_batching=self.adaptive_batching,
            lam=self.lam,
        )

    # -- serialisation ------------------------------------------------

    def to_json(self) -> dict:
        payload = asdict(self)
        payload["format"] = SPEC_FORMAT
        return payload

    @classmethod
    def from_json(cls, data: dict) -> "TopologySpec":
        if data.get("format") not in (None, SPEC_FORMAT):
            raise ValueError(f"unknown spec format {data.get('format')!r}")
        return cls(
            nodes=tuple(
                NodeSpec(
                    name=n["name"],
                    streams=tuple(n.get("streams", ())),
                    replicas=tuple(n.get("replicas", ())),
                    client=bool(n.get("client", False)),
                    clock_offset=float(n.get("clock_offset", 0.0)),
                )
                for n in data["nodes"]
            ),
            streams=tuple(data["streams"]),
            acceptors_per_stream=int(data.get("acceptors_per_stream", 3)),
            group=data.get("group", "g1"),
            initial_streams=tuple(data.get("initial_streams", ("s1",))),
            dissemination=data.get("dissemination", "ring"),
            adaptive_batching=bool(data.get("adaptive_batching", True)),
            lam=int(data.get("lam", DEFAULT_LAMBDA)),
            workload=WorkloadSpec(**data.get("workload", {})),
            unreachable_after=int(data.get("unreachable_after", 6)),
            profile=bool(data.get("profile", False)),
            profile_interval=float(data.get("profile_interval", 0.02)),
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "TopologySpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(json.load(handle))


def build_topology(
    nodes: int = 3,
    streams: int = 2,
    replicas: int = 3,
    duration: float = 4.0,
    rate: float = 200.0,
    burst: int = 1,
    clock_offsets: Optional[dict[str, float]] = None,
    dedicate_stream_nodes: bool = False,
    **overrides,
) -> TopologySpec:
    """The default deployment layout.

    Streams, replicas and the client are placed round-robin across the
    nodes, mirroring :class:`repro.runtime.supervisor.LiveCluster`:
    with the 3-node default, n1 hosts s1 + r1 + the client, n2 hosts
    s2 + r2, and n3 hosts only r3 (the canonical kill-9 victim -- no
    acceptor state dies with it).

    With ``dedicate_stream_nodes`` the streams get nodes of their own
    *after* the replica/client nodes -- the rolling-replace drill's
    shape, where the retired stream's node can be power-cycled without
    touching any replica.
    """
    if nodes < 1:
        raise ValueError("need at least one node")
    stream_names = tuple(f"s{i + 1}" for i in range(streams))
    replica_names = tuple(f"r{i + 1}" for i in range(replicas))
    offsets = clock_offsets or {}
    if dedicate_stream_nodes:
        plain = nodes
        names = [f"n{i + 1}" for i in range(plain + streams)]
        placement_streams: dict[str, list[str]] = {name: [] for name in names}
        for index, stream in enumerate(stream_names):
            placement_streams[names[plain + index]].append(stream)
    else:
        names = [f"n{i + 1}" for i in range(nodes)]
        placement_streams = {name: [] for name in names}
        for index, stream in enumerate(stream_names):
            placement_streams[names[index % len(names)]].append(stream)
    placement_replicas: dict[str, list[str]] = {name: [] for name in names}
    for index, replica in enumerate(replica_names):
        base = names[:nodes] if dedicate_stream_nodes else names
        placement_replicas[base[index % len(base)]].append(replica)
    lam = overrides.pop("lam", max(DEFAULT_LAMBDA, int(2 * rate)))
    workload = WorkloadSpec(
        duration=duration, rate=rate, burst=burst,
        **overrides.pop("workload", {}),
    )
    return TopologySpec(
        nodes=tuple(
            NodeSpec(
                name=name,
                streams=tuple(placement_streams[name]),
                replicas=tuple(placement_replicas[name]),
                client=(name == names[0]),
                clock_offset=offsets.get(name, 0.0),
            )
            for name in names
        ),
        streams=stream_names,
        lam=lam,
        workload=workload,
        **overrides,
    )


def load_address_file(path: str) -> dict[str, tuple[str, int]]:
    """Pre-declared worker control addresses for ``--address-file``.

    Format: ``{"nodes": {"n1": {"control": ["10.0.0.5", 7801]}, ...}}``
    (a bare ``{"n1": [host, port]}`` map is accepted too).  The
    supervisor connects to these externally started workers instead of
    spawning children.
    """
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    entries = data.get("nodes", data)
    addresses: dict[str, tuple[str, int]] = {}
    for node, entry in entries.items():
        if isinstance(entry, dict):
            host, port = entry["control"]
        else:
            host, port = entry
        addresses[node] = (str(host), int(port))
    if not addresses:
        raise ValueError(f"address file {path}: no worker addresses")
    return addresses
