"""Deployment-plane wire messages.

A multi-process deployment splits the stream directory across workers:
the worker that *hosts* a stream owns its :class:`StreamDeployment`;
every other worker holds a :class:`~repro.deploy.agent.RemoteStreamDeployment`
stub.  When a replica on one worker attaches a learner to a stream
hosted elsewhere, the stub sends :class:`JoinLearner` over the data
transport to the owning worker's deploy agent, which applies
``add_learner`` / ``remove_learner`` to the real deployment and
answers with :class:`JoinAck`.  The transport is fire-and-forget, so
the requesting agent retries unacknowledged joins (the registration is
idempotent on the receiving side).

This module must stay leaf-light: :func:`repro.runtime.codec._register_all`
imports it at codec-import time to assign the stable wire ids (60-69
block), so it may only depend on :mod:`repro.net.messages`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.messages import Message

__all__ = ["JoinAck", "JoinLearner"]


@dataclass(frozen=True, slots=True)
class JoinLearner(Message):
    """Register (``add=True``) or drop a learner on a remote stream."""

    stream: str
    learner: str
    add: bool
    join_id: int


@dataclass(frozen=True, slots=True)
class JoinAck(Message):
    """Acknowledges one :class:`JoinLearner` by its ``join_id``."""

    join_id: int
