"""One deployment node as a real OS process: ``python -m repro worker``.

A worker hydrates *its* slice of the cluster from the JSON topology
spec (``--spec`` + ``--node``): the stream deployments it owns, its
replicas, the client when placed here, and one
:class:`~repro.deploy.agent.DeployAgent` -- all on a private
:class:`~repro.runtime.asyncio_kernel.AsyncioKernel` (its own clock
domain, optionally skewed per the spec) and
:class:`~repro.runtime.transport.TcpTransport` listener.  Remote peers
are joined through the transport's existing ``register_address`` hook;
the supervisor distributes the address map over the control RPC, which
is also how a restarted worker's fresh port propagates.

Per-node telemetry is the same plane ``repro live`` serves: a
node-stamped JSONL trace in the run directory, a metrics registry, and
the HTTP ``/metrics`` / ``/health`` / ``/clock`` / ``/profile``
endpoints.  The worker attaches an :class:`InvariantSuite` over its
local replicas and checks it continuously; a violation dumps the
flight-recorder ring next to the traces (and only then -- a clean
kill-9 drill produces no dump).

Restart semantics: a respawned worker is a *new incarnation* -- fresh
kernel clock, fresh trace file (``<node>-r<k>.trace.jsonl``) and a
fresh tracer node id, so ``repro trace-merge`` aligns each
incarnation's clock domain independently instead of smearing one
offset across both lifetimes.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
from typing import Any, Optional

from ..faults.invariants import InvariantSuite, InvariantViolation
from ..multicast.api import MulticastClient
from ..multicast.replica import MulticastReplica
from ..multicast.stream import StreamDeployment
from ..runtime.asyncio_kernel import AsyncioKernel
from ..runtime.telemetry import NodeTelemetry
from ..runtime.transport import TcpTransport
from .agent import DeployAgent, RemoteStreamDeployment
from .control import ControlServer
from .topology import NodeSpec, TopologySpec

__all__ = ["DeployWorker", "worker_main"]

_INVARIANT_INTERVAL = 0.25


def trace_node_name(node: str, incarnation: int) -> str:
    """Tracer node id of one worker lifetime (see module docstring)."""
    return node if incarnation == 0 else f"{node}-r{incarnation}"


class DeployWorker:
    """Everything one worker process runs; driven over the control RPC."""

    def __init__(
        self,
        spec: TopologySpec,
        node: str,
        run_dir: str,
        incarnation: int = 0,
        control_host: str = "127.0.0.1",
        control_port: int = 0,
        transport_host: str = "127.0.0.1",
    ):
        self.spec = spec
        self.node: NodeSpec = spec.node(node)
        self.run_dir = run_dir
        self.incarnation = incarnation
        self.trace_node = trace_node_name(node, incarnation)
        os.makedirs(run_dir, exist_ok=True)
        self.telemetry = NodeTelemetry(
            self.trace_node,
            trace_path=os.path.join(run_dir, f"{self.trace_node}.trace.jsonl"),
            profile_interval=spec.profile_interval,
        )
        if spec.profile:
            self.telemetry.profile_path = os.path.join(
                run_dir, f"{self.trace_node}.stacks.txt"
            )
        self.kernel = AsyncioKernel(
            tracer=self.telemetry.tracer,
            metrics=self.telemetry.registry,
            clock_offset=self.node.clock_offset,
        )
        self.transport = TcpTransport(
            self.kernel,
            bind_host=transport_host,
            node=self.trace_node,
            unreachable_after=spec.unreachable_after,
        )
        self.agent = DeployAgent(self.kernel, self.transport, self.node.name)
        # The full stream directory: real deployments for streams this
        # node hosts, remote stubs for everything else.  Every worker
        # sees every stream, so a replica can attach any of them.
        self.directory: dict[str, Any] = {}
        for stream in spec.streams:
            owner = spec.owner_of(stream)
            config = spec.stream_config(stream)
            if owner == self.node.name:
                deployment = StreamDeployment(
                    self.kernel, self.transport, config
                )
                self.directory[stream] = deployment
                self.agent.register_local(stream, deployment)
            else:
                self.directory[stream] = RemoteStreamDeployment(
                    config, self.agent, owner
                )
        self.replicas: dict[str, MulticastReplica] = {}
        for name in self.node.replicas:
            replica = MulticastReplica(
                self.kernel, self.transport, name, group=spec.group,
                directory=self.directory,
            )
            replica.add_delivery_observer(self._latency_tap)
            self.replicas[name] = replica
        self.invariants = InvariantSuite(self.replicas) if self.replicas else None
        self.client: Optional[MulticastClient] = None
        if self.node.client:
            self.client = MulticastClient(
                self.kernel, self.transport, "client", self.directory
            )
        self.control = ControlServer(self._handle, bind_host=control_host,
                                     bind_port=control_port)
        self._started = False
        self._stop = asyncio.Event()
        self._workload_task: Optional[asyncio.Task] = None
        self._invariant_task: Optional[asyncio.Task] = None
        self._active_streams: list[str] = list(spec.initial_streams)
        self._submit_at: dict[int, float] = {}
        self.latencies_ms: list[float] = []
        self.submitted = 0
        self.workload_done = False
        self.violations: list[str] = []
        self.flight_dumps: list[str] = []

    # -- taps ---------------------------------------------------------

    def _latency_tap(self, value: Any, stream: str, position: int) -> None:
        sent = self._submit_at.get(value.msg_id)
        if sent is not None:
            self.latencies_ms.append(
                1000.0 * (self.kernel._loop.time() - sent)
            )

    def _health(self) -> dict:
        health: dict = {
            "node": self.node.name,
            "trace_node": self.trace_node,
            "pid": os.getpid(),
            "now": self.kernel._now,
            "streams": {},
            "replicas": {},
            "transport": {
                "queue_depths": self.transport.queue_depths(),
                "counters": self.transport.counters(),
            },
        }
        for stream, deployment in self.directory.items():
            if isinstance(deployment, StreamDeployment):
                coordinator = deployment.coordinator
                health["streams"][stream] = {
                    "next_instance": coordinator.next_instance,
                    "positions_decided": coordinator.positions_decided,
                    "leading": coordinator.leading,
                }
        for name, replica in self.replicas.items():
            log = (
                self.invariants.logs.get(name)
                if self.invariants is not None else None
            )
            health["replicas"][name] = {
                "subscriptions": list(replica.subscriptions),
                "positions": dict(replica.merger.positions()),
                "delivered": len(log.records) if log is not None else 0,
                "pending_subscription": (
                    replica.merger.pending_subscription is not None
                ),
            }
        if self.client is not None:
            health["client"] = {"submitted": self.submitted}
        return health

    # -- control ops --------------------------------------------------

    async def _handle(self, request: dict) -> dict:
        op = request.get("op")
        handler = getattr(self, f"_op_{str(op).replace('-', '_')}", None)
        if handler is None:
            raise ValueError(f"unknown control op {op!r}")
        return await handler(request)

    async def _op_ping(self, request: dict) -> dict:
        return {"node": self.node.name, "now": self.kernel._now}

    async def _op_clock(self, request: dict) -> dict:
        return {"node": self.node.name, "now": self.kernel._now}

    async def _op_hello(self, request: dict) -> dict:
        return {
            "node": self.node.name,
            "trace_node": self.trace_node,
            "incarnation": self.incarnation,
            "pid": os.getpid(),
            "transport": list(self.transport.address or ()),
            "control": list(self.control.address or ()),
            "telemetry": list(self.telemetry.server.address or ())
            if self.telemetry.server is not None else None,
            "hosts": self.transport.hosts(),
            "trace": self.telemetry.trace_path,
            "started": self._started,
        }

    async def _op_register(self, request: dict) -> dict:
        for name, address in request.get("addresses", {}).items():
            self.transport.register_address(name, (address[0], int(address[1])))
        return {"registered": len(request.get("addresses", {}))}

    async def _op_start(self, request: dict) -> dict:
        if self._started:
            return {"already": True}
        self._started = True
        for deployment in self.directory.values():
            if isinstance(deployment, StreamDeployment):
                deployment.start()
        self.agent.start()
        for replica in self.replicas.values():
            replica.bootstrap(list(self.spec.initial_streams))
        if self.client is not None:
            self.client.start()
        if self.invariants is not None:
            self._invariant_task = asyncio.ensure_future(
                self._invariant_loop()
            )
        return {"already": False}

    async def _op_workload(self, request: dict) -> dict:
        if self.client is None:
            raise ValueError(f"node {self.node.name} hosts no client")
        if self._workload_task is not None and not self._workload_task.done():
            raise ValueError("workload already running")
        workload = self.spec.workload
        duration = float(request.get("duration", workload.duration))
        rate = float(request.get("rate", workload.rate))
        burst = int(request.get("burst", workload.burst))
        payload_size = int(
            request.get("payload_size", workload.payload_size)
        )
        streams = request.get("streams")
        if streams:
            self._active_streams = list(streams)
        self.workload_done = False
        self._workload_task = asyncio.ensure_future(
            self._workload(duration, rate, burst, payload_size)
        )
        return {"duration": duration, "rate": rate}

    async def _op_activate(self, request: dict) -> dict:
        streams = list(request.get("streams", ()))
        if not streams:
            raise ValueError("activate needs a non-empty stream list")
        self._active_streams[:] = streams
        return {"active": streams}

    async def _op_subscribe(self, request: dict) -> dict:
        if self.client is None:
            raise ValueError(f"node {self.node.name} hosts no client")
        request_id = self.client.subscribe_msg(
            self.spec.group, request["stream"], via_stream=request["via"]
        )
        return {"request_id": request_id}

    async def _op_unsubscribe(self, request: dict) -> dict:
        if self.client is None:
            raise ValueError(f"node {self.node.name} hosts no client")
        request_id = self.client.unsubscribe_msg(
            self.spec.group, request["stream"],
            via_stream=request.get("via"),
        )
        return {"request_id": request_id}

    async def _op_status(self, request: dict) -> dict:
        latencies = sorted(self.latencies_ms)

        def pct(p: float) -> Optional[float]:
            if not latencies:
                return None
            rank = max(0, min(len(latencies) - 1,
                              round(p / 100 * len(latencies)) - 1))
            return latencies[rank]

        return {
            "node": self.node.name,
            "trace_node": self.trace_node,
            "incarnation": self.incarnation,
            "pid": os.getpid(),
            "started": self._started,
            "submitted": self.submitted,
            "workload_done": self.workload_done,
            "active_streams": list(self._active_streams),
            "latency_p50_ms": pct(50),
            "latency_p99_ms": pct(99),
            "replicas": {
                name: {
                    "delivered": len(log.records),
                    "subscriptions": list(
                        self.replicas[name].subscriptions
                    ),
                    "pending_subscription": (
                        self.replicas[name].merger.pending_subscription
                        is not None
                    ),
                    "merge_points": {
                        str(request_id): list(point)
                        for request_id, point in
                        self.replicas[name].merger.stats.merge_points.items()
                    },
                }
                for name, log in (
                    self.invariants.logs if self.invariants else {}
                ).items()
            },
            "invariant_checks": (
                self.invariants.checks_run if self.invariants else 0
            ),
            "violations": list(self.violations),
            "kernel_failures": [
                repr(failure) for failure in self.kernel.failures
            ],
            "transport": self.transport.counters(),
            "unreachable_peers": self.transport.unreachable_peers(),
            "agent": {
                "pending_joins": self.agent.pending_joins,
                "joins_failed": self.agent.joins_failed,
            },
        }

    async def _op_sequences(self, request: dict) -> dict:
        return {
            "sequences": {
                name: [list(entry) for entry in log.sequence()]
                for name, log in (
                    self.invariants.logs if self.invariants else {}
                ).items()
            }
        }

    async def _op_partition(self, request: dict) -> dict:
        peers = list(request.get("peers", ()))
        blocked = bool(request.get("blocked", True))
        self.transport.set_partition(peers, blocked=blocked)
        return {"partitioned": self.transport.partitioned_peers()}

    async def _op_skew(self, request: dict) -> dict:
        # Shift this kernel's clock forward by delta seconds, the live
        # analogue of the PR 1 clock-skew fault (AsyncioKernel derives
        # `now` from `_t0`, so one adjustment skews everything).
        delta = float(request["delta"])
        self.kernel._t0 -= delta
        return {"now": self.kernel._now}

    async def _op_clock_mark(self, request: dict) -> dict:
        self.telemetry.tracer.emit(
            "meta.clock", self.kernel._now, cat="meta",
            ref=request["ref"], offset=float(request["offset"]),
            rtt=float(request.get("rtt", 0.0)),
        )
        return {}

    async def _op_flight_dump(self, request: dict) -> dict:
        path = os.path.join(
            self.run_dir, f"{self.trace_node}.flight.jsonl"
        )
        events = self.telemetry.dump_flight(path, header={
            "message": request.get("label", "requested by supervisor"),
            "ts": self.kernel._now,
        })
        if path not in self.flight_dumps:
            self.flight_dumps.append(path)
        return {"path": path, "events": events}

    async def _op_metrics(self, request: dict) -> dict:
        return {"dump": self.telemetry.registry.dump()}

    async def _op_flush(self, request: dict) -> dict:
        # The online certifier tails this worker's trace while it runs;
        # flushing on request lets the supervisor certify the complete
        # timeline *before* tearing the process down.
        self.telemetry.flush_trace()
        return {"written": (
            self.telemetry._jsonl.written
            if self.telemetry._jsonl is not None else 0
        )}

    async def _op_stop(self, request: dict) -> dict:
        self._stop.set()
        return {}

    # -- background loops ---------------------------------------------

    async def _workload(self, duration: float, rate: float, burst: int,
                        payload_size: int) -> None:
        assert self.client is not None
        loop = self.kernel._loop
        interval = burst / rate if rate > 0 else duration
        end = loop.time() + duration
        sequence = 0
        try:
            while loop.time() < end:
                for _ in range(burst):
                    stream = self._active_streams[
                        sequence % len(self._active_streams)
                    ]
                    value = self.client.multicast(
                        stream, payload=f"m{sequence}", size=payload_size
                    )
                    self._submit_at[value.msg_id] = loop.time()
                    self.submitted += 1
                    sequence += 1
                await asyncio.sleep(interval)
        except asyncio.CancelledError:
            pass
        finally:
            self.workload_done = True

    async def _invariant_loop(self) -> None:
        assert self.invariants is not None
        try:
            while True:
                await asyncio.sleep(_INVARIANT_INTERVAL)
                try:
                    self.invariants.check()
                except InvariantViolation as violation:
                    self.violations.append(str(violation))
                    path = os.path.join(
                        self.run_dir, f"{self.trace_node}.flight.jsonl"
                    )
                    self.telemetry.dump_flight(path, header={
                        "message": str(violation),
                        "ts": self.kernel._now,
                    })
                    self.flight_dumps.append(path)
                    return      # first violation is terminal; keep the dump
        except asyncio.CancelledError:
            pass

    # -- lifecycle ----------------------------------------------------

    async def run(self, ready_file: Optional[str] = None) -> None:
        await self.transport.start()
        self.telemetry.bind(self.kernel, self._health)
        await self.telemetry.start_server()
        await self.control.start()
        if ready_file is not None:
            self._write_ready(ready_file)
        try:
            await self._stop.wait()
        finally:
            await self._teardown()

    def _write_ready(self, path: str) -> None:
        payload = {
            "node": self.node.name,
            "trace_node": self.trace_node,
            "incarnation": self.incarnation,
            "pid": os.getpid(),
            "control": list(self.control.address or ()),
            "transport": list(self.transport.address or ()),
            "telemetry": list(self.telemetry.server.address or ())
            if self.telemetry.server is not None else None,
        }
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")
        os.replace(tmp, path)     # atomic: the supervisor polls for it

    async def _teardown(self) -> None:
        for task in (self._workload_task, self._invariant_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        if self.client is not None and self.client.running:
            self.client.stop()
        for replica in self.replicas.values():
            for core in list(replica.learners.values()):
                core.stop()
            if replica.running:
                replica.stop()
        for deployment in self.directory.values():
            if isinstance(deployment, StreamDeployment):
                deployment.stop()
        if self.agent.running or self.agent._retry_task is not None:
            self.agent.stop()
        await asyncio.sleep(0)          # let interrupted tasks unwind
        await self.transport.stop()
        await self.control.stop()
        await self.telemetry.stop()     # flushes the trace + profile


async def _amain(args: argparse.Namespace) -> int:
    spec = TopologySpec.load(args.spec)
    worker = DeployWorker(
        spec,
        node=args.node,
        run_dir=args.run_dir,
        incarnation=args.incarnation,
        control_host=args.control_host,
        control_port=args.control_port,
        transport_host=args.transport_host,
    )
    # A polite SIGTERM (supervisor stop path, CI teardown) drains like
    # a control-plane stop; SIGKILL is, by design, un-catchable chaos.
    loop = asyncio.get_running_loop()
    try:
        loop.add_signal_handler(signal.SIGTERM, worker._stop.set)
    except (NotImplementedError, RuntimeError):
        pass
    await worker.run(ready_file=args.ready_file)
    return 0


def worker_main(args: argparse.Namespace) -> int:
    """``python -m repro worker`` entry point."""
    return asyncio.run(_amain(args))
