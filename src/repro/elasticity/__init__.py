"""Closed-loop elasticity: observe the telemetry plane, decide against
declarative policies, and autonomously issue the paper's
reconfigurations (subscribe a new stream, split a hot shard's key
range, replace a slow acceptor ring).

The loop is ``signals -> policy -> controller -> actions``:

* :mod:`~repro.elasticity.signals` samples the telemetry plane into
  immutable snapshots (sim: the metrics registry; live: the per-node
  HTTP endpoints);
* :mod:`~repro.elasticity.policy` evaluates declarative rules with
  hysteresis, cooldowns and a dry-run mode;
* :mod:`~repro.elasticity.controller` runs the tick loop and traces
  every decision as ``elastic.*`` events;
* :mod:`~repro.elasticity.actions` executes reconfigurations through
  the existing coordination layer;
* :mod:`~repro.elasticity.router` moves traffic only after the target
  subscription commits;
* :mod:`~repro.elasticity.scenarios` is the acceptance harness:
  deterministic closed-loop scenarios with the full invariant suite
  attached (``repro elasticity --scenario ramp``).

See docs/ELASTICITY.md for the operator-facing guide.
"""

from .actions import ReplaceStream, SimExecutor, SplitShard, SubscribeStream
from .controller import ElasticityController
from .policy import (
    BackpressureHighWater,
    DecideRateCeiling,
    DecisionRecord,
    LatencySlo,
    PolicyEngine,
    Proposal,
    SlowStreamSlo,
    StreamSkew,
    default_rules,
)
from .router import StreamRouter
from .scenarios import (
    SCENARIOS,
    ElasticityResult,
    ElasticityRunner,
    ElasticityScenario,
    get_scenario,
    run_scenario,
)
from .signals import HttpSignalSource, SignalSnapshot, SimSignalSource

__all__ = [
    "SCENARIOS",
    "BackpressureHighWater",
    "DecideRateCeiling",
    "DecisionRecord",
    "ElasticityController",
    "ElasticityResult",
    "ElasticityRunner",
    "ElasticityScenario",
    "HttpSignalSource",
    "LatencySlo",
    "PolicyEngine",
    "Proposal",
    "ReplaceStream",
    "SignalSnapshot",
    "SimExecutor",
    "SimSignalSource",
    "SlowStreamSlo",
    "SplitShard",
    "StreamSkew",
    "SubscribeStream",
    "default_rules",
    "get_scenario",
    "run_scenario",
]
