"""Reconfiguration actions and the executor that issues them.

The three actions are the paper's three elasticity use cases:

* :class:`SubscribeStream` -- grow capacity: provision a stream and
  ``subscribe_msg`` the group to it (§IV-B, Figure 3).
* :class:`SplitShard` -- spread a hot key range: provision a stream,
  subscribe, and route half of the hot shard's keyspace there
  (Figure 4's re-partitioning, driven autonomously).
* :class:`ReplaceStream` -- retire a slow acceptor ring: provision a
  fresh stream, subscribe, drain traffic over, then ``unsubscribe_msg``
  the old one (Figure 5's reconfiguration pattern).

:class:`SimExecutor` applies them to a
:class:`repro.harness.cluster.MulticastCluster` through the existing
coordination layer -- provisioning via the stream directory, the
subscription protocol via :class:`repro.multicast.api.MulticastClient`,
traffic movement via the :class:`~repro.elasticity.router.StreamRouter`.
Everything is deterministic: stream names are the lowest unused index,
and retirement happens a fixed drain delay after the replacement
commits.
"""

from __future__ import annotations

from dataclasses import dataclass

from .router import StreamRouter
from .signals import SignalSnapshot

__all__ = [
    "ReplaceStream",
    "SimExecutor",
    "SplitShard",
    "SubscribeStream",
]


@dataclass(frozen=True)
class SubscribeStream:
    """Subscribe the group to ``stream`` (provisioning it if needed)."""

    stream: str          # the new stream
    via: str             # carrier: a stream the group subscribes to
    kind: str = "subscribe"


@dataclass(frozen=True)
class SplitShard:
    """Move half of ``shard``'s key range onto (new) ``stream``."""

    shard: int
    stream: str
    via: str
    kind: str = "split"


@dataclass(frozen=True)
class ReplaceStream:
    """Replace ``old``'s acceptor ring with fresh ``stream``."""

    old: str
    stream: str
    via: str
    kind: str = "replace"


class SimExecutor:
    """Issues actions against a simulated cluster.

    ``execute`` returns the control-plane ``request_id`` of the
    subscription it issued, the same id the ``control.subscribe`` and
    ``merge.subscribe.commit`` trace events carry -- the causal link
    the trace tests follow from decision to reconfiguration.
    """

    def __init__(
        self,
        cluster,
        group: str,
        router: StreamRouter,
        stream_prefix: str = "S",
        retire_delay: float = 0.75,
        replicas_per_group: int = 0,
    ):
        self.cluster = cluster
        self.group = group
        self.router = router
        self.stream_prefix = stream_prefix
        self.retire_delay = retire_delay
        self.log: list[tuple[float, object, int]] = []
        self.retired: list[str] = []
        self._retirements: list[dict] = []

    def next_stream_name(self) -> str:
        index = 1
        while f"{self.stream_prefix}{index}" in self.cluster.directory:
            index += 1
        return f"{self.stream_prefix}{index}"

    def execute(self, action) -> int:
        if action.stream not in self.cluster.directory:
            self.cluster.add_stream(action.stream)
        client = self.cluster.client
        request_id = client.subscribe_msg(self.group, action.stream, action.via)
        if isinstance(action, SubscribeStream):
            self.router.spread(action.stream)
        elif isinstance(action, SplitShard):
            self.router.split(action.shard, action.stream)
        elif isinstance(action, ReplaceStream):
            self.router.move_all(action.old, action.stream)
            self._retirements.append(
                {"old": action.old, "new": action.stream}
            )
        else:
            raise TypeError(f"unknown action {action!r}")
        self.log.append((self.cluster.env.now, action, request_id))
        return request_id

    def poll(self, snapshot: SignalSnapshot) -> None:
        """Advance in-flight retirements (called every controller tick).

        A replacement's old ring is unsubscribed only once (a) the new
        stream's subscription committed everywhere, (b) traffic stopped
        routing to the old stream, and (c) a drain delay elapsed so
        in-flight messages ordered in the old stream are delivered."""
        for retirement in list(self._retirements):
            if retirement["new"] not in snapshot.streams:
                continue
            if self.router.routes_to(retirement["old"]):
                continue
            if "ready_at" not in retirement:
                retirement["ready_at"] = snapshot.at + self.retire_delay
                continue
            if snapshot.at < retirement["ready_at"]:
                continue
            self.cluster.client.unsubscribe_msg(
                self.group, retirement["old"]
            )
            self.retired.append(retirement["old"])
            self._retirements.remove(retirement)
