"""The closed-loop elasticity controller.

Each control tick: sample the signal plane, activate any routing
intents whose target subscription committed, advance in-flight
retirements, run the policy engine, and execute whatever it released
-- tracing every step as ``elastic.*`` events so the decision's causal
chain (``elastic.decision`` -> ``control.subscribe`` ->
``merge.subscribe.commit``) is reconstructable from the trace alone.

The controller is backend-agnostic: on the simulator it runs as an
``env.process`` generator (deterministic -- the acceptance criterion
"same seed, same decision timeline" holds because every input is
virtual-time driven); live it runs as the supervisor's asyncio task
polling the HTTP telemetry endpoints.
"""

from __future__ import annotations

from typing import Optional

from .actions import ReplaceStream, SplitShard, SubscribeStream
from .policy import PolicyEngine, Proposal
from .signals import SignalSnapshot

__all__ = ["ElasticityController"]


class ElasticityController:
    """Sample -> decide -> act, on a fixed polling interval."""

    def __init__(
        self,
        source,
        engine: PolicyEngine,
        executor,
        env=None,
        interval: float = 0.25,
        name: str = "autoscaler",
        router=None,
        tracer=None,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.source = source
        self.engine = engine
        self.executor = executor
        self.env = env
        self.interval = interval
        self.name = name
        self.router = router
        self._tracer = tracer if tracer is not None else (
            env.tracer if env is not None else None
        )
        self.executed: list[tuple[float, object, int]] = []
        self.last_snapshot: Optional[SignalSnapshot] = None

    # -- one control tick ---------------------------------------------

    def tick(self, snapshot: Optional[SignalSnapshot] = None) -> list:
        """Run one control iteration; returns the actions executed."""
        if snapshot is None:
            snapshot = self.source.sample()
        self.last_snapshot = snapshot
        if self.router is not None:
            self.router.activate(snapshot.streams)
        poll = getattr(self.executor, "poll", None)
        if poll is not None:
            poll(snapshot)
        before = len(self.engine.timeline)
        proposals = self.engine.observe(snapshot)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "elastic.poll", snapshot.at, controller=self.name,
                streams=list(snapshot.streams),
                total_rate=round(snapshot.total_rate, 3),
                pending=snapshot.pending_subscription,
            )
            for record in self.engine.timeline[before:]:
                if record.status in ("enforce", "advisory"):
                    tracer.emit(
                        "elastic.decision", record.at, controller=self.name,
                        rule=record.proposal.rule, action=record.proposal.kind,
                        mode=record.status, reason=record.proposal.reason,
                    )
        executed = []
        for proposal in proposals:
            action = self.plan(proposal, snapshot)
            if action is None:
                continue
            request_id = self.executor.execute(action)
            self.executed.append((snapshot.at, action, request_id))
            executed.append(action)
            if tracer is not None:
                tracer.emit(
                    "elastic.action", snapshot.at, controller=self.name,
                    action=action.kind, stream=action.stream,
                    request_id=request_id, rule=proposal.rule,
                )
        return executed

    # -- proposal -> concrete action ----------------------------------

    def plan(self, proposal: Proposal, snapshot: SignalSnapshot):
        """Turn an abstract proposal into a concrete, named action.

        Returns None when the proposal cannot be realised (e.g. a
        replace targeting a stream that was already retired)."""
        if not snapshot.streams:
            return None
        via = snapshot.streams[0]
        if proposal.kind == "subscribe":
            return SubscribeStream(
                stream=self.executor.next_stream_name(), via=via
            )
        if proposal.kind == "split":
            hot = proposal.stream
            if hot is None or hot not in snapshot.streams:
                return None
            if self.router is None:
                return None
            shard = self.router.pick_split(hot, snapshot.shard_rate)
            if shard is None:
                return None
            return SplitShard(
                shard=shard, stream=self.executor.next_stream_name(), via=via,
            )
        if proposal.kind == "replace":
            old = proposal.stream
            if old is None or old not in snapshot.streams:
                return None
            carrier = next(
                (s for s in snapshot.streams if s != old), old
            )
            return ReplaceStream(
                old=old, stream=self.executor.next_stream_name(), via=carrier,
            )
        return None

    # -- sim loop -----------------------------------------------------

    def process(self):
        """Generator loop for the sim kernel (``env.process`` this)."""
        while True:
            yield self.env.timeout(self.interval)
            self.tick()

    def start(self) -> None:
        if self.env is None:
            raise RuntimeError("controller has no kernel to run on")
        self.env.process(self.process())
