"""Declarative elasticity policies and the engine that arbitrates them.

A *rule* is a pure, stateless predicate over one
:class:`~repro.elasticity.signals.SignalSnapshot`: it either returns
``None`` (no breach) or a :class:`Proposal` naming the reconfiguration
kind it wants -- ``subscribe`` a new stream, ``split`` load off a hot
stream, or ``replace`` a slow acceptor ring.  Rules are deliberately
monotone in their driving signal (more load never un-breaches a
threshold), which the property tests in ``tests/elasticity`` check.

The :class:`PolicyEngine` owns all the state: per-rule *sustain*
streaks (a rule must breach on N consecutive observations before it
may fire -- the hysteresis that keeps a noisy signal from flapping),
per-kind *cooldown* windows (after a reconfiguration of some kind, no
further one of that kind until the cluster had time to absorb it), an
in-flight guard (nothing fires while a subscription is pending), a
stream-count cap, and a *dry-run* mode that records every decision as
advisory without ever releasing an action.  Every evaluation outcome
lands in :attr:`PolicyEngine.timeline`, which is the reproducible
decision record the acceptance harness asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .signals import SignalSnapshot

__all__ = [
    "BackpressureHighWater",
    "DecideRateCeiling",
    "DecisionRecord",
    "LatencySlo",
    "PolicyEngine",
    "Proposal",
    "SlowStreamSlo",
    "StreamSkew",
    "default_rules",
]

ACTION_KINDS = ("subscribe", "split", "replace")


@dataclass(frozen=True)
class Proposal:
    """One rule's verdict: a reconfiguration it wants executed."""

    kind: str                       # one of ACTION_KINDS
    rule: str                       # the proposing rule's name
    reason: str                     # human-readable breach description
    severity: float = 1.0           # signal / threshold ratio (>= 1)
    stream: Optional[str] = None    # target stream (split / replace)

    def __post_init__(self) -> None:
        if self.kind not in ACTION_KINDS:
            raise ValueError(f"unknown action kind {self.kind!r}")


@dataclass(frozen=True)
class DecideRateCeiling:
    """Scale out when per-stream decide throughput exceeds a ceiling.

    The paper's vertical-scalability lever (§VII-A): when the average
    decided values/s per subscribed stream crosses ``ceiling``, ask for
    one more stream.  Monotone in the total decide rate.
    """

    ceiling: float
    name: str = "decide-rate-ceiling"

    def evaluate(self, snapshot: SignalSnapshot) -> Optional[Proposal]:
        if not snapshot.streams:
            return None
        per_stream = snapshot.per_stream_rate
        if per_stream <= self.ceiling:
            return None
        return Proposal(
            kind="subscribe",
            rule=self.name,
            reason=(
                f"per-stream decide rate {per_stream:.0f}/s exceeds "
                f"ceiling {self.ceiling:g}/s"
            ),
            severity=per_stream / self.ceiling,
        )


@dataclass(frozen=True)
class LatencySlo:
    """Scale out when client end-to-end p99 breaches the SLO.

    A missing latency signal (no recent samples) is *not* a breach.
    Monotone in the p99.
    """

    p99_ms: float
    name: str = "latency-slo"

    def evaluate(self, snapshot: SignalSnapshot) -> Optional[Proposal]:
        observed = snapshot.latency_p99_ms
        if observed is None or observed <= self.p99_ms or not snapshot.streams:
            return None
        return Proposal(
            kind="subscribe",
            rule=self.name,
            reason=(
                f"client p99 {observed:.1f} ms exceeds SLO {self.p99_ms:g} ms"
            ),
            severity=observed / self.p99_ms,
        )


@dataclass(frozen=True)
class BackpressureHighWater:
    """Scale out when queue depths cross the high-water mark.

    Watches the worst inbox / transport send-queue depth.  Monotone in
    the depth.
    """

    high_water: float
    name: str = "backpressure-high-water"

    def evaluate(self, snapshot: SignalSnapshot) -> Optional[Proposal]:
        if snapshot.backpressure <= self.high_water or not snapshot.streams:
            return None
        return Proposal(
            kind="subscribe",
            rule=self.name,
            reason=(
                f"queue depth {snapshot.backpressure:.0f} exceeds "
                f"high water {self.high_water:g}"
            ),
            severity=snapshot.backpressure / self.high_water,
        )


@dataclass(frozen=True)
class StreamSkew:
    """Split load off a stream carrying too large a share of the total.

    The paper's Figure-4 move: when one stream's share of the decide
    rate exceeds ``max_share`` (and the cluster is actually loaded --
    ``min_total_rate`` guards idle noise), propose splitting the hot
    key range onto another stream.  Monotone in the hot stream's rate,
    all else fixed.
    """

    max_share: float = 0.6
    min_total_rate: float = 20.0
    name: str = "stream-skew"

    def evaluate(self, snapshot: SignalSnapshot) -> Optional[Proposal]:
        if len(snapshot.streams) < 2:
            return None
        total = snapshot.total_rate
        if total < self.min_total_rate:
            return None
        stream, share = snapshot.hottest_stream()
        if stream is None or share <= self.max_share:
            return None
        return Proposal(
            kind="split",
            rule=self.name,
            reason=(
                f"stream {stream} carries {100 * share:.0f}% of "
                f"{total:.0f}/s (max {100 * self.max_share:.0f}%)"
            ),
            severity=share / self.max_share,
            stream=stream,
        )


@dataclass(frozen=True)
class SlowStreamSlo:
    """Replace the acceptor ring of a stream whose decides went slow.

    The paper's Figure-5 move: when one stream's p99 propose->decide
    latency exceeds ``stall_ms`` while some peer stays under
    ``healthy_ms`` (so the slowness is the ring's, not global), propose
    retiring that stream for a fresh one.  Monotone in the slow
    stream's decide latency.
    """

    stall_ms: float = 50.0
    healthy_ms: float = 25.0
    name: str = "slow-stream-slo"

    def evaluate(self, snapshot: SignalSnapshot) -> Optional[Proposal]:
        if len(snapshot.streams) < 2:
            return None
        latencies = {
            s: snapshot.decide_p99_ms[s]
            for s in snapshot.streams
            if s in snapshot.decide_p99_ms
        }
        if len(latencies) < 2:
            return None
        slow = max(latencies, key=latencies.get)
        if latencies[slow] <= self.stall_ms:
            return None
        if min(v for s, v in latencies.items() if s != slow) > self.healthy_ms:
            return None          # everyone is slow: not a ring problem
        return Proposal(
            kind="replace",
            rule=self.name,
            reason=(
                f"stream {slow} decide p99 {latencies[slow]:.0f} ms "
                f"exceeds stall threshold {self.stall_ms:g} ms"
            ),
            severity=latencies[slow] / self.stall_ms,
            stream=slow,
        )


def default_rules(
    ceiling: float = 200.0,
    p99_ms: float = 250.0,
    high_water: float = 500.0,
) -> tuple:
    """The stock rule set (docs/ELASTICITY.md has the schema)."""
    return (
        DecideRateCeiling(ceiling=ceiling),
        LatencySlo(p99_ms=p99_ms),
        BackpressureHighWater(high_water=high_water),
        StreamSkew(),
        SlowStreamSlo(),
    )


@dataclass(frozen=True)
class DecisionRecord:
    """One evaluation outcome on the engine's timeline.

    ``status`` is ``"enforce"`` (action released), ``"advisory"``
    (dry-run: would have fired), ``"sustain"`` (breach observed but the
    streak is still building), ``"cooldown"`` (suppressed inside the
    kind's cooldown window), ``"blocked"`` (a subscription is already
    in flight) or ``"capped"`` (stream-count cap reached).
    """

    at: float
    status: str
    proposal: Proposal


class PolicyEngine:
    """Arbitrates rule proposals into at most occasional actions."""

    def __init__(
        self,
        rules: Sequence,
        sustain: int = 2,
        cooldown: float = 2.0,
        cooldowns: Optional[dict[str, float]] = None,
        dry_run: bool = False,
        max_streams: Optional[int] = None,
    ):
        if sustain < 1:
            raise ValueError("sustain must be >= 1")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.rules = tuple(rules)
        self.sustain = sustain
        self._default_cooldown = cooldown
        self._cooldowns = dict(cooldowns or {})
        self.dry_run = dry_run
        self.max_streams = max_streams
        self.timeline: list[DecisionRecord] = []
        self._streaks: dict[str, int] = {}
        self._last_fired: dict[str, float] = {}

    def cooldown_for(self, kind: str) -> float:
        return self._cooldowns.get(kind, self._default_cooldown)

    def _record(self, at: float, status: str, proposal: Proposal) -> None:
        self.timeline.append(
            DecisionRecord(at=at, status=status, proposal=proposal)
        )

    def observe(self, snapshot: SignalSnapshot) -> list[Proposal]:
        """Evaluate every rule against ``snapshot``.

        Returns the proposals cleared for execution this tick -- always
        empty in dry-run mode, where cleared proposals are recorded as
        ``advisory`` instead.
        """
        released: list[Proposal] = []
        for rule in self.rules:
            proposal = rule.evaluate(snapshot)
            if proposal is None:
                self._streaks[rule.name] = 0
                continue
            streak = self._streaks.get(rule.name, 0) + 1
            self._streaks[rule.name] = streak
            if streak < self.sustain:
                self._record(snapshot.at, "sustain", proposal)
                continue
            last = self._last_fired.get(proposal.kind)
            if (
                last is not None
                and snapshot.at - last < self.cooldown_for(proposal.kind)
            ):
                self._record(snapshot.at, "cooldown", proposal)
                continue
            if snapshot.pending_subscription:
                self._record(snapshot.at, "blocked", proposal)
                continue
            if (
                self.max_streams is not None
                and proposal.kind in ("subscribe", "split")
                and len(snapshot.provisioned) >= self.max_streams
            ):
                self._record(snapshot.at, "capped", proposal)
                continue
            self._last_fired[proposal.kind] = snapshot.at
            self._streaks[rule.name] = 0
            if self.dry_run:
                self._record(snapshot.at, "advisory", proposal)
            else:
                self._record(snapshot.at, "enforce", proposal)
                released.append(proposal)
        return released

    def fired(self) -> list[DecisionRecord]:
        """The records that cleared arbitration (enforce + advisory)."""
        return [
            record for record in self.timeline
            if record.status in ("enforce", "advisory")
        ]
