"""Traffic router: maps workload shards to streams across reconfigs.

The controller's actions change *where new messages should go* -- a
fresh stream after a subscribe, another stream for half of a hot
shard's key range after a split, away from a retiring ring after a
replace.  The router holds that mapping with two layers:

``desired``
    Set immediately when an action executes.

``active``
    What traffic actually follows.  A desired assignment is adopted
    only once the group's subscription to the target stream has
    *committed* on every replica: messages multicast to a stream the
    group is still joining would land before the merge point and be
    discarded (§IV-B), which is exactly the delivery disruption the
    acceptance harness asserts never happens.

Each shard owns two half-ranges (``subkey < 0.5`` and ``>= 0.5``), so
a split moves half of a shard's keyspace without touching the rest.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

__all__ = ["StreamRouter"]


class StreamRouter:
    """Shard -> stream routing table with commit-gated activation."""

    def __init__(self, shards: Iterable[int], initial_streams: Iterable[str]):
        initial = list(initial_streams)
        if not initial:
            raise ValueError("need at least one initial stream")
        shard_list = sorted(shards)
        # Round-robin the shards over the initial streams; both halves
        # of a shard start on the same stream (no split yet).
        self._desired: dict[int, list[str]] = {}
        self._active: dict[int, list[str]] = {}
        for index, shard in enumerate(shard_list):
            stream = initial[index % len(initial)]
            self._desired[shard] = [stream, stream]
            self._active[shard] = [stream, stream]

    # -- routing (the traffic loop's hot call) ------------------------

    def stream_for(self, shard: int, subkey: float) -> str:
        """The stream a message for ``(shard, subkey)`` goes to now."""
        return self._active[shard][0 if subkey < 0.5 else 1]

    def active_streams(self) -> tuple[str, ...]:
        return tuple(sorted({
            s for halves in self._active.values() for s in halves
        }))

    def desired_streams(self) -> tuple[str, ...]:
        return tuple(sorted({
            s for halves in self._desired.values() for s in halves
        }))

    # -- reconfiguration intents --------------------------------------

    def spread(self, new_stream: str) -> None:
        """Rebalance every half-range round-robin over all streams
        including ``new_stream`` (the capacity scale-out move)."""
        targets = sorted(set(self.desired_streams()) | {new_stream})
        slots = [
            (shard, half)
            for shard in sorted(self._desired)
            for half in (0, 1)
        ]
        for index, (shard, half) in enumerate(slots):
            self._desired[shard][half] = targets[index % len(targets)]

    def split(self, shard: int, new_stream: str) -> None:
        """Move the upper half of ``shard``'s key range to ``new_stream``."""
        self._desired[shard][1] = new_stream

    def move_all(self, old: str, new: str) -> None:
        """Redirect every half-range on ``old`` to ``new`` (retirement)."""
        for halves in self._desired.values():
            for half in (0, 1):
                if halves[half] == old:
                    halves[half] = new

    # -- activation ---------------------------------------------------

    def activate(self, committed: Iterable[str]) -> None:
        """Adopt desired assignments whose target stream committed."""
        committed_set = set(committed)
        for shard, halves in self._desired.items():
            active = self._active[shard]
            for half in (0, 1):
                if active[half] != halves[half] and halves[half] in committed_set:
                    active[half] = halves[half]

    def routes_to(self, stream: str) -> bool:
        """True while any *active* half-range still targets ``stream``."""
        return any(
            stream in halves for halves in self._active.values()
        )

    def pick_split(
        self, stream: str, shard_rate: Mapping[int, float]
    ) -> Optional[int]:
        """The hottest unsplit shard routed (actively) to ``stream``.

        Returns None when every shard on the stream is already split --
        there is nothing left to halve."""
        candidates = [
            shard for shard, halves in self._active.items()
            if halves[0] == stream and halves[0] == halves[1]
        ]
        if not candidates:
            return None
        return max(
            candidates, key=lambda shard: (shard_rate.get(shard, 0.0), -shard)
        )
