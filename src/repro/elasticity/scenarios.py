"""Scenario-driven acceptance harness for the elasticity controller.

Each :class:`ElasticityScenario` describes a workload shape (a traffic
ramp, a Zipfian hot-key storm, a slow-acceptor injection via the fault
DSL), a policy, and what the controller is expected to do about it.
:class:`ElasticityRunner` assembles a simulated cluster around it --
sharded traffic routed through the
:class:`~repro.elasticity.router.StreamRouter`, signals sampled by a
:class:`~repro.elasticity.signals.SimSignalSource` from a windowed
metrics registry, the full
:class:`~repro.faults.invariants.InvariantSuite` attached to every
replica -- and runs the closed loop to completion.

The run is an *acceptance test* of the whole feedback path:

* safety invariants are checked on a timer throughout (and the groups
  must converge at the end);
* delivery must stay disruption-free: the maximum inter-delivery gap
  observed at the reference replica during the loaded window is bounded
  -- a reconfiguration that stalled the merge would blow it;
* the decision timeline is part of the result, so "same seed, same
  decisions" is directly assertable;
* every decision rides the trace (``elastic.decision`` ->
  ``control.subscribe`` -> ``merge.subscribe.commit`` share a
  ``request_id``), so ``repro validate-trace`` can check causality;
* like the fault runner, the most recent trace events ride in a
  :class:`~repro.obs.recorder.FlightRecorder` ring buffer that is
  dumped to ``$REPRO_FLIGHT_DIR`` when an invariant fires.

Determinism: all inputs are virtual-time driven (paced traffic with a
seeded rng, a fixed controller interval, fault windows at fixed virtual
times), so one ``(scenario, seed)`` pair yields a bit-identical
delivery digest *and* decision timeline.  With the controller disabled
or in dry-run mode the run never reconfigures, so those two digests
must match each other exactly -- the "dry-run never acts" guarantee,
checked end to end.
"""

from __future__ import annotations

import bisect
import os
from dataclasses import dataclass, field
from typing import Callable, Optional

from ..faults.invariants import InvariantSuite, InvariantViolation
from ..faults.orchestrator import FaultOrchestrator
from ..faults.runner import DEFAULT_FLIGHT_DIR, FLIGHT_DIR_ENV
from ..faults.schedule import DelaySpike, Schedule
from ..harness.cluster import MulticastCluster
from ..obs.metrics import MetricsRegistry
from ..obs.recorder import FlightRecorder
from ..obs.trace import Tracer, current_tracer, installed
from ..workload.generators import zipf_shares
from .actions import SimExecutor
from .controller import ElasticityController
from .policy import (
    DecideRateCeiling,
    DecisionRecord,
    PolicyEngine,
    SlowStreamSlo,
    StreamSkew,
)
from .router import StreamRouter
from .signals import SimSignalSource

__all__ = [
    "SCENARIOS",
    "ElasticityResult",
    "ElasticityRunner",
    "ElasticityScenario",
    "get_scenario",
    "run_scenario",
]


@dataclass(frozen=True)
class ElasticityScenario:
    """One closed-loop acceptance scenario (workload + policy + oracle)."""

    name: str
    description: str
    duration: float
    # -- workload shape -------------------------------------------------
    n_shards: int = 8
    initial_streams: tuple[str, ...] = ("S1",)
    replicas: int = 2
    group: str = "G1"
    base_rate: float = 60.0            # submitted messages/s at t=0
    peak_rate: Optional[float] = None  # ramp target (None: flat)
    ramp: tuple[float, float] = (0.5, 2.5)   # ramp window [start, end]
    skew_window: Optional[tuple[float, float]] = None  # hot-key storm
    zipf_s: float = 1.8
    load_until_frac: float = 0.8       # traffic stops at this fraction
    # -- faults ---------------------------------------------------------
    schedule: Optional[Callable[["ElasticityScenario", int], Schedule]] = None
    # -- policy ---------------------------------------------------------
    rules: Callable[[], tuple] = field(default=tuple)
    sustain: int = 2
    cooldown: float = 1.5
    max_streams: int = 4
    interval: float = 0.25
    retire_delay: float = 0.75
    # -- cluster sizing (mirrors the fault scenarios' defaults) --------
    lam: int = 500
    delta_t: float = 0.05
    link_latency: float = 0.001
    metrics_window: float = 1.0
    # -- acceptance oracle ---------------------------------------------
    expected_kinds: tuple[str, ...] = ("subscribe",)
    gap_bound: float = 0.5             # max inter-delivery gap allowed
    warmup: float = 0.5                # gap measurement starts here

    # -- workload sampling ---------------------------------------------

    def rate_at(self, now: float) -> float:
        """Submitted messages/s at virtual time ``now``."""
        if self.peak_rate is None:
            return self.base_rate
        start, end = self.ramp
        if now <= start:
            return self.base_rate
        if now >= end:
            return self.peak_rate
        frac = (now - start) / (end - start)
        return self.base_rate + frac * (self.peak_rate - self.base_rate)

    def skewed(self, now: float) -> bool:
        """True while the hot-key storm is blowing."""
        if self.skew_window is None:
            return False
        start, end = self.skew_window
        return start <= now < end

    def load_until(self) -> float:
        return self.duration * self.load_until_frac

    def replica_names(self) -> tuple[str, ...]:
        return tuple(
            f"{self.group}/r{i + 1}" for i in range(self.replicas)
        )


@dataclass
class ElasticityResult:
    """Outcome of one closed-loop run (invariants all held -- a
    violation raises out of :meth:`ElasticityRunner.run` instead)."""

    scenario: str
    seed: int
    dry_run: bool
    controller_enabled: bool
    duration: float
    timeline: list[DecisionRecord]
    executed: list[tuple[float, str, str, int]]  # (at, kind, stream, req id)
    retired: list[str]
    final_streams: tuple[str, ...]
    delivered: dict[str, int]
    checks_run: int
    digest: str
    converged: bool
    max_gap: float
    gap_bound: float
    expected_kinds: tuple[str, ...]
    report_text: str = ""

    @property
    def executed_kinds(self) -> tuple[str, ...]:
        return tuple(kind for _at, kind, _stream, _rid in self.executed)

    @property
    def ok(self) -> bool:
        """Did the run meet its acceptance oracle?

        Safety held (or we would not have a result), the groups
        converged, delivery stayed gap-free, and -- when the loop was
        closed -- every expected reconfiguration kind actually ran.
        """
        if not self.converged or self.max_gap > self.gap_bound:
            return False
        if self.dry_run or not self.controller_enabled:
            return not self.executed
        return all(
            kind in self.executed_kinds for kind in self.expected_kinds
        )

    def report(self) -> str:
        return self.report_text


def _ramp_rules() -> tuple:
    return (DecideRateCeiling(ceiling=200.0),)


def _hot_shard_rules() -> tuple:
    return (StreamSkew(max_share=0.65, min_total_rate=40.0),)


def _slow_acceptor_rules() -> tuple:
    return (SlowStreamSlo(stall_ms=60.0, healthy_ms=30.0),)


def _slow_acceptor_schedule(
    spec: ElasticityScenario, seed: int
) -> Schedule:
    """One acceptor ring (S1's) turns slow for the rest of the run."""
    slow = tuple(f"S1/a{i + 1}" for i in range(3))
    return Schedule(
        name="slow-ring",
        actions=(
            DelaySpike(
                start=1.0, end=spec.duration, extra_latency=0.040, dst=slow
            ),
        ),
    )


SCENARIOS: dict[str, ElasticityScenario] = {
    spec.name: spec
    for spec in (
        ElasticityScenario(
            name="ramp",
            description=(
                "linear traffic ramp past the decide-rate ceiling; the "
                "controller must subscribe a new stream autonomously"
            ),
            duration=6.0,
            initial_streams=("S1",),
            base_rate=60.0,
            peak_rate=360.0,
            ramp=(0.5, 2.5),
            rules=_ramp_rules,
            max_streams=3,
            expected_kinds=("subscribe",),
        ),
        ElasticityScenario(
            name="hot-shard",
            description=(
                "Zipfian hot-key storm concentrates load on one stream; "
                "the controller must split the hot shard's key range"
            ),
            duration=6.0,
            initial_streams=("S1", "S2"),
            base_rate=150.0,
            skew_window=(1.0, 4.0),
            zipf_s=1.8,
            rules=_hot_shard_rules,
            max_streams=3,
            expected_kinds=("split",),
        ),
        ElasticityScenario(
            name="slow-acceptor",
            description=(
                "one acceptor ring develops 40ms of extra latency; the "
                "controller must retire it for a fresh stream"
            ),
            duration=7.0,
            initial_streams=("S1", "S2"),
            base_rate=120.0,
            schedule=_slow_acceptor_schedule,
            rules=_slow_acceptor_rules,
            cooldown=2.0,
            expected_kinds=("replace",),
            gap_bound=1.0,
        ),
    )
}


def get_scenario(name: str) -> ElasticityScenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(
            f"unknown elasticity scenario {name!r} (known: {known})"
        ) from None


class ElasticityRunner:
    """Builds, runs and judges one closed-loop elasticity scenario."""

    def __init__(
        self,
        spec: ElasticityScenario,
        seed: int = 1,
        dry_run: bool = False,
        controller_enabled: bool = True,
        flight_capacity: int = 100_000,
    ):
        self.spec = spec
        self.seed = seed
        self.dry_run = dry_run
        self.controller_enabled = controller_enabled
        self.registry = MetricsRegistry(window=spec.metrics_window)
        # Flight recorder: ride along on an externally installed tracer
        # (the CLI's trace command), or install a private one for the
        # cluster construction window -- the environment adopts it then.
        self.recorder = FlightRecorder(capacity=flight_capacity)
        external = current_tracer()
        if external is not None:
            external.add_sink(self.recorder)
            self.tracer = external
            with installed(metrics=self.registry):
                self.cluster = self._build_cluster()
        else:
            self.tracer = Tracer(sinks=[self.recorder])
            with installed(self.tracer, metrics=self.registry):
                self.cluster = self._build_cluster()
        for name in spec.replica_names():
            self.cluster.add_replica(
                name, spec.group, list(spec.initial_streams)
            )
        self.suite = InvariantSuite(self.cluster.replicas)
        self.router = StreamRouter(
            range(spec.n_shards), spec.initial_streams
        )
        self.executor = SimExecutor(
            self.cluster,
            spec.group,
            self.router,
            retire_delay=spec.retire_delay,
        )
        self.engine = PolicyEngine(
            spec.rules(),
            sustain=spec.sustain,
            cooldown=spec.cooldown,
            dry_run=dry_run,
            max_streams=spec.max_streams,
        )
        self.source = SimSignalSource(
            self.cluster.env,
            self.registry,
            self.cluster.replicas,
            self.cluster.directory,
        )
        self.controller = ElasticityController(
            self.source,
            self.engine,
            self.executor,
            env=self.cluster.env,
            interval=spec.interval,
            router=self.router,
        )
        self.schedule = (
            spec.schedule(spec, seed) if spec.schedule is not None
            else Schedule(name="none")
        )
        self.orchestrator = FaultOrchestrator(
            self.cluster.env, self.cluster.network
        )
        # Delivery gap / latency accounting at the reference replica.
        self._reference = spec.replica_names()[0]
        self.delivery_times: list[float] = []
        self._submit_at: dict[int, float] = {}
        self.cluster.replicas[self._reference].add_delivery_observer(
            self._observe_delivery
        )
        # Zipf CDF over the shards, hottest first (shard 0 is rank 0).
        cumulative, cdf = 0.0, []
        for share in zipf_shares(spec.n_shards, spec.zipf_s):
            cumulative += share
            cdf.append(cumulative)
        self._zipf_cdf = cdf

    def _build_cluster(self) -> MulticastCluster:
        return MulticastCluster(
            streams=self.spec.initial_streams,
            seed=self.seed,
            link_latency=self.spec.link_latency,
            lam=self.spec.lam,
            delta_t=self.spec.delta_t,
        )

    # -- observation ----------------------------------------------------

    def _observe_delivery(self, value, stream, position) -> None:
        now = self.cluster.env.now
        self.delivery_times.append(now)
        sent_at = self._submit_at.pop(value.msg_id, None)
        if sent_at is not None:
            self.registry.histogram("client", "latency_ms").record(
                1000.0 * (now - sent_at)
            )

    # -- background processes -------------------------------------------

    def _draw_shard(self, rng) -> int:
        if self.spec.skewed(self.cluster.env.now):
            return bisect.bisect_left(self._zipf_cdf, rng.random())
        return rng.randrange(self.spec.n_shards)

    def _traffic_loop(self, until: float):
        env = self.cluster.env
        client = self.cluster.client
        rng = self.cluster.rng.stream("elastic-load")
        index = 0
        while env.now < until:
            shard = self._draw_shard(rng)
            subkey = rng.random()
            stream = self.router.stream_for(shard, subkey)
            value = client.multicast(
                stream, payload=("m", index, shard), size=64
            )
            self._submit_at[value.msg_id] = env.now
            self.registry.counter(f"shard/{shard}", "ops").record()
            index += 1
            yield env.timeout(1.0 / self.spec.rate_at(env.now))

    def _check_loop(self):
        env = self.cluster.env
        while True:
            yield env.timeout(0.25)
            self.suite.check()

    # -- flight recording -----------------------------------------------

    def dump_flight_recording(self, violation: InvariantViolation) -> str:
        """Write the ring buffer to the flight dir; returns the path."""
        directory = os.environ.get(FLIGHT_DIR_ENV, DEFAULT_FLIGHT_DIR)
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(
            directory, f"elasticity-{self.spec.name}-seed{self.seed}.jsonl"
        )
        header = {
            "ts": self.cluster.env.now,
            "message": str(violation),
            "scenario": f"elasticity/{self.spec.name}",
            "seed": self.seed,
        }
        if violation.msg_id is not None:
            header["msg_id"] = violation.msg_id
        self.recorder.dump(path, header=header)
        return path

    # -- running --------------------------------------------------------

    def _max_gap(self, load_until: float) -> float:
        """Largest inter-delivery gap in the loaded, post-warmup window."""
        lo, hi = self.spec.warmup, load_until
        times = [t for t in self.delivery_times if lo <= t <= hi]
        if not times:
            return hi - lo
        gaps = [b - a for a, b in zip(times, times[1:])]
        gaps.append(times[0] - lo)
        gaps.append(hi - times[-1])
        return max(gaps)

    def run(self) -> ElasticityResult:
        spec = self.spec
        env = self.cluster.env
        load_until = spec.load_until()
        env.process(self._traffic_loop(load_until))
        env.process(self._check_loop())
        if self.controller_enabled:
            self.controller.start()
        if self.schedule:
            self.orchestrator.execute(self.schedule)
        try:
            env.run(until=spec.duration)
            self.suite.check()
            self.suite.assert_converged()
        except InvariantViolation as violation:
            violation.dump_path = self.dump_flight_recording(violation)
            raise
        delivered = {
            name: len(self.suite.logs[name].records)
            for name in sorted(self.suite.logs)
        }
        result = ElasticityResult(
            scenario=spec.name,
            seed=self.seed,
            dry_run=self.dry_run,
            controller_enabled=self.controller_enabled,
            duration=spec.duration,
            timeline=list(self.engine.timeline),
            executed=[
                (at, action.kind, action.stream, request_id)
                for at, action, request_id in self.controller.executed
            ],
            retired=list(self.executor.retired),
            final_streams=self.source._committed_streams(),
            delivered=delivered,
            checks_run=self.suite.checks_run,
            digest=self.suite.digest(),
            converged=True,
            max_gap=self._max_gap(load_until),
            gap_bound=spec.gap_bound,
            expected_kinds=spec.expected_kinds,
        )
        result.report_text = self._render_report(result)
        return result

    def _render_report(self, result: ElasticityResult) -> str:
        mode = (
            "dry-run" if result.dry_run
            else ("closed-loop" if result.controller_enabled else "disabled")
        )
        lines = [
            f"scenario             : elasticity/{result.scenario} "
            f"(seed {result.seed}, {mode})",
            f"description          : {self.spec.description}",
            f"policy               : "
            f"{', '.join(r.name for r in self.engine.rules)} "
            f"(sustain {self.engine.sustain}, cooldown "
            f"{self.engine.cooldown_for('subscribe'):g}s)",
        ]
        fired = self.engine.fired()
        if fired:
            lines.append("decision timeline    :")
            for record in fired:
                lines.append(
                    f"  t={record.at:6.2f}s  {record.status:<8} "
                    f"{record.proposal.kind:<9} [{record.proposal.rule}] "
                    f"{record.proposal.reason}"
                )
        else:
            lines.append("decision timeline    : (no decisions fired)")
        if result.executed:
            lines.append("actions executed     :")
            for at, kind, stream, request_id in result.executed:
                lines.append(
                    f"  t={at:6.2f}s  {kind:<9} -> {stream} "
                    f"(request {request_id})"
                )
        if result.retired:
            lines.append(
                f"streams retired      : {', '.join(result.retired)}"
            )
        sigma = "{" + ", ".join(result.final_streams) + "}"
        lines.append(f"final Σ              : {sigma}")
        counts = ", ".join(
            f"{name}={count}" for name, count in result.delivered.items()
        )
        lines.append(f"delivered            : {counts}")
        lines.append(
            f"invariant checks run : {result.checks_run} -- all OK, "
            f"groups converged"
        )
        lines.append(
            f"max delivery gap     : {result.max_gap * 1000:.0f} ms "
            f"(bound {result.gap_bound * 1000:.0f} ms)"
        )
        lines.append(f"delivery digest      : {result.digest[:16]}")
        lines.append(
            f"acceptance           : {'OK' if result.ok else 'FAILED'}"
        )
        return "\n".join(lines)


def run_scenario(
    name: str,
    seed: int = 1,
    dry_run: bool = False,
    controller_enabled: bool = True,
) -> ElasticityResult:
    """Run one named scenario end to end; returns its result."""
    return ElasticityRunner(
        get_scenario(name),
        seed=seed,
        dry_run=dry_run,
        controller_enabled=controller_enabled,
    ).run()
