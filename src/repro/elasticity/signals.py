"""Signal plane of the elasticity controller.

The closed loop starts here: a *signal source* samples the telemetry
plane into an immutable :class:`SignalSnapshot` the policy engine can
evaluate.  Two sources exist, mirroring the two execution backends:

:class:`SimSignalSource`
    Reads the in-process :class:`repro.obs.metrics.MetricsRegistry`
    directly (the registry the simulated cluster's probes record into)
    plus cheap cluster introspection for the subscription state.

:class:`HttpSignalSource`
    Polls the per-node HTTP endpoints a live run serves
    (``/metrics.json`` for decide rates and latency quantiles,
    ``/health`` for subscription state and transport backpressure --
    see docs/OBSERVABILITY.md, "Live mode").

Both produce the same snapshot type, so policies are backend-agnostic.
A missing signal is represented as ``None`` / an absent key, never as a
stale number: the windowed instruments beneath re-evaluate their
retention window at read time (see :mod:`repro.sim.monitor`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

__all__ = ["HttpSignalSource", "SignalSnapshot", "SimSignalSource"]


@dataclass(frozen=True)
class SignalSnapshot:
    """One observation of the cluster, as the policy engine sees it.

    Attributes
    ----------
    at:
        Sample time (virtual seconds in the sim, node-local wall
        seconds live).  The policy engine's hysteresis and cooldown
        clocks run on this field, never on wall time directly.
    streams:
        The replication group's *committed* subscription set Σ: streams
        every replica has switched its dMerge to.
    provisioned:
        Every deployed stream (committed or not).
    pending_subscription:
        True while any replica has a subscription in flight; the engine
        refuses to stack reconfigurations on top of one another.
    decide_rate:
        Per-stream decided *application values* per second since the
        previous sample (skips excluded -- they are pacing, not load).
    decide_p99_ms:
        Per-stream p99 propose->decide latency over the retention
        window; streams with no recent samples are absent.
    latency_p99_ms:
        Client end-to-end p99 over the retention window, or None when
        nothing was measured recently.
    backpressure:
        The worst queue depth observed (actor inboxes in the sim,
        transport send queues live).
    shard_rate:
        Per-workload-shard submitted ops per second (empty when the
        workload is not sharded).
    alerts:
        Active watchdog alerts across the nodes, as ``"node:detector"``
        strings (live source only; see docs/OBSERVABILITY.md, "Online
        audit").  A policy can refuse to reconfigure a cluster that is
        already anomalous.
    """

    at: float
    streams: tuple[str, ...]
    provisioned: tuple[str, ...]
    pending_subscription: bool
    decide_rate: Mapping[str, float] = field(default_factory=dict)
    decide_p99_ms: Mapping[str, float] = field(default_factory=dict)
    latency_p99_ms: Optional[float] = None
    backpressure: float = 0.0
    shard_rate: Mapping[int, float] = field(default_factory=dict)
    alerts: tuple[str, ...] = ()

    @property
    def total_rate(self) -> float:
        """Aggregate decided values/s across the subscribed streams."""
        return sum(self.decide_rate.get(s, 0.0) for s in self.streams)

    @property
    def per_stream_rate(self) -> float:
        """Average decided values/s per subscribed stream."""
        if not self.streams:
            return 0.0
        return self.total_rate / len(self.streams)

    def hottest_stream(self) -> tuple[Optional[str], float]:
        """``(stream, share of total rate)`` of the busiest stream."""
        total = self.total_rate
        if not self.streams or total <= 0.0:
            return None, 0.0
        stream = max(self.streams, key=lambda s: self.decide_rate.get(s, 0.0))
        return stream, self.decide_rate.get(stream, 0.0) / total


class SimSignalSource:
    """Builds snapshots from a sim cluster's metrics registry.

    Decide rates come from the ``values_decided`` counters the
    coordinators record; per-stream decide latency from their windowed
    ``decide_latency_ms`` histograms; client latency from the harness's
    ``client/latency_ms`` histogram; backpressure from the actor
    ``inbox_depth`` gauges.  Subscription state is read off the
    replicas (the registry has no notion of Σ).
    """

    def __init__(
        self,
        env,
        registry,
        replicas: Mapping[str, object],
        directory: Mapping[str, object],
        latency_actor: str = "client",
        latency_metric: str = "latency_ms",
        shard_prefix: str = "shard/",
    ):
        self.env = env
        self.registry = registry
        self.replicas = replicas
        self.directory = directory
        self.latency_actor = latency_actor
        self.latency_metric = latency_metric
        self.shard_prefix = shard_prefix
        self._last_at: Optional[float] = None
        self._last_totals: dict[str, float] = {}
        self._last_shard_totals: dict[int, float] = {}

    def _committed_streams(self) -> tuple[str, ...]:
        replicas = list(self.replicas.values())
        if not replicas:
            return ()
        first = replicas[0].subscriptions
        return tuple(
            s for s in first
            if all(s in r.subscriptions for r in replicas[1:])
        )

    def sample(self) -> SignalSnapshot:
        now = self.env.now
        dt = None if self._last_at is None else now - self._last_at
        decide_rate: dict[str, float] = {}
        decide_p99: dict[str, float] = {}
        for stream, deployment in self.directory.items():
            coordinator = deployment.config.coordinator
            counter = self.registry.counter(coordinator, "values_decided")
            total = counter.total
            last = self._last_totals.get(stream, total)
            self._last_totals[stream] = total
            if dt is not None and dt > 0:
                decide_rate[stream] = (total - last) / dt
            else:
                decide_rate[stream] = 0.0
            histogram = self.registry.histogram(coordinator, "decide_latency_ms")
            if len(histogram) > 0:
                decide_p99[stream] = histogram.percentile(99)
        shard_rate: dict[int, float] = {}
        for (actor, name), counter in self.registry.counters().items():
            if name != "ops" or not actor.startswith(self.shard_prefix):
                continue
            shard = int(actor[len(self.shard_prefix):])
            total = counter.total
            last = self._last_shard_totals.get(shard, total)
            self._last_shard_totals[shard] = total
            if dt is not None and dt > 0:
                shard_rate[shard] = (total - last) / dt
        latency = self.registry.histogram(
            self.latency_actor, self.latency_metric
        )
        latency_p99 = latency.percentile(99) if len(latency) > 0 else None
        backpressure = 0.0
        for (_actor, name), gauge in self.registry.gauges().items():
            if name == "inbox_depth" and gauge.value is not None:
                backpressure = max(backpressure, gauge.value)
        self._last_at = now
        return SignalSnapshot(
            at=now,
            streams=self._committed_streams(),
            provisioned=tuple(sorted(self.directory)),
            pending_subscription=any(
                r.merger.pending_subscription is not None
                for r in self.replicas.values()
            ),
            decide_rate=decide_rate,
            decide_p99_ms=decide_p99,
            latency_p99_ms=latency_p99,
            backpressure=backpressure,
            shard_rate=shard_rate,
        )


class HttpSignalSource:
    """Builds snapshots by polling a live cluster's HTTP endpoints.

    One snapshot merges every node's ``/metrics.json`` (counters and
    histograms; each node serves only its own actors) and ``/health``
    (subscription state, transport queue depths).  Endpoint failures
    degrade to missing signals, never to stale ones.
    """

    def __init__(self, endpoints: Mapping[str, tuple[str, int]], clock):
        self.endpoints = dict(endpoints)
        self.clock = clock                    # () -> seconds, caller's clock
        self._last_at: Optional[float] = None
        self._last_totals: dict[str, float] = {}

    async def sample(self) -> SignalSnapshot:
        from ..runtime.telemetry import http_get_json

        now = self.clock()
        dt = None if self._last_at is None else now - self._last_at
        totals: dict[str, float] = {}
        decide_p99: dict[str, float] = {}
        latency_p99: Optional[float] = None
        subscriptions: list[tuple[str, ...]] = []
        pending = False
        provisioned: set[str] = set()
        backpressure = 0.0
        alerts: list[str] = []
        for node, (host, port) in sorted(self.endpoints.items()):
            try:
                metrics = await http_get_json(host, port, "/metrics.json")
                health = await http_get_json(host, port, "/health")
            except Exception:
                continue       # endpoint briefly busy; sample what we can
            for entry in metrics.get("counters", ()):
                actor = entry.get("actor", "")
                if entry.get("name") == "values_decided" and "/" in actor:
                    stream = actor.split("/", 1)[0]
                    totals[stream] = totals.get(stream, 0.0) + entry["total"]
            for entry in metrics.get("histograms", ()):
                actor = entry.get("actor", "")
                if (
                    entry.get("name") == "decide_latency_ms"
                    and entry.get("p99") is not None
                    and "/" in actor
                ):
                    decide_p99[actor.split("/", 1)[0]] = entry["p99"]
                if (
                    entry.get("name") == "latency_ms"
                    and entry.get("p99") is not None
                ):
                    latency_p99 = entry["p99"]
            provisioned.update(health.get("streams", {}))
            for state in health.get("replicas", {}).values():
                subscriptions.append(tuple(state.get("subscriptions", ())))
                pending = pending or bool(state.get("pending_subscription"))
            depths = (
                health.get("transport", {}).get("queue_depths", {}) or {}
            )
            for depth in depths.values():
                backpressure = max(backpressure, float(depth))
            # /health rolls the node's self-observing watchdog in; an
            # active alert here feeds straight into policy decisions.
            for alert in health.get("alerts", ()):
                alerts.append(f"{node}:{alert.get('detector', '?')}")
        decide_rate: dict[str, float] = {}
        for stream, total in totals.items():
            provisioned.add(stream)
            last = self._last_totals.get(stream, total)
            self._last_totals[stream] = total
            if dt is not None and dt > 0:
                decide_rate[stream] = (total - last) / dt
        if subscriptions:
            first = subscriptions[0]
            committed = tuple(
                s for s in first
                if all(s in other for other in subscriptions[1:])
            )
        else:
            committed = ()
        self._last_at = now
        return SignalSnapshot(
            at=now,
            streams=committed,
            provisioned=tuple(sorted(provisioned)),
            pending_subscription=pending,
            decide_rate=decide_rate,
            decide_p99_ms=decide_p99,
            latency_p99_ms=latency_p99,
            backpressure=backpressure,
            alerts=tuple(sorted(alerts)),
        )
