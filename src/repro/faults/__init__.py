"""Deterministic fault injection and always-on safety invariant checking.

Elastic Paxos claims that dynamic subscriptions, unsubscriptions and
acceptor reconfigurations preserve acyclic total order under a
crash-recovery model with message loss (§II of the paper).  This
package turns that claim into a continuously checked property:

* :mod:`repro.faults.schedule` -- a declarative DSL for fault plans
  (crashes, partitions, loss/delay/duplication/reordering windows) plus
  the seeded :class:`RandomChaos` generator;
* :mod:`repro.faults.orchestrator` -- executes a schedule against the
  simulated network and its hosts/actors in virtual time;
* :mod:`repro.faults.invariants` -- taps replica delivery logs and
  asserts the paper's safety properties (uniform agreement, acyclic
  total order across groups, gap-free per-stream delivery, merge-point
  consistency) throughout a run;
* :mod:`repro.faults.scenarios` / :mod:`repro.faults.runner` -- named,
  reproducible scenarios wired into :mod:`repro.harness.cluster`, also
  reachable as ``python -m repro faults run <scenario>``.
"""

from .invariants import DeliveryRecord, InvariantSuite, InvariantViolation
from .orchestrator import FaultOrchestrator
from .runner import ScenarioResult, ScenarioRunner, run_scenario
from .scenarios import SCENARIOS, ControlOp, ScenarioSpec, get_scenario
from .schedule import (
    CrashAt,
    DelaySpike,
    DuplicateWindow,
    LossWindow,
    PartitionWindow,
    RandomChaos,
    RecoverAt,
    ReorderWindow,
    Schedule,
)

__all__ = [
    "ControlOp",
    "CrashAt",
    "DelaySpike",
    "DeliveryRecord",
    "DuplicateWindow",
    "FaultOrchestrator",
    "InvariantSuite",
    "InvariantViolation",
    "LossWindow",
    "PartitionWindow",
    "RandomChaos",
    "RecoverAt",
    "ReorderWindow",
    "SCENARIOS",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "Schedule",
    "get_scenario",
    "run_scenario",
]
