"""Always-on safety invariant checkers for fault-injection runs.

The checkers tap every replica's delivery stream (via
:meth:`repro.multicast.replica.MulticastReplica.add_delivery_observer`)
and assert, continuously during a run and again at its end, the safety
properties Elastic Paxos promises under crashes, partitions, loss,
duplication and reordering (§II, Fig. 2 of the paper):

* **stream agreement** -- a stream position carries the same value at
  every replica that delivers it, across all groups (uniform agreement
  at the stream level);
* **prefix consistency** -- two replicas of the same group deliver
  identical sequences up to the shorter one (uniform agreement at the
  group level: nobody delivers something the others never will);
* **gap-free monotone delivery** -- per replica and stream, delivered
  positions strictly increase; a recovered replica resumes exactly at
  its checkpoint cursor, so replay never skips or repeats a position;
* **acyclic order** -- the union of all groups' delivery orders is
  acyclic (Fig. 2): two groups sharing streams never disagree on the
  relative order of messages they both deliver;
* **merge-point consistency** -- all replicas of a group that commit
  the same subscription request compute the identical merge point.

Crash-recovery semantics: a replica recovering from a checkpoint
legitimately *replays* deliveries made after that checkpoint.  The
scenario runner therefore marks the log at checkpoint time and rewinds
it on recovery; the ``(stream, position) -> value`` map survives the
rewind, so a replay that diverges from what was originally delivered is
still caught.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Mapping, Optional

from ..multicast.replica import MulticastReplica

__all__ = [
    "DeliveryLog",
    "DeliveryRecord",
    "InvariantSuite",
    "InvariantViolation",
]


class InvariantViolation(AssertionError):
    """A safety property of the protocol was violated.

    ``msg_id`` carries the violating message (or request) id when the
    broken property points at one -- the flight recorder uses it to
    extract that message's causal history from the dump.
    """

    msg_id: Optional[int] = None


@dataclass(frozen=True)
class DeliveryRecord:
    """One delivery observed at one replica."""

    stream: str
    position: int
    msg_id: int
    payload: object
    at: float


class DeliveryLog:
    """The delivery sequence of one replica, rewindable at recovery.

    ``records`` is the replica's current canonical delivery sequence.
    ``mark()`` snapshots its length (taken alongside each checkpoint);
    ``rewind(mark)`` truncates back to it when the replica recovers from
    that checkpoint and is about to replay the suffix.  The
    position->value memory is deliberately *not* rewound: replay must
    reproduce the original assignment.
    """

    def __init__(self, replica: str, group: str):
        self.replica = replica
        self.group = group
        self.records: list[DeliveryRecord] = []
        self.position_values: dict[tuple[str, int], int] = {}
        self.rewinds = 0

    def append(self, record: DeliveryRecord) -> None:
        self.records.append(record)

    def mark(self) -> int:
        return len(self.records)

    def rewind(self, mark: int) -> None:
        if mark > len(self.records):
            raise ValueError(
                f"mark {mark} exceeds log length {len(self.records)}"
            )
        del self.records[mark:]
        self.rewinds += 1

    def sequence(self) -> list[tuple[str, int, int]]:
        """The log as ``(stream, position, msg_id)`` triples."""
        return [(r.stream, r.position, r.msg_id) for r in self.records]

    def digest(self) -> str:
        """Stable hash of the delivery sequence (determinism checks)."""
        hasher = hashlib.sha256()
        for record in self.records:
            hasher.update(
                f"{record.stream}:{record.position}:{record.payload!r};".encode()
            )
        return hasher.hexdigest()


class InvariantSuite:
    """Attaches to a cluster's replicas and checks all invariants.

    ``check()`` raises :class:`InvariantViolation` on the first broken
    property; it is cheap enough to run periodically (the scenario
    runner calls it on a timer, so a violation surfaces at the virtual
    time it happens, not at the end of the run).
    """

    def __init__(self, replicas: Mapping[str, MulticastReplica]):
        self.replicas = dict(replicas)
        self.logs: dict[str, DeliveryLog] = {}
        self.groups: dict[str, list[str]] = {}
        # replica -> request_id -> (stream, merge point), accumulated
        # across merger incarnations (recovery replaces the merger).
        self._merge_points: dict[str, dict[int, tuple[str, int]]] = {}
        self.checks_run = 0
        for name in sorted(self.replicas):
            replica = self.replicas[name]
            log = DeliveryLog(name, replica.group)
            self.logs[name] = log
            self._merge_points[name] = {}
            self.groups.setdefault(replica.group, []).append(name)
            replica.add_delivery_observer(self._observer(log))

    def _observer(self, log: DeliveryLog):
        replica = self.replicas[log.replica]

        def observe(value, stream, position):
            log.append(
                DeliveryRecord(
                    stream=stream,
                    position=position,
                    msg_id=value.msg_id,
                    payload=value.payload,
                    at=replica.env.now,
                )
            )

        return observe

    # -- checkpoint/recovery hooks (called by the scenario runner) ------

    def mark(self, replica: str) -> int:
        """Snapshot the log length of ``replica`` (at checkpoint time)."""
        return self.logs[replica].mark()

    def rewind(self, replica: str, mark: int) -> None:
        """Roll the log back to ``mark`` (recovery will replay from it)."""
        self.logs[replica].rewind(mark)

    # -- the invariants -------------------------------------------------

    def _violation(
        self, message: str, msg_id: Optional[int] = None
    ) -> InvariantViolation:
        """Build the exception and report it to the tracer (if any).

        The ``invariant.violation`` event lands in every attached sink --
        in particular the flight recorder, right before the scenario
        runner dumps it -- so the dump is self-describing.
        """
        for replica in self.replicas.values():
            env = replica.env
            tracer = getattr(env, "tracer", None)
            if tracer is not None:
                fields = {"message": message}
                if msg_id is not None:
                    fields["msg_id"] = msg_id
                tracer.emit("invariant.violation", env.now, **fields)
            break
        exc = InvariantViolation(message)
        exc.msg_id = msg_id
        return exc

    def check(self) -> None:
        """Assert every invariant against the current logs."""
        self.checks_run += 1
        self._check_monotone_gap_free()
        self._check_stream_agreement()
        self._check_prefix_consistency()
        self._check_acyclic_order()
        self._check_merge_points()

    def _check_monotone_gap_free(self) -> None:
        for name, log in self.logs.items():
            last: dict[str, int] = {}
            for record in log.records:
                prev = last.get(record.stream)
                if prev is not None and record.position <= prev:
                    raise self._violation(
                        f"{name}: delivery positions of {record.stream} not "
                        f"strictly increasing ({record.position} after {prev})",
                        msg_id=record.msg_id,
                    )
                last[record.stream] = record.position

    def _check_stream_agreement(self) -> None:
        # Across *all* replicas of all groups: one position, one value.
        # Survives rewinds via the per-log position memory.
        global_values: dict[tuple[str, int], tuple[str, int]] = {}
        for name, log in self.logs.items():
            for record in log.records:
                key = (record.stream, record.position)
                remembered = log.position_values.get(key)
                if remembered is not None and remembered != record.msg_id:
                    raise self._violation(
                        f"{name}: replay diverged at {key}: value "
                        f"{record.msg_id} vs originally {remembered}",
                        msg_id=record.msg_id,
                    )
                log.position_values[key] = record.msg_id
                seen = global_values.get(key)
                if seen is None:
                    global_values[key] = (name, record.msg_id)
                elif seen[1] != record.msg_id:
                    raise self._violation(
                        f"stream agreement broken at {key}: {name} delivered "
                        f"value {record.msg_id}, {seen[0]} delivered {seen[1]}",
                        msg_id=record.msg_id,
                    )

    def _check_prefix_consistency(self) -> None:
        for group, members in self.groups.items():
            if len(members) < 2:
                continue
            sequences = {name: self.logs[name].sequence() for name in members}
            reference = max(members, key=lambda n: len(sequences[n]))
            ref_seq = sequences[reference]
            for name in members:
                if name == reference:
                    continue
                seq = sequences[name]
                if seq != ref_seq[: len(seq)]:
                    divergence = next(
                        i for i, (a, b) in enumerate(zip(seq, ref_seq))
                        if a != b
                    )
                    raise self._violation(
                        f"group {group}: {name} diverges from {reference} at "
                        f"delivery #{divergence}: "
                        f"{seq[divergence]} vs {ref_seq[divergence]}",
                        msg_id=seq[divergence][2],
                    )

    def _check_acyclic_order(self) -> None:
        """The union of the groups' total orders must be acyclic (Fig. 2).

        Each group contributes the chain of its (longest) delivery
        sequence; a cycle in the union would mean two groups deliver a
        shared pair of messages in opposite relative order.
        """
        edges: dict[int, set[int]] = {}
        for group, members in self.groups.items():
            reference = max(members, key=lambda n: len(self.logs[n].records))
            records = self.logs[reference].records
            for before, after in zip(records, records[1:]):
                edges.setdefault(before.msg_id, set()).add(after.msg_id)
        # Iterative three-colour DFS for a cycle.
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict[int, int] = {}
        for root in edges:
            if colour.get(root, WHITE) != WHITE:
                continue
            stack: list[tuple[int, Optional[object]]] = [(root, None)]
            while stack:
                node, iterator = stack.pop()
                if iterator is None:
                    if colour.get(node, WHITE) == BLACK:
                        continue
                    colour[node] = GREY
                    iterator = iter(edges.get(node, ()))
                advanced = False
                for succ in iterator:
                    state = colour.get(succ, WHITE)
                    if state == GREY:
                        raise self._violation(
                            f"acyclic order broken: delivery-order cycle "
                            f"through message {succ}",
                            msg_id=succ,
                        )
                    if state == WHITE:
                        stack.append((node, iterator))
                        stack.append((succ, None))
                        advanced = True
                        break
                if not advanced:
                    colour[node] = BLACK

    def _check_merge_points(self) -> None:
        # Fold the current merger incarnation's records into the
        # accumulator, then compare across the group's replicas.
        for name, replica in self.replicas.items():
            accumulated = self._merge_points[name]
            for request_id, point in replica.merger.stats.merge_points.items():
                prior = accumulated.get(request_id)
                if prior is not None and prior != point:
                    raise self._violation(
                        f"{name}: recovery recomputed merge point of request "
                        f"{request_id} as {point}, originally {prior}",
                        msg_id=request_id,
                    )
                accumulated[request_id] = point
        for group, members in self.groups.items():
            agreed: dict[int, tuple[str, tuple[str, int]]] = {}
            for name in members:
                for request_id, point in self._merge_points[name].items():
                    seen = agreed.get(request_id)
                    if seen is None:
                        agreed[request_id] = (name, point)
                    elif seen[1] != point:
                        raise self._violation(
                            f"group {group}: merge point of request "
                            f"{request_id} differs: {name} computed {point}, "
                            f"{seen[0]} computed {seen[1]}",
                            msg_id=request_id,
                        )

    # -- convergence (liveness; checked only at the end of a run) -------

    def assert_converged(self) -> None:
        """All replicas of each group hold identical delivery sequences
        and subscription sets (valid once the run's quiet tail has let
        recovery finish; not a safety invariant)."""
        for group, members in self.groups.items():
            reference = members[0]
            ref_seq = self.logs[reference].sequence()
            ref_sigma = self.replicas[reference].subscriptions
            for name in members[1:]:
                if self.replicas[name].subscriptions != ref_sigma:
                    raise self._violation(
                        f"group {group} did not converge: Σ({name})="
                        f"{self.replicas[name].subscriptions} vs "
                        f"Σ({reference})={ref_sigma}"
                    )
                if self.logs[name].sequence() != ref_seq:
                    raise self._violation(
                        f"group {group} did not converge: {name} delivered "
                        f"{len(self.logs[name].records)} values, {reference} "
                        f"delivered {len(ref_seq)}"
                    )

    # -- reporting ------------------------------------------------------

    def digest(self) -> str:
        """Stable hash over every replica's delivery log."""
        hasher = hashlib.sha256()
        for name in sorted(self.logs):
            hasher.update(name.encode())
            hasher.update(self.logs[name].digest().encode())
        return hasher.hexdigest()

    def report(self) -> str:
        lines = [
            f"invariant checks run : {self.checks_run}",
            "invariants           : stream-agreement, prefix-consistency, "
            "gap-free, acyclic-order, merge-points -- all OK",
        ]
        for group in sorted(self.groups):
            members = self.groups[group]
            counts = ", ".join(
                f"{name}={len(self.logs[name].records)}"
                f"{'(rewound x%d)' % self.logs[name].rewinds if self.logs[name].rewinds else ''}"
                for name in members
            )
            sigma = self.replicas[members[0]].subscriptions
            lines.append(
                f"group {group:<12}: Σ={{{', '.join(sigma)}}} delivered {counts}"
            )
        lines.append(f"delivery digest      : {self.digest()[:16]}")
        return "\n".join(lines)
