"""Executes a fault schedule against the simulated network.

:class:`FaultOrchestrator` compiles a :class:`repro.faults.schedule.Schedule`
onto the event calendar: window actions install/remove
:class:`repro.sim.network.FaultRule` overlays or partitions, point
actions crash and recover hosts.  Crash targets are resolved through
the host's actor back-reference when one exists (crashing the process,
which halts its receive loop and timers, not merely the box); recovery
honours an optional per-target hook so stateful targets -- multicast
replicas -- can be rebuilt from their latest checkpoint by the scenario
runner instead of coming back blank.

Every injected action is recorded in :attr:`events` with its virtual
time, so a run's fault timeline can be printed next to its invariant
report.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from ..sim.core import Environment
from ..sim.network import FaultRule, Network
from .schedule import (
    CrashAt,
    DelaySpike,
    DuplicateWindow,
    LossWindow,
    PartitionWindow,
    RecoverAt,
    ReorderWindow,
    Schedule,
)

__all__ = ["FaultOrchestrator"]


class FaultOrchestrator:
    """Injects the faults of a schedule at their virtual times."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        crash_hooks: Optional[Mapping[str, Callable[[], None]]] = None,
        recover_hooks: Optional[Mapping[str, Callable[[], None]]] = None,
    ):
        self.env = env
        self.network = network
        self.crash_hooks = dict(crash_hooks or {})
        self.recover_hooks = dict(recover_hooks or {})
        self.events: list[tuple[float, str]] = []
        self.executed: list[Schedule] = []

    # -- driving --------------------------------------------------------

    def execute(self, schedule: Schedule) -> None:
        """Arm every action of ``schedule`` on the event calendar."""
        self.executed.append(schedule)
        for action in schedule.actions:
            if isinstance(action, CrashAt):
                self.env.call_at(action.at, self._crash, action)
            elif isinstance(action, RecoverAt):
                self.env.call_at(action.at, self._recover, action)
            elif isinstance(action, PartitionWindow):
                self.env.call_at(action.start, self._partition_start, action)
                self.env.call_at(action.end, self._partition_end, action)
            else:   # overlay windows: loss / delay / duplicate / reorder
                rule = self._rule_for(action)
                self.env.call_at(action.start, self._rule_start, action, rule)
                self.env.call_at(action.end, self._rule_end, action, rule)

    def _note(self, text: str) -> None:
        self.events.append((self.env.now, text))
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit("fault.inject", self.env.now, action=text)

    # -- point actions --------------------------------------------------

    def _crash(self, action: CrashAt) -> None:
        hook = self.crash_hooks.get(action.target)
        if hook is not None:
            hook()
        else:
            host = self.network.host(action.target)
            if host.crashed:
                return
            target = host.actor if host.actor is not None else host
            target.crash()
        self._note(action.describe())

    def _recover(self, action: RecoverAt) -> None:
        hook = self.recover_hooks.get(action.target)
        if hook is not None:
            hook()
        else:
            host = self.network.host(action.target)
            if not host.crashed:
                return
            target = host.actor if host.actor is not None else host
            target.recover()
        self._note(action.describe())

    # -- windows --------------------------------------------------------

    def _partition_start(self, action: PartitionWindow) -> None:
        self.network.partition(set(action.side_a), set(action.side_b))
        self._note("begin " + action.describe())

    def _partition_end(self, action: PartitionWindow) -> None:
        self.network.unpartition(set(action.side_a), set(action.side_b))
        self._note("end " + action.describe())

    @staticmethod
    def _rule_for(action) -> FaultRule:
        if isinstance(action, LossWindow):
            return FaultRule(src=action.src, dst=action.dst, loss=action.loss)
        if isinstance(action, DelaySpike):
            return FaultRule(
                src=action.src, dst=action.dst,
                extra_latency=action.extra_latency,
            )
        if isinstance(action, DuplicateWindow):
            return FaultRule(
                src=action.src, dst=action.dst,
                duplicate=action.probability, reorder_spread=action.spread,
            )
        if isinstance(action, ReorderWindow):
            return FaultRule(
                src=action.src, dst=action.dst,
                reorder=action.probability, reorder_spread=action.spread,
            )
        raise TypeError(f"unknown fault action {action!r}")

    def _rule_start(self, action, rule: FaultRule) -> None:
        self.network.add_fault(rule)
        self._note("begin " + action.describe())

    def _rule_end(self, action, rule: FaultRule) -> None:
        self.network.remove_fault(rule)
        self._note("end " + action.describe())

    # -- reporting ------------------------------------------------------

    def timeline(self) -> str:
        return "\n".join(
            f"  t={at:7.3f}s  {text}" for at, text in self.events
        )
