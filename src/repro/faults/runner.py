"""Wires a fault scenario into a simulated cluster and runs it.

:class:`ScenarioRunner` assembles a
:class:`repro.harness.cluster.MulticastCluster` from a
:class:`repro.faults.scenarios.ScenarioSpec`, attaches the
:class:`repro.faults.invariants.InvariantSuite` to every replica,
starts paced workload and periodic checkpointing, arms the fault
schedule on a :class:`repro.faults.orchestrator.FaultOrchestrator`
(replica recovery goes through the latest checkpoint, exactly the
paper's crash-recovery model), and checks every safety invariant on a
timer during the run plus once at the end.

The whole run is deterministic: one ``(scenario, seed)`` pair yields a
bit-identical delivery history, reported as a digest so regressions --
and chaos-found bugs -- reproduce exactly.

Flight recording: every run keeps the most recent protocol trace events
in a bounded :class:`repro.obs.recorder.FlightRecorder` ring buffer.
When an invariant fires, the buffer is dumped to
``$REPRO_FLIGHT_DIR`` (default ``flight-recordings/``) as
``<scenario>-seed<seed>.jsonl`` -- the violation's causal history ships
with the failure -- and the exception carries the dump path in its
``dump_path`` attribute.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

from ..harness.cluster import MulticastCluster
from ..obs.recorder import FlightRecorder
from ..obs.trace import Tracer, current_tracer, installed
from ..sim.core import Interrupt
from ..storage.checkpoint import CheckpointStore
from ..storage.snapshot import structural_copy
from .invariants import InvariantSuite, InvariantViolation
from .orchestrator import FaultOrchestrator
from .scenarios import ScenarioSpec
from .schedule import Schedule

__all__ = ["ScenarioResult", "ScenarioRunner"]

FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"
DEFAULT_FLIGHT_DIR = "flight-recordings"


@dataclass
class ScenarioResult:
    """Outcome of one scenario run (invariants all held if it exists --
    a violation raises :class:`~repro.faults.invariants.InvariantViolation`
    out of :meth:`ScenarioRunner.run` instead)."""

    scenario: str
    seed: int
    duration: float
    schedule: Schedule
    delivered: dict[str, int]
    checks_run: int
    digest: str
    converged: bool
    timeline: list[tuple[float, str]] = field(default_factory=list)
    report_text: str = ""

    def report(self) -> str:
        return self.report_text


class ScenarioRunner:
    """Builds, runs and checks one fault scenario."""

    def __init__(
        self,
        spec: ScenarioSpec,
        seed: int = 1,
        flight_capacity: int = 100_000,
    ):
        self.spec = spec
        self.seed = seed
        self.schedule = spec.schedule(seed)
        # Flight recorder: ride along on an externally installed tracer
        # (e.g. the CLI's trace command), or install a private one just
        # for the cluster construction window -- the environment adopts
        # it then and keeps emitting to it for the whole run.
        self.recorder = FlightRecorder(capacity=flight_capacity)
        external = current_tracer()
        if external is not None:
            external.add_sink(self.recorder)
            self.tracer = external
            self.cluster = self._build_cluster()
        else:
            self.tracer = Tracer(sinks=[self.recorder])
            with installed(self.tracer):
                self.cluster = self._build_cluster()
        spec = self.spec
        for stream in spec.failover:
            self.cluster.directory[stream].enable_failover()
        for group, names in spec.replica_names().items():
            for name in names:
                self.cluster.add_replica(name, group, list(spec.groups[group]))
        self.suite = InvariantSuite(self.cluster.replicas)
        self.checkpoints: dict[str, CheckpointStore] = {}
        self._checkpoint_seq: dict[str, int] = {}
        for name in self.cluster.replicas:
            self.checkpoints[name] = CheckpointStore(keep=2)
            self._checkpoint_seq[name] = 0
            self._save_checkpoint(name)   # a recovery point exists from t=0
        self.orchestrator = FaultOrchestrator(
            self.cluster.env,
            self.cluster.network,
            recover_hooks={
                name: self._make_recover_hook(name)
                for name in self.cluster.replicas
            },
        )

    def _build_cluster(self) -> MulticastCluster:
        return MulticastCluster(
            streams=self.spec.streams,
            seed=self.seed,
            link_latency=self.spec.link_latency,
            lam=self.spec.lam,
            delta_t=self.spec.delta_t,
        )

    # -- flight recording -----------------------------------------------

    def dump_flight_recording(self, violation: InvariantViolation) -> str:
        """Write the ring buffer to the flight dir; returns the path."""
        directory = os.environ.get(FLIGHT_DIR_ENV, DEFAULT_FLIGHT_DIR)
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(
            directory, f"{self.spec.name}-seed{self.seed}.jsonl"
        )
        header = {
            "ts": self.cluster.env.now,
            "message": str(violation),
            "scenario": self.spec.name,
            "seed": self.seed,
        }
        if violation.msg_id is not None:
            header["msg_id"] = violation.msg_id
        self.recorder.dump(path, header=header)
        return path

    # -- checkpointing (the crash-recovery model's stable storage) ------

    def _save_checkpoint(self, name: str) -> None:
        replica = self.cluster.replicas[name]
        if replica.crashed or replica.merger.pending_subscription is not None:
            return   # retry at the next tick
        mark = self.suite.mark(name)
        self.checkpoints[name].save(
            self._checkpoint_seq[name], (replica.make_checkpoint(), mark)
        )
        self._checkpoint_seq[name] += 1

    def _make_recover_hook(self, name: str):
        def recover() -> None:
            replica = self.cluster.replicas[name]
            if not replica.crashed:
                return
            checkpoint, mark = self.checkpoints[name].latest().state
            self.suite.rewind(name, mark)
            replica.recover_from_checkpoint(structural_copy(checkpoint))

        return recover

    # -- background processes -------------------------------------------

    def _load_loop(self, stream: str, until: float):
        env = self.cluster.env
        client = self.cluster.client
        interval = 1.0 / self.spec.load_rate
        share = self.spec.load_share
        index = 0
        while env.now < until:
            client.multicast(stream, payload=(stream, index))
            index += 1
            # share is None on the legacy path: the constant interval
            # keeps pre-existing scenarios' digests byte-identical.
            delay = (
                interval if share is None
                else interval / max(share(stream, env.now), 1e-9)
            )
            try:
                yield env.timeout(delay)
            except Interrupt:
                return

    def _checkpoint_loop(self):
        env = self.cluster.env
        while True:
            try:
                yield env.timeout(self.spec.checkpoint_interval)
            except Interrupt:
                return
            for name in self.cluster.replicas:
                self._save_checkpoint(name)

    def _check_loop(self):
        env = self.cluster.env
        while True:
            try:
                yield env.timeout(self.spec.check_interval)
            except Interrupt:
                return
            self.suite.check()

    def _arm_control(self) -> None:
        env = self.cluster.env
        client = self.cluster.client
        for op in self.spec.control:
            if op.kind == "subscribe":
                env.call_at(
                    op.at, client.subscribe_msg, op.group, op.stream, op.via
                )
            elif op.kind == "prepare":
                env.call_at(
                    op.at, client.prepare_msg, op.group, op.stream, op.via
                )
            else:   # unsubscribe
                env.call_at(
                    op.at, client.unsubscribe_msg, op.group, op.stream, op.via
                )

    # -- running --------------------------------------------------------

    def run(self) -> ScenarioResult:
        spec = self.spec
        env = self.cluster.env
        load_until = (
            spec.load_until if spec.load_until is not None
            else spec.duration * 0.65
        )
        for stream in spec.streams:
            env.process(self._load_loop(stream, load_until))
        env.process(self._checkpoint_loop())
        env.process(self._check_loop())
        self._arm_control()
        self.orchestrator.execute(self.schedule)
        try:
            env.run(until=spec.duration)

            self.suite.check()
            converged = True
            if spec.expect_converged:
                self.suite.assert_converged()
            else:
                try:
                    self.suite.assert_converged()
                except AssertionError:
                    converged = False
        except InvariantViolation as violation:
            # Ship the causal history with the failure: dump the flight
            # recorder's ring buffer next to the violation and re-raise.
            violation.dump_path = self.dump_flight_recording(violation)
            raise

        delivered = {
            name: len(self.suite.logs[name].records)
            for name in sorted(self.suite.logs)
        }
        result = ScenarioResult(
            scenario=spec.name,
            seed=self.seed,
            duration=spec.duration,
            schedule=self.schedule,
            delivered=delivered,
            checks_run=self.suite.checks_run,
            digest=self.suite.digest(),
            converged=converged,
            timeline=list(self.orchestrator.events),
        )
        result.report_text = self._render_report(result)
        return result

    def _render_report(self, result: ScenarioResult) -> str:
        lines = [
            f"scenario             : {result.scenario} (seed {result.seed})",
            f"description          : {self.spec.description}",
            f"schedule             : {len(self.schedule)} fault action(s), "
            f"horizon {self.schedule.horizon:.2f}s of {result.duration:.2f}s",
        ]
        if result.timeline:
            lines.append("fault timeline       :")
            lines.extend(
                f"  t={at:7.3f}s  {text}" for at, text in result.timeline
            )
        lines.append(self.suite.report())
        lines.append(
            "converged            : "
            + ("yes (all replicas identical)" if result.converged else "NO")
        )
        return "\n".join(lines)


def run_scenario(spec: ScenarioSpec, seed: int = 1) -> ScenarioResult:
    """Convenience: build a runner and run it once."""
    return ScenarioRunner(spec, seed=seed).run()
