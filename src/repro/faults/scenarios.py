"""Named, reproducible fault scenarios.

Each :class:`ScenarioSpec` pins a cluster topology (streams, groups,
replicas), a paced workload, a script of dynamic-subscription control
operations, and a fault schedule -- either a hand-written, named
:class:`~repro.faults.schedule.Schedule` or a seeded
:class:`~repro.faults.schedule.RandomChaos` plan.  The
:class:`~repro.faults.runner.ScenarioRunner` executes a spec and checks
every safety invariant throughout.

Run them from the command line::

    python -m repro faults list
    python -m repro faults run chaos --seed 11
    python -m repro faults run coordinator-crash-at-merge
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..workload.generators import zipf_shares
from .schedule import (
    CrashAt,
    DelaySpike,
    DuplicateWindow,
    PartitionWindow,
    RandomChaos,
    RecoverAt,
    ReorderWindow,
    Schedule,
)

__all__ = ["SCENARIOS", "ControlOp", "ScenarioSpec", "get_scenario"]


@dataclass(frozen=True)
class ControlOp:
    """One scripted dynamic-subscription operation."""

    at: float
    kind: str                      # "subscribe" | "unsubscribe" | "prepare"
    group: str
    stream: str
    via: Optional[str] = None      # carrier stream (defaults per kind)

    def __post_init__(self) -> None:
        if self.kind not in ("subscribe", "unsubscribe", "prepare"):
            raise ValueError(f"unknown control op kind {self.kind!r}")
        if self.kind in ("subscribe", "prepare") and self.via is None:
            raise ValueError(f"{self.kind} needs a carrier stream (via=...)")


@dataclass
class ScenarioSpec:
    """Everything needed to reproduce one fault-injection run."""

    name: str
    description: str
    streams: tuple[str, ...]
    groups: dict[str, tuple[str, ...]]       # group -> initial subscriptions
    duration: float
    schedule: Callable[[int], Schedule]      # seed -> fault plan
    control: tuple[ControlOp, ...] = ()
    replicas_per_group: int = 2
    lam: int = 500
    delta_t: float = 0.05
    link_latency: float = 0.001
    load_rate: float = 120.0                 # messages/second per stream
    load_until: Optional[float] = None       # defaults to 65% of duration
    # Optional per-stream load multiplier ``(stream, now) -> factor``:
    # skewed-traffic scenarios (hot-shard) scale each stream's paced
    # rate over time.  None keeps the legacy fixed-interval load loop
    # byte-for-byte identical (the golden digests depend on it).
    load_share: Optional[Callable[[str, float], float]] = None
    failover: tuple[str, ...] = ()           # streams deployed with a standby
    checkpoint_interval: float = 0.25
    check_interval: float = 0.25
    expect_converged: bool = True

    def replica_names(self) -> dict[str, list[str]]:
        """Replica host names per group (``<group>/r<i>``)."""
        return {
            group: [
                f"{group}/r{i + 1}" for i in range(self.replicas_per_group)
            ]
            for group in sorted(self.groups)
        }

    def all_replicas(self) -> list[str]:
        return [name for names in self.replica_names().values() for name in names]

    def acceptors_of(self, stream: str, n: int = 3) -> tuple[str, ...]:
        return tuple(f"{stream}/a{i + 1}" for i in range(n))


def _fixed(schedule: Schedule) -> Callable[[int], Schedule]:
    """A schedule builder that ignores the seed (named schedules)."""
    return lambda _seed: schedule


# -- named scenarios ----------------------------------------------------

def _subscribe_mid_partition() -> ScenarioSpec:
    """G1 subscribes to S2 while cut off from S2's acceptors: the scan
    of the new stream stalls, then completes after the heal (§II: safety
    always, liveness after GST)."""
    replicas = ("G1/r1", "G1/r2")
    acceptors = ("S2/a1", "S2/a2", "S2/a3")
    schedule = Schedule(
        name="subscribe-mid-partition",
        actions=(
            PartitionWindow(start=0.3, end=1.3, side_a=replicas, side_b=acceptors),
        ),
    )
    return ScenarioSpec(
        name="subscribe-mid-partition",
        description="subscription issued while the group is partitioned "
                    "from the new stream's acceptors",
        streams=("S1", "S2"),
        groups={"G1": ("S1",), "G2": ("S2",)},
        duration=4.0,
        schedule=_fixed(schedule),
        control=(
            ControlOp(at=0.5, kind="subscribe", group="G1", stream="S2", via="S1"),
        ),
    )


def _coordinator_crash_at_merge() -> ScenarioSpec:
    """S2's coordinator crashes right at the merge point of a
    subscription; the standby is promoted and the subscription still
    commits with a consistent merge point on every replica."""
    schedule = Schedule(
        name="coordinator-crash-at-merge",
        actions=(CrashAt(at=0.53, target="S2/coordinator"),),
    )
    return ScenarioSpec(
        name="coordinator-crash-at-merge",
        description="coordinator of the new stream crashes at the merge "
                    "point; failover promotes the standby",
        streams=("S1", "S2"),
        groups={"G1": ("S1",), "G2": ("S2",)},
        duration=5.0,
        schedule=_fixed(schedule),
        control=(
            ControlOp(at=0.5, kind="subscribe", group="G1", stream="S2", via="S1"),
        ),
        failover=("S1", "S2"),
    )


def _learner_crash_during_prepare() -> ScenarioSpec:
    """A replica crashes while the prepare_msg hint (§V-C) has it
    recovering the new stream in the background; after recovery from
    its checkpoint it replays the hint and the later subscription
    commits identically on both replicas."""
    schedule = Schedule(
        name="learner-crash-during-prepare",
        actions=(
            CrashAt(at=0.45, target="G1/r1"),
            RecoverAt(at=0.85, target="G1/r1"),
        ),
    )
    return ScenarioSpec(
        name="learner-crash-during-prepare",
        description="replica crash during prepare_msg background recovery",
        streams=("S1", "S2"),
        groups={"G1": ("S1",), "G2": ("S2",)},
        duration=4.0,
        schedule=_fixed(schedule),
        control=(
            ControlOp(at=0.4, kind="prepare", group="G1", stream="S2", via="S1"),
            ControlOp(at=1.2, kind="subscribe", group="G1", stream="S2", via="S1"),
        ),
    )


def _duplicate_storm() -> ScenarioSpec:
    """Every message may be delivered twice while a subscription is in
    flight: instance numbers and request ids must deduplicate at every
    layer."""
    schedule = Schedule(
        name="duplicate-storm",
        actions=(
            DuplicateWindow(start=0.2, end=1.6, probability=0.4, spread=0.004),
        ),
    )
    return ScenarioSpec(
        name="duplicate-storm",
        description="40% message duplication across the whole network "
                    "through a dynamic subscription",
        streams=("S1", "S2"),
        groups={"G1": ("S1",), "G2": ("S1", "S2")},
        duration=4.0,
        schedule=_fixed(schedule),
        control=(
            ControlOp(at=0.7, kind="subscribe", group="G1", stream="S2", via="S1"),
        ),
    )


def _reorder_storm() -> ScenarioSpec:
    """Bounded reordering (messages escape the TCP FIFO by a few
    milliseconds) while a subscription is in flight: learners must
    re-sequence by instance number."""
    schedule = Schedule(
        name="reorder-storm",
        actions=(
            ReorderWindow(start=0.2, end=1.6, probability=0.3, spread=0.004),
        ),
    )
    return ScenarioSpec(
        name="reorder-storm",
        description="30% bounded message reordering across the whole "
                    "network through a dynamic subscription",
        streams=("S1", "S2"),
        groups={"G1": ("S1",), "G2": ("S1", "S2")},
        duration=4.0,
        schedule=_fixed(schedule),
        control=(
            ControlOp(at=0.7, kind="subscribe", group="G1", stream="S2", via="S1"),
        ),
    )


def _hot_shard() -> ScenarioSpec:
    """A Zipfian skew burst concentrates traffic on S1 (the hot shard's
    stream) while its acceptor links wobble; mid-storm the group
    subscribes a relief stream.  The scripted twin of the elasticity
    harness's hot-shard scenario (``repro elasticity``): here the
    reconfiguration is at a fixed time, there the closed loop decides
    it -- both must keep every invariant green."""
    shares = zipf_shares(2, 1.8)

    def load_share(stream: str, now: float) -> float:
        if not 1.0 <= now < 3.0:
            return 1.0
        if stream == "S1":
            return 2.0 * shares[0]       # ~1.55x: the hot stream
        if stream == "S2":
            return 2.0 * shares[1]       # ~0.45x: the cold one
        return 1.0

    schedule = Schedule(
        name="hot-shard",
        actions=(
            DelaySpike(
                start=1.4, end=2.6, extra_latency=0.004,
                dst=("S1/a1", "S1/a2", "S1/a3"),
            ),
        ),
    )
    return ScenarioSpec(
        name="hot-shard",
        description="Zipfian skew burst overloads S1 under a delay "
                    "spike; a relief stream is subscribed mid-storm",
        streams=("S1", "S2", "S3"),
        groups={"G1": ("S1", "S2")},
        duration=4.0,
        schedule=_fixed(schedule),
        control=(
            ControlOp(at=1.5, kind="subscribe", group="G1", stream="S3", via="S1"),
        ),
        load_share=load_share,
    )


def _chaos() -> ScenarioSpec:
    """Seeded everything-at-once adversary over a 2-group, 3-stream
    cluster: crashes with checkpoint recovery, partitions, loss, delay
    spikes, duplication and reordering, through a scripted subscribe,
    unsubscribe and a second subscribe."""
    streams = ("S1", "S2", "S3")
    groups = {"G1": ("S1", "S2"), "G2": ("S2", "S3")}
    spec = ScenarioSpec(
        name="chaos",
        description="seeded random crashes/partitions/loss/dup/reorder "
                    "over 2 groups x 3 streams with subscription churn",
        streams=streams,
        groups=groups,
        duration=5.0,
        schedule=lambda seed: _chaos_schedule(spec, seed),
        control=(
            ControlOp(at=0.6, kind="subscribe", group="G1", stream="S3", via="S1"),
            ControlOp(at=1.6, kind="unsubscribe", group="G2", stream="S3"),
            ControlOp(at=2.2, kind="subscribe", group="G2", stream="S1", via="S2"),
        ),
        load_rate=80.0,
    )
    return spec


def _chaos_schedule(spec: ScenarioSpec, seed: int) -> Schedule:
    replicas = spec.all_replicas()
    cuts = []
    for stream in spec.streams:
        acceptors = spec.acceptors_of(stream)
        for replica in replicas:
            cuts.append(((replica,), acceptors))
        cuts.append(((f"{stream}/coordinator",), acceptors))
    return RandomChaos(
        seed=seed,
        horizon=spec.duration,
        crash_targets=tuple(replicas),
        partition_cuts=tuple(cuts),
        n_crashes=2,
        n_partitions=2,
        quiet_tail=0.4,
    ).generate()


SCENARIOS: dict[str, Callable[[], ScenarioSpec]] = {
    "subscribe-mid-partition": _subscribe_mid_partition,
    "coordinator-crash-at-merge": _coordinator_crash_at_merge,
    "learner-crash-during-prepare": _learner_crash_during_prepare,
    "duplicate-storm": _duplicate_storm,
    "reorder-storm": _reorder_storm,
    "hot-shard": _hot_shard,
    "chaos": _chaos,
}


def get_scenario(name: str) -> ScenarioSpec:
    try:
        return SCENARIOS[name]()
    except KeyError:
        known = ", ".join(sorted(SCENARIOS))
        raise KeyError(f"unknown scenario {name!r} (known: {known})") from None
