"""The fault-schedule DSL: declarative, seeded, reproducible.

A :class:`Schedule` is a named, immutable list of fault actions pinned
to absolute virtual times.  Point actions (:class:`CrashAt`,
:class:`RecoverAt`) fire once; window actions
(:class:`PartitionWindow`, :class:`LossWindow`, :class:`DelaySpike`,
:class:`DuplicateWindow`, :class:`ReorderWindow`) install a fault at
``start`` and lift it at ``end``.  Schedules carry no behaviour of
their own -- :class:`repro.faults.orchestrator.FaultOrchestrator`
compiles them onto the event calendar -- so the same schedule object
can be rendered, compared and re-run bit-identically.

:class:`RandomChaos` derives a schedule from a seed: identical seed and
topology yield the identical schedule, which (on the deterministic
simulator) yields the identical run.  Failing seeds reproduce exactly;
see ``docs/FAULTS.md``.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "CrashAt",
    "DelaySpike",
    "DuplicateWindow",
    "FaultAction",
    "LossWindow",
    "PartitionWindow",
    "RandomChaos",
    "RecoverAt",
    "ReorderWindow",
    "Schedule",
]


@dataclass(frozen=True)
class CrashAt:
    """Crash ``target`` (a host/actor name) at time ``at``."""

    at: float
    target: str

    def describe(self) -> str:
        return f"crash {self.target}"


@dataclass(frozen=True)
class RecoverAt:
    """Recover ``target`` at time ``at`` (volatile state rebuilt from
    its latest checkpoint where the target supports one)."""

    at: float
    target: str

    def describe(self) -> str:
        return f"recover {self.target}"


@dataclass(frozen=True)
class PartitionWindow:
    """Cut all traffic between the two host groups during [start, end)."""

    start: float
    end: float
    side_a: tuple[str, ...]
    side_b: tuple[str, ...]

    def describe(self) -> str:
        return (
            f"partition {{{', '.join(self.side_a)}}} | "
            f"{{{', '.join(self.side_b)}}}"
        )


@dataclass(frozen=True)
class LossWindow:
    """Drop matching messages with probability ``loss`` during the window.

    ``src``/``dst`` restrict the window to directed traffic between the
    named host sets; ``None`` matches any host.
    """

    start: float
    end: float
    loss: float
    src: Optional[tuple[str, ...]] = None
    dst: Optional[tuple[str, ...]] = None

    def describe(self) -> str:
        return f"loss {self.loss:.0%} {_link_str(self.src, self.dst)}"


@dataclass(frozen=True)
class DelaySpike:
    """Add ``extra_latency`` to matching messages during the window."""

    start: float
    end: float
    extra_latency: float
    src: Optional[tuple[str, ...]] = None
    dst: Optional[tuple[str, ...]] = None

    def describe(self) -> str:
        return (
            f"delay +{self.extra_latency * 1000:.1f}ms "
            f"{_link_str(self.src, self.dst)}"
        )


@dataclass(frozen=True)
class DuplicateWindow:
    """Deliver a second copy of matching messages with ``probability``.

    Duplicates trail the original by up to ``spread`` seconds and are
    exempt from the per-link FIFO guarantee -- the protocol stack must
    deduplicate (Paxos instance numbers make every layer idempotent).
    """

    start: float
    end: float
    probability: float
    spread: float = 0.005
    src: Optional[tuple[str, ...]] = None
    dst: Optional[tuple[str, ...]] = None

    def describe(self) -> str:
        return (
            f"duplicate {self.probability:.0%} "
            f"{_link_str(self.src, self.dst)}"
        )


@dataclass(frozen=True)
class ReorderWindow:
    """Let matching messages escape FIFO by up to ``spread`` seconds
    with ``probability`` (bounded reordering)."""

    start: float
    end: float
    probability: float
    spread: float = 0.005
    src: Optional[tuple[str, ...]] = None
    dst: Optional[tuple[str, ...]] = None

    def describe(self) -> str:
        return (
            f"reorder {self.probability:.0%} (±{self.spread * 1000:.1f}ms) "
            f"{_link_str(self.src, self.dst)}"
        )


def _link_str(src, dst) -> str:
    a = ",".join(src) if src else "*"
    b = ",".join(dst) if dst else "*"
    return f"{a}->{b}"


FaultAction = Union[
    CrashAt,
    RecoverAt,
    PartitionWindow,
    LossWindow,
    DelaySpike,
    DuplicateWindow,
    ReorderWindow,
]

_POINT_ACTIONS = (CrashAt, RecoverAt)


@dataclass(frozen=True)
class Schedule:
    """A named, validated fault plan in absolute virtual time."""

    name: str
    actions: tuple[FaultAction, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "actions", tuple(self.actions))
        for action in self.actions:
            if isinstance(action, _POINT_ACTIONS):
                if action.at < 0:
                    raise ValueError(f"{action} fires before t=0")
            else:
                if action.start < 0 or action.end <= action.start:
                    raise ValueError(f"{action} has an empty or negative window")

    @property
    def horizon(self) -> float:
        """Time of the last scheduled effect (0.0 for an empty plan)."""
        times = [
            action.at if isinstance(action, _POINT_ACTIONS) else action.end
            for action in self.actions
        ]
        return max(times, default=0.0)

    def events(self) -> list[tuple[float, str]]:
        """Chronological ``(time, description)`` pairs for reporting."""
        out: list[tuple[float, str]] = []
        for action in self.actions:
            if isinstance(action, _POINT_ACTIONS):
                out.append((action.at, action.describe()))
            else:
                out.append((action.start, "begin " + action.describe()))
                out.append((action.end, "end " + action.describe()))
        return sorted(out, key=lambda pair: pair[0])

    def __len__(self) -> int:
        return len(self.actions)


class RandomChaos:
    """Seeded generator of adversarial schedules for a given topology.

    Draws crash/recover pairs over ``crash_targets``, partition windows
    over ``partition_cuts`` (candidate host-set pairs), and loss, delay,
    duplication and reordering windows over the whole network.  All
    faults land inside ``[warmup, horizon * (1 - quiet_tail)]`` so the
    run ends with a quiet period in which recovery machinery converges.

    The draw order is fixed, so one seed always produces one schedule.
    """

    def __init__(
        self,
        seed: int,
        horizon: float,
        crash_targets: tuple[str, ...] = (),
        partition_cuts: tuple[tuple[tuple[str, ...], tuple[str, ...]], ...] = (),
        n_crashes: int = 2,
        n_partitions: int = 2,
        n_loss_windows: int = 1,
        n_delay_spikes: int = 1,
        n_duplicate_windows: int = 1,
        n_reorder_windows: int = 1,
        warmup: float = 0.1,
        quiet_tail: float = 0.35,
        min_outage: float = 0.1,
        max_outage: float = 0.5,
    ):
        if horizon <= warmup:
            raise ValueError("horizon must exceed the warmup period")
        self.seed = seed
        self.horizon = horizon
        self.crash_targets = tuple(crash_targets)
        self.partition_cuts = tuple(partition_cuts)
        self.n_crashes = n_crashes if self.crash_targets else 0
        self.n_partitions = n_partitions if self.partition_cuts else 0
        self.n_loss_windows = n_loss_windows
        self.n_delay_spikes = n_delay_spikes
        self.n_duplicate_windows = n_duplicate_windows
        self.n_reorder_windows = n_reorder_windows
        self.warmup = warmup
        self.quiet_tail = quiet_tail
        self.min_outage = min_outage
        self.max_outage = max_outage

    def generate(self) -> Schedule:
        # Derive the stream the way RngRegistry does: stable across
        # processes (tuple/str hashes are per-process randomised).
        rng = random.Random(
            zlib.crc32(b"chaos") ^ (self.seed * 2654435761 % 2**32)
        )
        active_end = self.horizon * (1.0 - self.quiet_tail)
        actions: list[FaultAction] = []

        # Crash/recover pairs: per-target windows never overlap (a host
        # cannot crash while already down), tracked with a time cursor.
        cursors = {target: self.warmup for target in self.crash_targets}
        for _ in range(self.n_crashes):
            target = rng.choice(self.crash_targets)
            earliest = cursors[target]
            latest = active_end - self.min_outage
            if earliest >= latest:
                continue   # this target has no room left before the tail
            at = rng.uniform(earliest, latest)
            outage = rng.uniform(self.min_outage, self.max_outage)
            back = min(at + outage, active_end)
            actions.append(CrashAt(at=at, target=target))
            actions.append(RecoverAt(at=back, target=target))
            cursors[target] = back + 0.05

        for _ in range(self.n_partitions):
            side_a, side_b = rng.choice(self.partition_cuts)
            start = rng.uniform(self.warmup, active_end - self.min_outage)
            length = rng.uniform(self.min_outage, self.max_outage)
            actions.append(
                PartitionWindow(
                    start=start,
                    end=min(start + length, active_end),
                    side_a=tuple(side_a),
                    side_b=tuple(side_b),
                )
            )

        def window(length_lo: float, length_hi: float) -> tuple[float, float]:
            start = rng.uniform(self.warmup, active_end - length_lo)
            length = rng.uniform(length_lo, length_hi)
            return start, min(start + length, active_end)

        for _ in range(self.n_loss_windows):
            start, end = window(self.min_outage, self.max_outage)
            actions.append(
                LossWindow(start=start, end=end, loss=rng.uniform(0.05, 0.25))
            )
        for _ in range(self.n_delay_spikes):
            start, end = window(self.min_outage, self.max_outage)
            actions.append(
                DelaySpike(
                    start=start, end=end,
                    extra_latency=rng.uniform(0.002, 0.02),
                )
            )
        for _ in range(self.n_duplicate_windows):
            start, end = window(self.min_outage, self.max_outage)
            actions.append(
                DuplicateWindow(
                    start=start, end=end,
                    probability=rng.uniform(0.1, 0.5),
                    spread=rng.uniform(0.001, 0.01),
                )
            )
        for _ in range(self.n_reorder_windows):
            start, end = window(self.min_outage, self.max_outage)
            actions.append(
                ReorderWindow(
                    start=start, end=end,
                    probability=rng.uniform(0.1, 0.4),
                    spread=rng.uniform(0.001, 0.01),
                )
            )

        actions.sort(
            key=lambda a: a.at if isinstance(a, _POINT_ACTIONS) else a.start
        )
        return Schedule(name=f"chaos-{self.seed}", actions=tuple(actions))
