"""Experiment harness: deployment builder, applications, experiments."""

from .broadcast import BroadcastClient, BroadcastReplica, DeliveryAck
from .cluster import KvCluster
from .report import comparison_table, section, series_sparkline

__all__ = [
    "BroadcastClient",
    "BroadcastReplica",
    "DeliveryAck",
    "KvCluster",
    "comparison_table",
    "section",
    "series_sparkline",
]
