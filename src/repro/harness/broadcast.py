"""Atomic-broadcast application used by the Fig. 3 and Fig. 5 setups.

The paper's vertical-scalability and reconfiguration experiments run a
bare SMR service: client threads send 32 KiB values, replicas deliver
them through the (elastic) merge and acknowledge back to the client.
Throughput is measured at the replicas, attributed to the stream each
value was ordered in -- exactly the per-stream series the figures plot.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Optional

from ..multicast.replica import MulticastReplica
from ..multicast.stream import StreamDeployment
from ..net.actor import Actor
from ..net.messages import FastMessage, Message, WIRE_HEADER_BYTES
from ..paxos.messages import Propose
from ..paxos.types import AppValue
from ..sim.core import _PENDING, AnyOf, Environment, Interrupt
from ..sim.monitor import Counter, Series
from ..sim.network import Network
from ..sim.resources import Server

__all__ = ["BroadcastReplica", "BroadcastClient", "DeliveryAck"]


class DeliveryAck(FastMessage):
    """Replica -> client acknowledgement of one delivered value."""

    __slots__ = ("msg_id", "replica")
    _FIELDS = ("msg_id", "replica")

    def __init__(self, msg_id: int, replica: str):
        self.msg_id = msg_id
        self.replica = replica

    def wire_size(self) -> int:
        return WIRE_HEADER_BYTES + 16


class BroadcastReplica(MulticastReplica):
    """Delivers values, pays CPU per value, and acks the sender."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        name: str,
        group: str,
        directory: Mapping[str, StreamDeployment],
        cpu_rate: float = 2800.0,
        gap_timeout: float = 0.2,
    ):
        super().__init__(env, network, name, group, directory, gap_timeout=gap_timeout)
        self.cpu = Server(env, rate=cpu_rate, name=f"{name}:cpu")
        self.delivered_ops = Counter(env, f"{name}:delivered")
        self.per_stream_ops: dict[str, Counter] = {}

    def stream_counter(self, stream: str) -> Counter:
        counter = self.per_stream_ops.get(stream)
        if counter is None:
            counter = self.per_stream_ops[stream] = Counter(
                self.env, f"{self.name}:{stream}"
            )
        return counter

    def apply(self, value: AppValue, stream: str, position: int) -> None:
        super().apply(value, stream, position)   # tracing + delivery taps
        self.delivered_ops.record()
        self.stream_counter(stream).record()
        done = self.cpu.request(1.0)
        if value.sender:
            ack = DeliveryAck(msg_id=value.msg_id, replica=self.name)
            done.callbacks.append(lambda _e: self.send(value.sender, ack))


class BroadcastClient(Actor):
    """Closed-loop client threads pinned to one stream each.

    The paper's Fig. 3 client runs "5 threads per stream": threads for a
    stream are started when the stream is added.  A thread submits one
    value, waits for the first replica ack (with a timeout for lost
    values), records latency, optionally thinks, and repeats.
    """

    def __init__(
        self,
        env: Environment,
        network: Network,
        name: str,
        directory: Mapping[str, StreamDeployment],
        value_size: int = 32 * 1024,
        timeout: float = 2.0,
        think_time: float = 0.0,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(env, network, name)
        self.directory = directory
        self.value_size = value_size
        self.timeout = timeout
        self.think_time = think_time
        self.rng = rng or random.Random(0)

        self.ops = Counter(env, f"{name}:ops")
        self.latency = Series(env, f"{name}:latency")
        self.timeouts = 0
        self._pending: dict[int, object] = {}
        self._workers: list = []
        self._retargets: dict[str, str] = {}

    def start_threads(self, stream: str, count: int) -> None:
        """Start ``count`` closed-loop threads submitting to ``stream``."""
        if not self.running:
            self.start()
        for _ in range(count):
            self._workers.append(self.env.process(self._worker(stream)))

    def stop_threads(self) -> None:
        for worker in self._workers:
            if worker.is_alive:
                worker.interrupt("stop")
        self._workers = []

    def retarget(self, old_stream: str, new_stream: str) -> None:
        """Move all threads from one stream to another (reconfiguration:
        after the switch, clients must submit to the new stream)."""
        self._retargets[old_stream] = new_stream

    def _target_of(self, stream: str) -> str:
        retargets = self._retargets
        while stream in retargets:
            stream = retargets[stream]
        return stream

    def _worker(self, stream: str):
        # The tracer is fixed for the environment's lifetime; hoist the
        # per-attempt lookups out of the submission loop.
        env = self.env
        tracer = env.tracer
        try:
            while True:
                target = self._target_of(stream)
                started = env._now
                while True:
                    # A fresh value per attempt: coordinators order each
                    # msg_id at most once (wire-duplicate dedup), so a
                    # retry after a timeout must be a new submission --
                    # e.g. when the original was ordered below a merge
                    # point and discarded by the subscription scan.
                    value = AppValue(
                        payload=None, size=self.value_size, sender=self.name
                    )
                    done = env.event()
                    self._pending[value.msg_id] = done
                    coordinator = self.directory[target].config.coordinator
                    if tracer is not None:
                        tracer.emit(
                            "client.submit", self.env._now, client=self.name,
                            stream=target, msg_id=value.msg_id,
                            size=self.value_size,
                        )
                    self.send(coordinator, Propose(stream=target, token=value))
                    expiry = env.timeout(self.timeout)
                    yield AnyOf(env, [done, expiry])
                    if done._value is not _PENDING:   # done.triggered
                        break
                    self._pending.pop(value.msg_id, None)
                    self.timeouts += 1
                    if tracer is not None:
                        tracer.emit(
                            "client.timeout", self.env._now, client=self.name,
                            stream=target, msg_id=value.msg_id,
                        )
                    metrics = self.env.metrics
                    if metrics is not None:
                        metrics.counter(self.name, "timeouts").record()
                    target = self._target_of(target)
                self.ops.record()
                self.latency.record(env._now - started)
                if tracer is not None:
                    tracer.emit(
                        "client.ack", self.env._now, client=self.name,
                        msg_id=value.msg_id, latency=self.env._now - started,
                    )
                if self.think_time > 0:
                    yield self.env.timeout(self.think_time)
        except Interrupt:
            return

    def on_delivery_ack(self, msg: DeliveryAck, src: str) -> None:
        done = self._pending.pop(msg.msg_id, None)
        if done is not None:
            done.succeed(msg.replica)
