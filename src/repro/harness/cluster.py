"""Deployment builder: assembles simulated clusters for experiments.

:class:`KvCluster` wires the full stack -- network, registry, stream
deployments (coordinator + acceptor ring each), key/value replicas,
closed-loop clients and the re-partitioning orchestrator -- from a few
imperative calls, mirroring how the paper's experiments are deployed on
OpenStack.
"""

from __future__ import annotations

import random
from typing import Optional

from ..coordination.registry import RegistryService
from ..kvstore.client import PARTITION_MAP_KEY, KvClient
from ..kvstore.partitioning import PartitionMap
from ..kvstore.replica import KvReplica
from ..kvstore.repartition import RepartitionOrchestrator
from ..multicast.api import MulticastClient
from ..multicast.stream import StreamDeployment
from ..paxos.config import StreamConfig
from ..sim.core import Environment
from ..sim.network import LinkSpec, Network
from ..sim.rng import RngRegistry
from ..workload.generators import KeyspaceWorkload

__all__ = ["KvCluster"]


class KvCluster:
    """A complete simulated deployment under one environment."""

    def __init__(
        self,
        seed: int = 1,
        link_latency: float = 0.0005,
        link_bandwidth: Optional[float] = None,
        lam: int = 4000,
        delta_t: float = 0.100,
    ):
        self.env = Environment()
        self.rng = RngRegistry(seed)
        self.network = Network(
            self.env,
            rng=self.rng,
            default_link=LinkSpec(latency=link_latency, bandwidth=link_bandwidth),
        )
        self.registry = RegistryService(self.env, self.network)
        self.registry.start()
        self.directory: dict[str, StreamDeployment] = {}
        self.replicas: dict[str, KvReplica] = {}
        self.clients: dict[str, KvClient] = {}
        self.lam = lam
        self.delta_t = delta_t
        self._control: Optional[MulticastClient] = None
        self._orchestrator: Optional[RepartitionOrchestrator] = None

    # -- streams -----------------------------------------------------------

    def add_stream(
        self,
        name: str,
        n_acceptors: int = 3,
        recovery_instance_cost: float = 0.0,
        **config_overrides,
    ) -> StreamDeployment:
        """Deploy and start a stream (coordinator + acceptor ring)."""
        if name in self.directory:
            raise ValueError(f"stream {name!r} already deployed")
        config_overrides.setdefault("lam", self.lam)
        config_overrides.setdefault("delta_t", self.delta_t)
        config = StreamConfig(
            name=name,
            acceptors=tuple(f"{name}/a{i + 1}" for i in range(n_acceptors)),
            **config_overrides,
        )
        deployment = StreamDeployment(
            self.env,
            self.network,
            config,
            recovery_instance_cost=recovery_instance_cost,
        )
        self.directory[name] = deployment
        deployment.start()
        return deployment

    def stop_stream(self, name: str) -> None:
        self.directory[name].stop()

    # -- replicas ------------------------------------------------------------

    def add_replica(
        self,
        name: str,
        group: str,
        streams: list[str],
        partition_map: PartitionMap,
        cpu_rate: float = 5000.0,
        **replica_kwargs,
    ) -> KvReplica:
        replica = KvReplica(
            self.env,
            self.network,
            name,
            group,
            self.directory,
            partition_map,
            cpu_rate=cpu_rate,
            **replica_kwargs,
        )
        replica.bootstrap(streams)
        self.replicas[name] = replica
        return replica

    # -- clients ---------------------------------------------------------------

    def add_client(
        self,
        name: str,
        partition_map: PartitionMap,
        workload: Optional[KeyspaceWorkload] = None,
        n_threads: int = 10,
        timeout: float = 1.0,
        think_time: float = 0.0,
    ) -> KvClient:
        client = KvClient(
            self.env,
            self.network,
            name,
            self.directory,
            partition_map,
            workload or KeyspaceWorkload(),
            n_threads=n_threads,
            timeout=timeout,
            think_time=think_time,
            rng=self.rng.stream(f"client:{name}"),
        )
        client.start_workers()
        self.clients[name] = client
        return client

    # -- control plane ------------------------------------------------------------

    @property
    def control(self) -> MulticastClient:
        """A control client for subscribe/unsubscribe/prepare requests."""
        if self._control is None:
            self._control = MulticastClient(
                self.env, self.network, "control", self.directory
            )
        return self._control

    @property
    def orchestrator(self) -> RepartitionOrchestrator:
        if self._orchestrator is None:
            self._orchestrator = RepartitionOrchestrator(
                self.env, self.control, self.directory, registry=self.registry
            )
        return self._orchestrator

    def publish_map(self, partition_map: PartitionMap) -> None:
        self.registry.put_local(PARTITION_MAP_KEY, partition_map)

    # -- running --------------------------------------------------------------------

    def run(self, until: float) -> None:
        self.env.run(until=until)
