"""Deployment builder: assembles simulated clusters for experiments.

:class:`KvCluster` wires the full stack -- network, registry, stream
deployments (coordinator + acceptor ring each), key/value replicas,
closed-loop clients and the re-partitioning orchestrator -- from a few
imperative calls, mirroring how the paper's experiments are deployed on
OpenStack.

:class:`MulticastCluster` is the protocol-level subset (streams +
multicast replicas + a control client, no key/value store on top); the
integration tests and the fault-injection scenario runner
(:mod:`repro.faults`) build on it.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..coordination.registry import RegistryService
from ..kvstore.client import PARTITION_MAP_KEY, KvClient
from ..kvstore.partitioning import PartitionMap
from ..kvstore.replica import KvReplica
from ..kvstore.repartition import RepartitionOrchestrator
from ..multicast.api import MulticastClient
from ..multicast.replica import MulticastReplica
from ..multicast.stream import StreamDeployment
from ..paxos.config import StreamConfig
from ..runtime.kernel import Kernel, Transport
from ..sim.core import Environment
from ..sim.network import LinkSpec, Network
from ..sim.rng import RngRegistry
from ..workload.generators import KeyspaceWorkload

__all__ = ["KvCluster", "MulticastCluster"]


class MulticastCluster:
    """Streams, multicast replicas and a client under one environment.

    The construction boilerplate every integration test used to repeat
    (environment, network, per-stream deployments, replicas with a
    recording ``on_deliver``), packaged once.  Delivered payloads are
    recorded per replica in :attr:`delivered`.
    """

    def __init__(
        self,
        streams: tuple[str, ...] | list[str] = (),
        seed: int = 7,
        link_latency: float = 0.001,
        lam: int = 500,
        delta_t: float = 0.05,
        n_acceptors: int = 3,
        kernel: Optional[Kernel] = None,
        transport: Optional[Transport] = None,
        **config_overrides,
    ):
        # A caller may inject an alternative execution backend (e.g. the
        # live asyncio kernel + TCP transport); the deterministic
        # simulator stays the default.
        self.env: Kernel = kernel if kernel is not None else Environment()
        self.rng = RngRegistry(seed)
        self.network: Transport = (
            transport
            if transport is not None
            else Network(
                self.env, rng=self.rng, default_link=LinkSpec(latency=link_latency)
            )
        )
        self.lam = lam
        self.delta_t = delta_t
        self.n_acceptors = n_acceptors
        self._config_overrides = config_overrides
        self.directory: dict[str, StreamDeployment] = {}
        self.replicas: dict[str, MulticastReplica] = {}
        self.delivered: dict[str, list] = {}
        self._client: Optional[MulticastClient] = None
        for name in streams:
            self.add_stream(name)

    def add_stream(self, name: str, **config_overrides) -> StreamDeployment:
        """Deploy and start a stream (coordinator + acceptor ring)."""
        if name in self.directory:
            raise ValueError(f"stream {name!r} already deployed")
        overrides = dict(self._config_overrides)
        overrides.update(config_overrides)
        overrides.setdefault("lam", self.lam)
        overrides.setdefault("delta_t", self.delta_t)
        config = StreamConfig(
            name=name,
            acceptors=tuple(f"{name}/a{i + 1}" for i in range(self.n_acceptors)),
            **overrides,
        )
        deployment = StreamDeployment(self.env, self.network, config)
        self.directory[name] = deployment
        deployment.start()
        return deployment

    def add_replica(
        self,
        name: str,
        group: str,
        streams: list[str],
        on_deliver: Optional[Callable] = None,
        **replica_kwargs,
    ) -> MulticastReplica:
        """Bootstrap a replica; its deliveries land in ``delivered[name]``."""
        if name in self.replicas:
            raise ValueError(f"replica {name!r} already deployed")
        log: list = []
        self.delivered[name] = log

        def record(value, stream, position):
            log.append((value.payload, stream))
            if on_deliver is not None:
                on_deliver(value, stream, position)

        replica = MulticastReplica(
            self.env, self.network, name, group, self.directory,
            on_deliver=record, **replica_kwargs,
        )
        replica.bootstrap(list(streams))
        self.replicas[name] = replica
        return replica

    @property
    def client(self) -> MulticastClient:
        """A lazily created multicast client named ``client``."""
        if self._client is None:
            self._client = MulticastClient(
                self.env, self.network, "client", self.directory
            )
        return self._client

    def groups(self) -> dict[str, list[str]]:
        """Replica names per replication group (sorted both ways)."""
        out: dict[str, list[str]] = {}
        for name in sorted(self.replicas):
            out.setdefault(self.replicas[name].group, []).append(name)
        return out

    def payloads(self, replica: str) -> list:
        """Payloads delivered at ``replica``, in merge order."""
        return [p for p, _s in self.delivered[replica]]

    def run(self, until: float) -> None:
        self.env.run(until=until)


class KvCluster:
    """A complete simulated deployment under one environment."""

    def __init__(
        self,
        seed: int = 1,
        link_latency: float = 0.0005,
        link_bandwidth: Optional[float] = None,
        lam: int = 4000,
        delta_t: float = 0.100,
        kernel: Optional[Kernel] = None,
        transport: Optional[Transport] = None,
    ):
        self.env: Kernel = kernel if kernel is not None else Environment()
        self.rng = RngRegistry(seed)
        self.network: Transport = (
            transport
            if transport is not None
            else Network(
                self.env,
                rng=self.rng,
                default_link=LinkSpec(latency=link_latency, bandwidth=link_bandwidth),
            )
        )
        self.registry = RegistryService(self.env, self.network)
        self.registry.start()
        self.directory: dict[str, StreamDeployment] = {}
        self.replicas: dict[str, KvReplica] = {}
        self.clients: dict[str, KvClient] = {}
        self.lam = lam
        self.delta_t = delta_t
        self._control: Optional[MulticastClient] = None
        self._orchestrator: Optional[RepartitionOrchestrator] = None

    # -- streams -----------------------------------------------------------

    def add_stream(
        self,
        name: str,
        n_acceptors: int = 3,
        recovery_instance_cost: float = 0.0,
        **config_overrides,
    ) -> StreamDeployment:
        """Deploy and start a stream (coordinator + acceptor ring)."""
        if name in self.directory:
            raise ValueError(f"stream {name!r} already deployed")
        config_overrides.setdefault("lam", self.lam)
        config_overrides.setdefault("delta_t", self.delta_t)
        config = StreamConfig(
            name=name,
            acceptors=tuple(f"{name}/a{i + 1}" for i in range(n_acceptors)),
            **config_overrides,
        )
        deployment = StreamDeployment(
            self.env,
            self.network,
            config,
            recovery_instance_cost=recovery_instance_cost,
        )
        self.directory[name] = deployment
        deployment.start()
        return deployment

    def stop_stream(self, name: str) -> None:
        self.directory[name].stop()

    # -- replicas ------------------------------------------------------------

    def add_replica(
        self,
        name: str,
        group: str,
        streams: list[str],
        partition_map: PartitionMap,
        cpu_rate: float = 5000.0,
        **replica_kwargs,
    ) -> KvReplica:
        replica = KvReplica(
            self.env,
            self.network,
            name,
            group,
            self.directory,
            partition_map,
            cpu_rate=cpu_rate,
            **replica_kwargs,
        )
        replica.bootstrap(streams)
        self.replicas[name] = replica
        return replica

    # -- clients ---------------------------------------------------------------

    def add_client(
        self,
        name: str,
        partition_map: PartitionMap,
        workload: Optional[KeyspaceWorkload] = None,
        n_threads: int = 10,
        timeout: float = 1.0,
        think_time: float = 0.0,
    ) -> KvClient:
        client = KvClient(
            self.env,
            self.network,
            name,
            self.directory,
            partition_map,
            workload or KeyspaceWorkload(),
            n_threads=n_threads,
            timeout=timeout,
            think_time=think_time,
            rng=self.rng.stream(f"client:{name}"),
        )
        client.start_workers()
        self.clients[name] = client
        return client

    # -- control plane ------------------------------------------------------------

    @property
    def control(self) -> MulticastClient:
        """A control client for subscribe/unsubscribe/prepare requests."""
        if self._control is None:
            self._control = MulticastClient(
                self.env, self.network, "control", self.directory
            )
        return self._control

    @property
    def orchestrator(self) -> RepartitionOrchestrator:
        if self._orchestrator is None:
            self._orchestrator = RepartitionOrchestrator(
                self.env, self.control, self.directory, registry=self.registry
            )
        return self._orchestrator

    def publish_map(self, partition_map: PartitionMap) -> None:
        self.registry.put_local(PARTITION_MAP_KEY, partition_map)

    # -- running --------------------------------------------------------------------

    def run(self, until: float) -> None:
        self.env.run(until=until)
