"""The paper's evaluation, one module per figure/claim.

* :mod:`vertical` -- Fig. 3: dynamically adding streams (§VII-C);
* :mod:`horizontal` -- Fig. 4: splitting a key/value store shard (§VII-D);
* :mod:`reconfig` -- Fig. 5: replacing the acceptor set under load (§VII-E);
* :mod:`provisioning` -- §VI: ~60 s to add a stream from fresh VMs.
"""

from .horizontal import HorizontalConfig, HorizontalResult, run_horizontal
from .provisioning import ProvisioningConfig, ProvisioningResult, run_provisioning
from .reconfig import ReconfigConfig, ReconfigResult, run_reconfig
from .vertical import VerticalConfig, VerticalResult, run_vertical

__all__ = [
    "HorizontalConfig",
    "HorizontalResult",
    "ProvisioningConfig",
    "ProvisioningResult",
    "ReconfigConfig",
    "ReconfigResult",
    "VerticalConfig",
    "VerticalResult",
    "run_horizontal",
    "run_provisioning",
    "run_reconfig",
    "run_vertical",
]
