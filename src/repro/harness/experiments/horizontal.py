"""Figure 4 -- horizontal scalability (re-partitioning under load).

"We start the experiment with a client VM (100 threads) that sends
1024-byte put commands to random keys.  Two replica VMs apply these
commands to their local in-memory storage ...  Initially only one
partition is present ...  At 30 seconds, one of the replicas subscribes
to a new stream with additional 3 acceptors and informs the whole
system 5 seconds later about the partition change." (§VII-D)

Reported in the paper: under 75% peak load the split takes ~1 s (a
client-timeout-driven gap), per-replica throughput and CPU consumption
halve after the split, so capacity doubles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...kvstore.partitioning import Partition, PartitionMap
from ...workload.generators import KeyspaceWorkload
from ..cluster import KvCluster

__all__ = ["HorizontalConfig", "HorizontalResult", "run_horizontal"]


@dataclass
class HorizontalConfig:
    duration: float = 80.0
    split_at: float = 30.0
    inform_delay: float = 5.0           # map announced 5 s after subscribe
    n_threads: int = 100
    value_size: int = 1024
    n_keys: int = 50_000
    replica_cpu_rate: float = 3000.0    # ops/s one replica sustains (peak)
    load_fraction: float = 0.75         # "75% peak load"
    client_timeout: float = 1.0         # drives the ~1 s gap
    lam: int = 4000
    delta_t: float = 0.100
    link_latency: float = 0.0005
    seed: int = 2
    measure_interval: float = 1.0


@dataclass
class HorizontalResult:
    config: HorizontalConfig
    client_throughput: list = field(default_factory=list)       # (t, ops/s)
    replica_throughput: dict = field(default_factory=dict)      # name -> series
    replica_cpu: dict = field(default_factory=dict)             # name -> series
    map_change_time: float = 0.0
    gap_duration: float = 0.0
    timeouts: int = 0
    before_after: dict = field(default_factory=dict)


def run_horizontal(config: HorizontalConfig = HorizontalConfig()) -> HorizontalResult:
    cluster = KvCluster(
        seed=config.seed,
        link_latency=config.link_latency,
        lam=config.lam,
        delta_t=config.delta_t,
    )
    cluster.add_stream("S1")
    cluster.add_stream("S2")

    initial_map = PartitionMap(
        version=0,
        partitions=(Partition(index=0, stream="S1", replicas=("r1", "r2")),),
    )
    r1 = cluster.add_replica(
        "r1", "shard-a", ["S1"], initial_map, cpu_rate=config.replica_cpu_rate
    )
    r2 = cluster.add_replica(
        "r2", "shard-b", ["S1"], initial_map, cpu_rate=config.replica_cpu_rate
    )
    cluster.publish_map(initial_map)

    # Closed-loop load at `load_fraction` of one replica's peak:
    # threads / (latency + think) = fraction * peak.
    offered = config.load_fraction * config.replica_cpu_rate
    think_time = max(0.0, config.n_threads / offered - 0.004)
    workload = KeyspaceWorkload(
        n_keys=config.n_keys, value_size=config.value_size, put_fraction=1.0
    )
    client = cluster.add_client(
        "client",
        initial_map,
        workload,
        n_threads=config.n_threads,
        timeout=config.client_timeout,
        think_time=think_time,
    )

    split_done = {}

    def splitter():
        yield cluster.env.timeout(config.split_at)
        process = cluster.orchestrator.split(
            old_map=initial_map,
            split_index=0,
            moving_group="shard-b",
            moving_replicas=("r2",),
            new_stream="S2",
            settle_delay=config.inform_delay,
        )
        new_map = yield process
        split_done["map"] = new_map
        split_done["at"] = cluster.env.now

    cluster.env.process(splitter())
    cluster.run(until=config.duration)

    result = HorizontalResult(config=config)
    result.client_throughput = client.ops.interval_rates(
        config.measure_interval, 0.0, config.duration
    )
    for name, replica in (("r1", r1), ("r2", r2)):
        result.replica_throughput[name] = replica.applied_ops.interval_rates(
            config.measure_interval, 0.0, config.duration
        )
        result.replica_cpu[name] = replica.cpu.probe.interval_utilisation(
            config.measure_interval, 0.0, config.duration
        )
    result.map_change_time = config.split_at + config.inform_delay
    result.timeouts = client.timeouts

    # Gap: the longest run of sub-50% throughput intervals around the
    # map change (the paper reports ~1 s, caused by client timeouts).
    steady = client.ops.rate_between(0.3 * config.split_at, config.split_at)
    gap = 0.0
    for t, rate in result.client_throughput:
        if config.split_at <= t <= config.split_at + 15.0 and rate < 0.5 * steady:
            gap += config.measure_interval
    result.gap_duration = gap

    mc = result.map_change_time
    result.before_after = {
        "client_before": client.ops.rate_between(0.3 * config.split_at, config.split_at),
        "client_after": client.ops.rate_between(mc + 5.0, config.duration),
    }
    for name, replica in (("r1", r1), ("r2", r2)):
        result.before_after[f"{name}_ops_before"] = replica.applied_ops.rate_between(
            0.3 * config.split_at, config.split_at
        )
        result.before_after[f"{name}_ops_after"] = replica.applied_ops.rate_between(
            mc + 5.0, config.duration
        )
        result.before_after[f"{name}_cpu_before"] = replica.cpu.probe.utilisation_between(
            0.3 * config.split_at, config.split_at
        )
        result.before_after[f"{name}_cpu_after"] = replica.cpu.probe.utilisation_between(
            mc + 5.0, config.duration
        )
    return result
