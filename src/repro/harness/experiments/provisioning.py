"""§VI claim -- time to add a stream from freshly booted VMs.

"Adding a new stream from newly created virtual machines (three
acceptors) takes approximately 60 seconds."  This experiment boots a
Heat autoscaling group of acceptor VMs, deploys the stream once they
are ACTIVE, subscribes the replicas, and measures the time from the
scale-up request until the first value of the new stream is delivered.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...cloud.openstack import AutoScalingGroup, CloudCompute
from ...cloud.vm import DEFAULT_BOOT_TIME
from ...multicast.api import MulticastClient
from ...multicast.stream import StreamDeployment
from ...paxos.config import StreamConfig
from ...sim.core import Environment
from ...sim.network import LinkSpec, Network
from ...sim.rng import RngRegistry
from ..broadcast import BroadcastClient, BroadcastReplica

__all__ = ["ProvisioningConfig", "ProvisioningResult", "run_provisioning"]


@dataclass
class ProvisioningConfig:
    boot_time: float = DEFAULT_BOOT_TIME
    boot_jitter: float = 10.0
    acceptors_per_stream: int = 3
    lam: int = 4000
    delta_t: float = 0.100
    link_latency: float = 0.0005
    seed: int = 4
    duration: float = 120.0


@dataclass
class ProvisioningResult:
    config: ProvisioningConfig
    requested_at: float = 0.0
    vms_active_at: float = 0.0
    subscribed_at: float = 0.0
    first_delivery_at: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.first_delivery_at - self.requested_at


def run_provisioning(
    config: ProvisioningConfig = ProvisioningConfig(),
) -> ProvisioningResult:
    env = Environment()
    rng = RngRegistry(config.seed)
    network = Network(env, rng=rng, default_link=LinkSpec(latency=config.link_latency))
    compute = CloudCompute(
        env, boot_time=config.boot_time, boot_jitter=config.boot_jitter, rng=rng
    )

    directory: dict[str, StreamDeployment] = {}

    def deploy_stream(name: str) -> StreamDeployment:
        stream_config = StreamConfig(
            name=name,
            acceptors=tuple(
                f"{name}/a{j + 1}" for j in range(config.acceptors_per_stream)
            ),
            lam=config.lam,
            delta_t=config.delta_t,
        )
        deployment = StreamDeployment(env, network, stream_config)
        directory[name] = deployment
        deployment.start()
        return deployment

    # Initial stream runs on pre-existing VMs.
    for i in range(config.acceptors_per_stream):
        compute.create_server(f"S1-acc-{i}", anti_affinity_group="S1")
    deploy_stream("S1")

    replica = BroadcastReplica(env, network, "replica-1", "replicas", directory)
    replica.bootstrap(["S1"])
    control = MulticastClient(env, network, "control", directory)
    client = BroadcastClient(
        env, network, "client", directory, value_size=1024, rng=rng.stream("client")
    )
    client.start_threads("S1", 2)

    result = ProvisioningResult(config=config)

    def provision():
        yield env.timeout(5.0)
        result.requested_at = env.now
        group = AutoScalingGroup(compute, "S2-acceptors")
        vms = group.scale_up(config.acceptors_per_stream)
        yield compute.wait_active(vms)
        result.vms_active_at = env.now
        deploy_stream("S2")
        # No explicit alignment needed: the coordinator paces skips
        # against the global virtual position clock (λ·now), so the new
        # stream tops itself up to the ensemble's position on its first
        # Δt tick.
        control.subscribe_msg("replicas", "S2", via_stream="S1")
        result.subscribed_at = env.now
        client.start_threads("S2", 2)

    env.process(provision())

    # Detect the first delivery attributed to the new stream.
    def watcher():
        while True:
            yield env.timeout(0.05)
            counter = replica.per_stream_ops.get("S2")
            if counter is not None and counter.total > 0:
                result.first_delivery_at = counter._times[0]
                return

    env.process(watcher())
    env.run(until=config.duration)
    if result.first_delivery_at == 0.0:
        raise RuntimeError("new stream never delivered a value")
    return result
