"""Figure 5 -- acceptor reconfiguration under full load.

"We start the experiment with a client VM (60 threads) that sends
32 kbyte values to two replica VMs.  These two replicas subscribe to
the first stream which contains 3 acceptor VMs.  After 40 seconds, we
inform the replicas that we will add a second stream (with a
prepare_msg request).  After 45 seconds we let the replicas subscribe
to the new stream containing 3 different acceptor VMs.  Right after the
subscribe message we submit an unsubscribe message to the original
stream." (§VII-E)

Reported in the paper: reconfiguration of ~550 Mbps of traffic with no
visible overhead (the prepare hint lets replicas recover the new stream
in the background) and a 95th-percentile latency of 2.7 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...multicast.api import MulticastClient
from ...multicast.stream import StreamDeployment
from ...paxos.config import StreamConfig
from ...sim.core import Environment
from ...sim.network import LinkSpec, Network
from ...sim.rng import RngRegistry
from ..broadcast import BroadcastClient, BroadcastReplica

__all__ = ["ReconfigConfig", "ReconfigResult", "run_reconfig"]


@dataclass
class ReconfigConfig:
    duration: float = 80.0
    prepare_at: float = 40.0
    subscribe_at: float = 45.0
    n_threads: int = 60
    value_size: int = 32 * 1024
    think_time: float = 0.025          # sets the ~2100 ops/s operating point
    replica_cpu_rate: float = 4000.0
    lam: int = 4000
    delta_t: float = 0.100
    link_latency: float = 0.0004
    acceptors_per_stream: int = 3
    recovery_instance_cost: float = 0.002
    use_prepare: bool = True           # ablation: False shows the stall
    seed: int = 3
    measure_interval: float = 1.0


@dataclass
class ReconfigResult:
    config: ReconfigConfig
    throughput: list = field(default_factory=list)     # (t, ops/s) aggregate
    per_stream: dict = field(default_factory=dict)
    latency_p95_ms: float = 0.0
    throughput_mbps: float = 0.0
    min_rate_during_switch: float = 0.0
    steady_rate: float = 0.0
    overhead_ratio: float = 0.0        # 1 - min/steady during the switch
    timeouts: int = 0


def run_reconfig(config: ReconfigConfig = ReconfigConfig()) -> ReconfigResult:
    env = Environment()
    rng = RngRegistry(config.seed)
    network = Network(env, rng=rng, default_link=LinkSpec(latency=config.link_latency))

    directory: dict[str, StreamDeployment] = {}
    for name in ("S1", "S2"):
        stream_config = StreamConfig(
            name=name,
            acceptors=tuple(
                f"{name}/a{j + 1}" for j in range(config.acceptors_per_stream)
            ),
            lam=config.lam,
            delta_t=config.delta_t,
        )
        directory[name] = StreamDeployment(
            env,
            network,
            stream_config,
            recovery_instance_cost=config.recovery_instance_cost,
        )
        directory[name].start()

    replicas = []
    for index in range(2):
        replica = BroadcastReplica(
            env,
            network,
            f"replica-{index + 1}",
            "replicas",
            directory,
            cpu_rate=config.replica_cpu_rate,
        )
        replica.bootstrap(["S1"])
        replicas.append(replica)

    control = MulticastClient(env, network, "control", directory)
    client = BroadcastClient(
        env,
        network,
        "client",
        directory,
        value_size=config.value_size,
        think_time=config.think_time,
        rng=rng.stream("client"),
    )
    client.start_threads("S1", config.n_threads)

    def reconfigure():
        if config.use_prepare:
            yield env.timeout(config.prepare_at)
            control.prepare_msg("replicas", "S2", via_stream="S1")
            yield env.timeout(config.subscribe_at - config.prepare_at)
        else:
            yield env.timeout(config.subscribe_at)
        control.subscribe_msg("replicas", "S2", via_stream="S1")
        # Operators point the clients at the new stream, then retire S1.
        yield env.timeout(0.05)
        client.retarget("S1", "S2")
        yield env.timeout(0.05)
        control.unsubscribe_msg("replicas", "S1", via_stream="S1")

    env.process(reconfigure())
    env.run(until=config.duration)

    measured = replicas[0]
    result = ReconfigResult(config=config)
    result.throughput = measured.delivered_ops.interval_rates(
        config.measure_interval, 0.0, config.duration
    )
    result.per_stream = {
        stream: counter.interval_rates(config.measure_interval, 0.0, config.duration)
        for stream, counter in measured.per_stream_ops.items()
    }
    result.latency_p95_ms = client.latency.percentile(95) * 1000.0
    result.steady_rate = measured.delivered_ops.rate_between(
        0.3 * config.subscribe_at, config.subscribe_at
    )
    result.throughput_mbps = (
        result.steady_rate * config.value_size * 8 / 1_000_000
    )
    switch_rates = [
        rate
        for t, rate in result.throughput
        if config.subscribe_at - 1 <= t <= config.subscribe_at + 5
    ]
    result.min_rate_during_switch = min(switch_rates) if switch_rates else 0.0
    if result.steady_rate > 0:
        result.overhead_ratio = 1.0 - result.min_rate_during_switch / result.steady_rate
    result.timeouts = client.timeouts
    return result
