"""Figure 3 -- vertical scalability.

"We start the experiment with a client VM (5 threads per stream) that
sends 32 kbyte values to two replica VMs.  We limited the single stream
throughput to 30% not to saturate the replicas at the beginning of the
experiment.  Every 15 seconds replicas subscribe to a new stream and
immediately deliver new commands from the added stream." (§VII-C)

Reported in the paper: interval averages 735 / 1498 / 2391 / 2660 ops/s
(a 3.62x increase with four streams), a visible dip right after each
subscribe message (no ``prepare_msg`` used), and a 95th-percentile
latency of 8.3 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...multicast.stream import StreamDeployment
from ...sim.core import Environment
from ...sim.network import LinkSpec, Network
from ...sim.rng import RngRegistry
from ..broadcast import BroadcastClient, BroadcastReplica

__all__ = ["VerticalConfig", "VerticalResult", "run_vertical"]


@dataclass
class VerticalConfig:
    """Knobs of the Fig. 3 experiment; defaults follow the paper."""

    n_streams: int = 4
    add_interval: float = 15.0          # subscribe every 15 s
    duration: float = 60.0
    threads_per_stream: int = 5
    value_size: int = 32 * 1024
    # "limited the single stream throughput to 30%": per-stream value cap.
    per_stream_limit: float = 760.0
    replica_cpu_rate: float = 2820.0    # saturation => the 3.62x ceiling
    lam: int = 4000
    delta_t: float = 0.100
    link_latency: float = 0.0008
    acceptors_per_stream: int = 3
    # Recovering a stream's backlog is not free (URingPaxos scans its
    # log); this produces the post-subscribe dip the paper highlights.
    recovery_instance_cost: float = 0.002
    use_prepare: bool = False           # the paper deliberately does not
    prepare_lead: float = 5.0           # hint lead time when enabled
    seed: int = 1
    measure_interval: float = 1.0


@dataclass
class VerticalResult:
    config: VerticalConfig
    throughput: list = field(default_factory=list)        # (t, ops/s) aggregate
    per_stream: dict = field(default_factory=dict)        # stream -> [(t, ops/s)]
    interval_averages: list = field(default_factory=list)  # ops/s per phase
    latency_p95_ms: float = 0.0
    scaling_factor: float = 0.0
    subscribe_times: list = field(default_factory=list)


def run_vertical(config: VerticalConfig = VerticalConfig()) -> VerticalResult:
    """Run the Fig. 3 experiment and fold the measurements."""
    env = Environment()
    rng = RngRegistry(config.seed)
    network = Network(env, rng=rng, default_link=LinkSpec(latency=config.link_latency))

    streams = [f"S{i + 1}" for i in range(config.n_streams)]
    directory: dict[str, StreamDeployment] = {}
    for name in streams:
        from ...paxos.config import StreamConfig

        stream_config = StreamConfig(
            name=name,
            acceptors=tuple(
                f"{name}/a{j + 1}" for j in range(config.acceptors_per_stream)
            ),
            lam=config.lam,
            delta_t=config.delta_t,
            value_rate_limit=config.per_stream_limit,
        )
        directory[name] = StreamDeployment(
            env,
            network,
            stream_config,
            recovery_instance_cost=config.recovery_instance_cost,
        )
        directory[name].start()

    replicas = []
    for index in range(2):
        replica = BroadcastReplica(
            env,
            network,
            f"replica-{index + 1}",
            "replicas",
            directory,
            cpu_rate=config.replica_cpu_rate,
        )
        replica.bootstrap([streams[0]])
        replicas.append(replica)

    from ...multicast.api import MulticastClient

    control = MulticastClient(env, network, "control", directory)
    client = BroadcastClient(
        env,
        network,
        "client",
        directory,
        value_size=config.value_size,
        rng=rng.stream("client"),
    )
    client.start_threads(streams[0], config.threads_per_stream)

    subscribe_times: list[float] = []

    def scaler():
        for k in range(1, config.n_streams):
            yield env.timeout(
                config.add_interval if k > 1 else config.add_interval
            )
            new_stream = streams[k]
            if config.use_prepare:
                control.prepare_msg("replicas", new_stream, via_stream=streams[0])
                yield env.timeout(config.prepare_lead)
            control.subscribe_msg("replicas", new_stream, via_stream=streams[0])
            subscribe_times.append(env.now)
            client.start_threads(new_stream, config.threads_per_stream)

    # With prepare enabled the hint lead time shifts the schedule; keep
    # the subscribe instants at k * add_interval in both modes.
    def scaler_prepared():
        for k in range(1, config.n_streams):
            target = k * config.add_interval
            hint_at = max(0.0, target - config.prepare_lead)
            yield env.timeout(hint_at - env.now)
            control.prepare_msg("replicas", streams[k], via_stream=streams[0])
            yield env.timeout(target - env.now)
            control.subscribe_msg("replicas", streams[k], via_stream=streams[0])
            subscribe_times.append(env.now)
            client.start_threads(streams[k], config.threads_per_stream)

    env.process(scaler_prepared() if config.use_prepare else scaler())
    env.run(until=config.duration)

    measured = replicas[0]
    result = VerticalResult(config=config, subscribe_times=subscribe_times)
    result.throughput = measured.delivered_ops.interval_rates(
        config.measure_interval, 0.0, config.duration
    )
    result.per_stream = {
        stream: counter.interval_rates(config.measure_interval, 0.0, config.duration)
        for stream, counter in measured.per_stream_ops.items()
    }
    boundaries = [
        min(k * config.add_interval, config.duration)
        for k in range(config.n_streams)
    ]
    boundaries.append(config.duration)
    for start, end in zip(boundaries, boundaries[1:]):
        if end > start:
            result.interval_averages.append(
                measured.delivered_ops.rate_between(start, end)
            )
    result.latency_p95_ms = client.latency.percentile(95) * 1000.0
    if result.interval_averages[0] > 0:
        result.scaling_factor = (
            result.interval_averages[-1] / result.interval_averages[0]
        )
    return result
