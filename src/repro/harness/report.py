"""Text rendering of experiment results (the benchmark harness output).

Each reproduction benchmark prints a ``paper vs measured`` block with
the rows/series the paper reports; EXPERIMENTS.md archives the output.
"""

from __future__ import annotations

from typing import Iterable, Optional

__all__ = ["comparison_table", "plain_table", "series_sparkline", "section"]


def section(title: str) -> str:
    bar = "=" * len(title)
    return f"\n{title}\n{bar}"


def comparison_table(rows: Iterable[tuple[str, object, object]]) -> str:
    """Render ``(metric, paper, measured)`` rows as an aligned table."""
    rendered = [("metric", "paper", "measured")]
    for metric, paper, measured in rows:
        rendered.append((str(metric), _fmt(paper), _fmt(measured)))
    widths = [max(len(r[i]) for r in rendered) for i in range(3)]
    lines = []
    for index, row in enumerate(rendered):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def plain_table(header: tuple[str, ...], rows: Iterable[tuple]) -> str:
    """Render arbitrary rows under ``header`` as an aligned table."""
    rendered = [tuple(str(cell) for cell in header)]
    for row in rows:
        rendered.append(tuple(_fmt(cell) for cell in row))
    ncols = max(len(r) for r in rendered)
    widths = [
        max(len(r[i]) if i < len(r) else 0 for r in rendered)
        for i in range(ncols)
    ]
    lines = []
    for index, row in enumerate(rendered):
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)).rstrip()
        )
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:,.0f}"
        return f"{value:.2f}"
    return str(value)


_BLOCKS = " ▁▂▃▄▅▆▇█"


def series_sparkline(
    series: Iterable[tuple[float, float]],
    width: int = 60,
    maximum: Optional[float] = None,
) -> str:
    """Render a (time, value) series as a unicode sparkline."""
    values = [v for _t, v in series]
    if not values:
        return "(no data)"
    if len(values) > width:
        # Downsample by averaging buckets.  Bucket boundaries are
        # computed once as integer edges: ``edges[i] < edges[i+1]``
        # whenever len(values) > width, every sample falls in exactly
        # one bucket, and the final edge is len(values) -- so the tail
        # of the series is never silently dropped.
        n = len(values)
        edges = [i * n // width for i in range(width + 1)]
        values = [
            sum(values[edges[i]:edges[i + 1]]) / (edges[i + 1] - edges[i])
            for i in range(width)
        ]
    top = maximum if maximum is not None else max(values)
    if top <= 0:
        return _BLOCKS[0] * len(values)
    chars = []
    for value in values:
        level = int(round(value / top * (len(_BLOCKS) - 1)))
        chars.append(_BLOCKS[max(0, min(level, len(_BLOCKS) - 1))])
    return "".join(chars)
