"""The partitioned, replicated key/value store of §VI.

Built entirely on the dynamic atomic multicast layer: every shard has a
dedicated stream, multi-partition queries use a shared stream, and
re-partitioning is a sequence of subscribe / map-change / unsubscribe
steps with no service interruption.
"""

from .client import PARTITION_MAP_KEY, KvClient
from .commands import (
    CommandReply,
    DeleteCmd,
    GetCmd,
    MapChangeCmd,
    PutCmd,
    RangeCmd,
    SignalMsg,
    StateTransferReply,
    StateTransferRequest,
    TxnCmd,
    fresh_cmd_id,
)
from .partitioning import Partition, PartitionMap, partition_index_of
from .replica import KvReplica
from .repartition import RepartitionOrchestrator
from .store import InMemoryStore

__all__ = [
    "CommandReply",
    "DeleteCmd",
    "GetCmd",
    "InMemoryStore",
    "KvClient",
    "KvReplica",
    "MapChangeCmd",
    "PARTITION_MAP_KEY",
    "Partition",
    "PartitionMap",
    "PutCmd",
    "RangeCmd",
    "RepartitionOrchestrator",
    "SignalMsg",
    "StateTransferReply",
    "StateTransferRequest",
    "TxnCmd",
    "fresh_cmd_id",
    "partition_index_of",
]
