"""Key/value store client.

Runs N closed-loop worker threads (the paper's "client VM with
100 threads").  Each worker builds a command from its workload, routes
it to the responsible partition's stream (single-key ops) or to the
shared stream (ranges), and waits for the reply with a timeout.

On timeout the command is re-sent -- after a re-partitioning, commands
that reached the wrong shard were discarded there, and this retry (with
the refreshed partition map pushed by the registry watch) is what
produces the ~1 s gap in Fig. 4.  Replicas of a shard all reply; the
first reply completes the command and duplicates are dropped.
"""

from __future__ import annotations

import random
from typing import Mapping, Optional

from ..coordination.registry import RegistryClient
from ..multicast.stream import StreamDeployment
from ..net.actor import Actor
from ..paxos.messages import Propose
from ..paxos.types import AppValue
from ..metrics import Counter, Series
from ..runtime.kernel import Interrupt, Kernel, Transport
from ..workload.generators import KeyspaceWorkload
from .commands import CommandReply, DeleteCmd, GetCmd, PutCmd, RangeCmd, TxnCmd
from .partitioning import PartitionMap

__all__ = ["KvClient"]

PARTITION_MAP_KEY = "kvstore/partition-map"


class KvClient(Actor):
    """A client VM running closed-loop worker threads."""

    def __init__(
        self,
        env: Kernel,
        network: Transport,
        name: str,
        directory: Mapping[str, StreamDeployment],
        partition_map: PartitionMap,
        workload: KeyspaceWorkload,
        n_threads: int = 100,
        timeout: float = 1.0,
        think_time: float = 0.0,
        rng: Optional[random.Random] = None,
        registry_name: Optional[str] = "registry",
    ):
        super().__init__(env, network, name)
        self.directory = directory
        self.partition_map = partition_map
        self.workload = workload
        self.n_threads = n_threads
        self.timeout = timeout
        self.think_time = think_time
        self.rng = rng or random.Random(0)

        self.ops = Counter(env, f"{name}:ops")
        self.latency = Series(env, f"{name}:latency")
        self.timeouts = 0
        self.completed = 0
        self._pending: dict[int, dict] = {}
        self._workers = []
        self._running = False

        self.registry: Optional[RegistryClient] = None
        if registry_name is not None:
            self.registry = RegistryClient(self, registry_name)

    # -- lifecycle ------------------------------------------------------------

    def start_workers(self) -> None:
        """Start the receive loop, the registry watch and all threads."""
        self.start()
        self._running = True
        if self.registry is not None:
            self.registry.watch(PARTITION_MAP_KEY, self._on_map_update)
        for index in range(self.n_threads):
            self._workers.append(self.env.process(self._worker(index)))

    def stop_workers(self) -> None:
        self._running = False
        for worker in self._workers:
            if worker.is_alive:
                worker.interrupt("stop")
        self._workers = []
        self.stop()

    def _on_map_update(self, value, version) -> None:
        if value is not None:
            self.partition_map = value

    # -- command construction ----------------------------------------------------

    def _build_command(self, spec):
        kind = spec[0]
        if kind == "put":
            _k, key, size = spec
            command = PutCmd(
                key=key, value=f"v{size}", value_size=size, client=self.name
            )
            return command, self.partition_map.partition_of(key).stream, size
        if kind == "get":
            command = GetCmd(key=spec[1], client=self.name)
            return command, self.partition_map.partition_of(spec[1]).stream, 64
        if kind == "delete":
            command = DeleteCmd(key=spec[1], client=self.name)
            return command, self.partition_map.partition_of(spec[1]).stream, 64
        if kind == "range":
            command = RangeCmd(start=spec[1], end=spec[2], client=self.name)
            if self.partition_map.shared_stream is None:
                raise ValueError(
                    "range commands need a shared stream in the partition map"
                )
            return command, self.partition_map.shared_stream, 64
        if kind == "txn":
            command = TxnCmd(ops=tuple(spec[1]), client=self.name)
            return command, self._route(command), 64 + 24 * len(command.ops)
        raise ValueError(f"unknown command spec {spec!r}")

    def _involved_partitions(self, command: TxnCmd) -> set:
        return {
            self.partition_map.partition_of(key).index for key in command.keys()
        }

    def _route(self, command) -> str:
        """Re-resolve the target stream under the *current* map."""
        if isinstance(command, (PutCmd, GetCmd, DeleteCmd)):
            return self.partition_map.partition_of(command.key).stream
        if isinstance(command, TxnCmd):
            involved = self._involved_partitions(command)
            if len(involved) == 1:
                return self.partition_map.partitions[involved.pop()].stream
            if self.partition_map.shared_stream is None:
                raise ValueError(
                    "multi-partition transactions need a shared stream"
                )
            return self.partition_map.shared_stream
        return self.partition_map.shared_stream

    def _expected_partitions(self, command) -> int:
        if isinstance(command, RangeCmd):
            return self.partition_map.n_partitions
        if isinstance(command, TxnCmd):
            return len(self._involved_partitions(command))
        return 1

    # -- the closed loop -----------------------------------------------------------

    def execute(self, spec):
        """Drive one command spec to completion (retrying on timeout).

        A generator to run under ``env.process``; its return value is
        the list of partial results, one per replying partition.  This
        is also what each closed-loop worker runs per iteration, so
        direct callers get identical routing/retry/metrics behaviour.
        """
        command, stream, size = self._build_command(spec)
        started = self.env.now
        while True:
            done = self.env.event()
            self._pending[command.cmd_id] = {
                "event": done,
                "need": self._expected_partitions(command),
                "partitions": set(),
                "results": [],
            }
            coordinator = self.directory[stream].config.coordinator
            self.send(
                coordinator,
                Propose(
                    stream=stream,
                    token=AppValue(payload=command, size=size, sender=self.name),
                ),
            )
            expiry = self.env.timeout(self.timeout)
            yield self.env.any_of([done, expiry])
            if done.triggered:
                break
            # Timed out: drop the stale wait, re-route under the
            # (possibly updated) partition map and resend.
            self._pending.pop(command.cmd_id, None)
            self.timeouts += 1
            stream = self._route(command)
        self.completed += 1
        self.ops.record()
        self.latency.record(self.env.now - started)
        return done.value

    def _worker(self, index: int):
        try:
            while self._running:
                spec = self.workload.next_command(self.rng)
                yield from self.execute(spec)
                if self.think_time > 0:
                    yield self.env.timeout(self.think_time)
        except Interrupt:
            return

    # -- replies ------------------------------------------------------------------

    def on_command_reply(self, msg: CommandReply, src: str) -> None:
        entry = self._pending.get(msg.cmd_id)
        if entry is None:
            return   # duplicate (other replica) or post-timeout straggler
        if msg.partition in entry["partitions"]:
            return   # the shard's other replica answered already
        entry["partitions"].add(msg.partition)
        entry["results"].append(msg.result)
        if len(entry["partitions"]) >= entry["need"]:
            del self._pending[msg.cmd_id]
            entry["event"].succeed(entry["results"])

    def dispatch(self, payload, src):
        if self.registry is not None and self.registry.handle_registry_message(payload):
            return
        super().dispatch(payload, src)
