"""Commands and replies of the partitioned key/value store (§VI).

Commands travel as the payload of multicast values; replies and
cross-partition signals are plain point-to-point messages from replicas
to clients / peer replicas.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..net.messages import Message, WIRE_HEADER_BYTES

__all__ = [
    "CommandReply",
    "DeleteCmd",
    "GetCmd",
    "MapChangeCmd",
    "PutCmd",
    "RangeCmd",
    "SignalMsg",
    "fresh_cmd_id",
]

_cmd_ids = itertools.count(1)


def fresh_cmd_id() -> int:
    return next(_cmd_ids)


@dataclass(frozen=True)
class PutCmd:
    """Write ``key``; ``value_size`` models the payload (1024 B in Fig. 4)."""

    key: str
    value: Any
    value_size: int
    client: str
    cmd_id: int = field(default_factory=fresh_cmd_id)


@dataclass(frozen=True)
class GetCmd:
    key: str
    client: str
    cmd_id: int = field(default_factory=fresh_cmd_id)


@dataclass(frozen=True)
class DeleteCmd:
    key: str
    client: str
    cmd_id: int = field(default_factory=fresh_cmd_id)


@dataclass(frozen=True)
class RangeCmd:
    """Consistent multi-partition query: all keys in [start, end)."""

    start: str
    end: str
    client: str
    cmd_id: int = field(default_factory=fresh_cmd_id)


@dataclass(frozen=True)
class TxnCmd:
    """A one-shot (Calvin-style) multi-key transaction.

    ``ops`` is a tuple of ``(key, op, arg)`` with op one of:

    * ``"put"``  -- write ``arg``;
    * ``"add"``  -- numeric increment by ``arg`` (0 if absent);
    * ``"read"`` -- return the current value.

    Every involved partition delivers the command at the same merged
    position, applies the ops on the keys it owns, exchanges execution
    signals with the other involved partitions, and returns its partial
    results -- atomic and linearizable across shards without locks or
    two-phase commit, because the atomic multicast already ordered it
    against every conflicting command.
    """

    ops: tuple   # ((key, op, arg), ...)
    client: str
    cmd_id: int = field(default_factory=fresh_cmd_id)

    def keys(self) -> tuple:
        return tuple(key for key, _op, _arg in self.ops)


@dataclass(frozen=True)
class MapChangeCmd:
    """Installs a new partition map; ordered like any other command so
    every replica switches at the same point in the merged order."""

    new_map: Any   # a PartitionMap
    cmd_id: int = field(default_factory=fresh_cmd_id)


@dataclass(frozen=True)
class CommandReply(Message):
    """Replica -> client response."""

    cmd_id: int
    ok: bool
    result: Any
    partition: int
    replica: str

    def wire_size(self) -> int:
        result_size = len(self.result) * 24 if isinstance(self.result, (list, tuple)) else 16
        return WIRE_HEADER_BYTES + 16 + result_size


@dataclass(frozen=True)
class SignalMsg(Message):
    """Replica -> replica execution signal for multi-partition commands
    (the "direct signal messages" of §VI, after S-SMR)."""

    cmd_id: int
    partition: int
    replica: str


@dataclass(frozen=True)
class StateTransferRequest(Message):
    """Replica -> replica: send me the rows I own under map ``version``
    that your shard handed off when installing that map."""

    version: int
    requester: str


@dataclass(frozen=True)
class StateTransferReply(Message):
    """The handed-off rows that now belong to the requester's shard."""

    version: int
    rows: tuple   # tuple of (key, value)

    def wire_size(self) -> int:
        return WIRE_HEADER_BYTES + 8 + 48 * len(self.rows)
