"""Hash partitioning and the partition map.

"Every replica belongs to one hash-partitioned shard of the whole state
and every partition has a dedicated Paxos stream to order commands"
(§VI).  The partition of a key is ``crc32(key) % n_partitions``, so
growing the map from one to two partitions moves roughly half the keys
-- the split of Fig. 4.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Optional

__all__ = ["Partition", "PartitionMap", "partition_index_of"]


def partition_index_of(key: str, n_partitions: int) -> int:
    """Deterministic hash partition of ``key``."""
    if n_partitions < 1:
        raise ValueError("need at least one partition")
    return zlib.crc32(key.encode("utf-8")) % n_partitions


@dataclass(frozen=True)
class Partition:
    """One shard: its index, ordering stream, and replica set."""

    index: int
    stream: str
    replicas: tuple[str, ...]


@dataclass(frozen=True)
class PartitionMap:
    """A versioned snapshot of the sharding layout.

    ``shared_stream`` (when set) is the stream all replicas subscribe
    to, used for multi-partition commands such as getrange.
    """

    version: int
    partitions: tuple[Partition, ...]
    shared_stream: Optional[str] = None

    def __post_init__(self):
        indices = [p.index for p in self.partitions]
        if indices != list(range(len(self.partitions))):
            raise ValueError(
                f"partition indices must be 0..n-1 in order, got {indices}"
            )

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    def partition_of(self, key: str) -> Partition:
        return self.partitions[partition_index_of(key, self.n_partitions)]

    def partition_of_replica(self, replica: str) -> Optional[Partition]:
        for partition in self.partitions:
            if replica in partition.replicas:
                return partition
        return None

    def owns(self, replica: str, key: str) -> bool:
        """Does ``replica`` serve the shard that ``key`` hashes to?"""
        return replica in self.partition_of(key).replicas
