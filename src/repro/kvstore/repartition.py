"""Re-partitioning orchestration (the Fig. 4 split).

The split of one shard into two follows the paper's timeline:

1. the moving replica's group subscribes to the new stream
   (``subscribe_msg`` ordered in both the new and the old stream);
2. after a settling delay, the new partition map is (a) multicast as a
   :class:`~repro.kvstore.commands.MapChangeCmd` in the *old* stream --
   every replica still subscribes to it, so all of them switch at the
   same point of the merged order -- and (b) published to the registry
   so clients re-route;
3. the moving group then unsubscribes from the old stream.

A merge (scale-in) runs the inverse: the absorbing group subscribes to
the doomed partition's stream, the map change removes the partition,
and the doomed stream is unsubscribed.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..coordination.registry import RegistryService
from ..multicast.api import MulticastClient
from ..multicast.stream import StreamDeployment
from ..paxos.messages import Propose
from ..paxos.types import AppValue
from ..runtime.kernel import Kernel
from .client import PARTITION_MAP_KEY
from .commands import MapChangeCmd
from .partitioning import Partition, PartitionMap

__all__ = ["RepartitionOrchestrator"]


class RepartitionOrchestrator:
    """Drives shard splits and merges through the multicast layer."""

    def __init__(
        self,
        env: Kernel,
        control_client: MulticastClient,
        directory: Mapping[str, StreamDeployment],
        registry: Optional[RegistryService] = None,
    ):
        self.env = env
        self.client = control_client
        self.directory = directory
        self.registry = registry

    def _multicast_map_change(
        self, via_streams: list[str], new_map: PartitionMap
    ) -> None:
        """Order the map change in every stream (replicas dedup by
        version)."""
        for stream in via_streams:
            command = MapChangeCmd(new_map=new_map)
            self.client.send(
                self.directory[stream].config.coordinator,
                Propose(stream=stream, token=AppValue(payload=command, size=256)),
            )

    def _publish_map(self, new_map: PartitionMap) -> None:
        if self.registry is not None:
            self.registry.put_local(PARTITION_MAP_KEY, new_map)

    def split(
        self,
        old_map: PartitionMap,
        split_index: int,
        moving_group: str,
        moving_replicas: tuple[str, ...],
        new_stream: str,
        settle_delay: float = 5.0,
        prepare: bool = False,
        unsubscribe_delay: float = 0.2,
        notify_delay: float = 0.5,
    ):
        """Split partition ``split_index``; returns a process whose value
        is the new :class:`PartitionMap`.

        ``moving_replicas`` (members of ``moving_group``) leave the old
        shard and become the replica set of the new partition, ordered
        by ``new_stream``.

        ``notify_delay`` models the lag between replicas installing the
        new map and clients hearing about it through the registry
        (ZooKeeper in the paper); commands mis-routed in that window are
        discarded at the replicas and resent by the clients after their
        timeout -- the ~1 s re-partitioning gap of Fig. 4.
        """
        old_partition = old_map.partitions[split_index]
        remaining = tuple(
            r for r in old_partition.replicas if r not in moving_replicas
        )
        if not remaining:
            raise ValueError("split would leave the old partition empty")
        new_partitions = list(old_map.partitions)
        new_partitions[split_index] = Partition(
            index=split_index, stream=old_partition.stream, replicas=remaining
        )
        new_partitions.append(
            Partition(
                index=len(new_partitions),
                stream=new_stream,
                replicas=tuple(moving_replicas),
            )
        )
        new_map = PartitionMap(
            version=old_map.version + 1,
            partitions=tuple(new_partitions),
            shared_stream=old_map.shared_stream,
        )

        def run():
            if prepare:
                self.client.prepare_msg(
                    moving_group, new_stream, via_stream=old_partition.stream
                )
                yield self.env.timeout(settle_delay / 2)
            self.client.subscribe_msg(
                moving_group, new_stream, via_stream=old_partition.stream
            )
            yield self.env.timeout(settle_delay)
            self._multicast_map_change([old_partition.stream], new_map)
            # Give the map change time to be ordered before the moving
            # group stops listening to the old stream.
            yield self.env.timeout(unsubscribe_delay)
            self.client.unsubscribe_msg(
                moving_group, old_partition.stream, via_stream=old_partition.stream
            )
            yield self.env.timeout(max(0.0, notify_delay - unsubscribe_delay))
            self._publish_map(new_map)
            return new_map

        return self.env.process(run())

    def merge(
        self,
        old_map: PartitionMap,
        doomed_index: int,
        into_index: int,
        absorbing_group: str,
        settle_delay: float = 5.0,
    ):
        """Merge partition ``doomed_index`` into ``into_index``.

        The absorbing group subscribes to the doomed partition's stream
        (replaying its history from the merge point on), the map change
        routes the doomed shard's keys to the absorbing partition, and
        the doomed stream is unsubscribed.  Returns a process whose
        value is the new map.

        The absorbing replicas only see the doomed stream's commands
        from the merge point on, so the doomed shard's existing rows
        move via the replica-to-replica state-transfer protocol: on
        installing the new map the doomed replicas hand their rows off
        and the absorbing replicas fetch them (see
        :meth:`KvReplica._apply_map_change`).
        """
        if doomed_index == into_index:
            raise ValueError("cannot merge a partition into itself")
        doomed = old_map.partitions[doomed_index]
        absorbing = old_map.partitions[into_index]
        survivors = [
            p for p in old_map.partitions if p.index not in (doomed_index,)
        ]
        reindexed = []
        for new_index, partition in enumerate(survivors):
            reindexed.append(
                Partition(
                    index=new_index,
                    stream=partition.stream,
                    replicas=partition.replicas,
                )
            )
        new_map = PartitionMap(
            version=old_map.version + 1,
            partitions=tuple(reindexed),
            shared_stream=old_map.shared_stream,
        )

        def run():
            self.client.subscribe_msg(
                absorbing_group, doomed.stream, via_stream=absorbing.stream
            )
            yield self.env.timeout(settle_delay)
            # Both streams carry the map change: the doomed shard's
            # replicas are not subscribed to the absorbing stream.
            self._multicast_map_change([absorbing.stream, doomed.stream], new_map)
            self._publish_map(new_map)
            yield self.env.timeout(0.5)
            self.client.unsubscribe_msg(
                absorbing_group, doomed.stream, via_stream=doomed.stream
            )
            return new_map

        return self.env.process(run())
