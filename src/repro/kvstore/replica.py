"""Key/value store replica.

A :class:`KvReplica` is a :class:`~repro.multicast.replica.MulticastReplica`
whose application is the partitioned store of §VI:

* single-partition commands (put/get) are applied if and only if this
  replica's shard owns the key under the *current* partition map --
  commands that reach the wrong shard after a split are discarded and
  the client retries after a timeout (§VII-D);
* multi-partition commands (getrange) execute against the local shard
  at their merge position and the reply is withheld until an execution
  signal from every other partition arrives (the S-SMR-style "direct
  signal messages" of §VI), so the response is consistent across shards;
* ``MapChangeCmd`` installs a new partition map at a deterministic
  point of the merged order and drops the keys this shard no longer
  owns.

Execution cost is modelled by a per-replica CPU server; its utilisation
is what Fig. 4's CPU panel plots.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..multicast.replica import MulticastReplica
from ..multicast.stream import StreamDeployment
from ..paxos.types import AppValue
from ..metrics import Counter
from ..runtime.kernel import Kernel, Transport
from ..runtime.resources import Server
from .commands import (
    CommandReply,
    DeleteCmd,
    GetCmd,
    MapChangeCmd,
    PutCmd,
    RangeCmd,
    SignalMsg,
    StateTransferReply,
    StateTransferRequest,
    TxnCmd,
)
from .partitioning import PartitionMap
from .store import InMemoryStore

__all__ = ["KvReplica"]


class KvReplica(MulticastReplica):
    """One replica of one shard of the key/value store."""

    def __init__(
        self,
        env: Kernel,
        network: Transport,
        name: str,
        group: str,
        directory: Mapping[str, StreamDeployment],
        partition_map: PartitionMap,
        cpu_rate: float = 5000.0,
        put_cost: float = 1.0,
        get_cost: float = 1.0,
        range_cost_per_key: float = 0.05,
        gap_timeout: float = 0.2,
    ):
        super().__init__(env, network, name, group, directory, gap_timeout=gap_timeout)
        self.store = InMemoryStore()
        self.partition_map = partition_map
        self.cpu = Server(env, rate=cpu_rate, name=f"{name}:cpu")
        self.put_cost = put_cost
        self.get_cost = get_cost
        self.range_cost_per_key = range_cost_per_key

        self.executed = 0
        self.applied_ops = Counter(env, f"{name}:applied")
        self.discarded_misdirected = 0
        # Multi-partition commands awaiting peer signals:
        # cmd_id -> {"result":..., "client":..., "waiting": set of partitions}
        self._pending_ranges: dict[int, dict] = {}
        # Signals that raced ahead of the command's local delivery.
        self._early_signals: dict[int, set[int]] = {}
        # Rows handed off at each map version (for state transfer) and
        # transfer requests that arrived before we installed that map.
        self._handoff: dict[int, tuple] = {}
        self._waiting_transfers: dict[int, list[str]] = {}

    # -- checkpointing ---------------------------------------------------------

    def snapshot_state(self):
        return {
            "rows": {key: self.store.get(key) for key in self.store.keys()},
            "map": self.partition_map,
        }

    def restore_state(self, state) -> None:
        self.store = InMemoryStore()
        for key, value in state["rows"].items():
            self.store.put(key, value)
        self.partition_map = state["map"]
        # In-flight multi-partition coordination died with the crash;
        # clients re-drive those commands after their timeout.
        self._pending_ranges = {}
        self._early_signals = {}

    # -- identity under the current map -------------------------------------

    @property
    def partition_index(self) -> Optional[int]:
        partition = self.partition_map.partition_of_replica(self.name)
        return partition.index if partition else None

    # -- command execution --------------------------------------------------------

    def apply(self, value: AppValue, stream: str, position: int) -> None:
        super().apply(value, stream, position)   # tracing + delivery taps
        command = value.payload
        if isinstance(command, PutCmd):
            self._apply_put(command)
        elif isinstance(command, GetCmd):
            self._apply_get(command)
        elif isinstance(command, DeleteCmd):
            self._apply_delete(command)
        elif isinstance(command, RangeCmd):
            self._apply_range(command)
        elif isinstance(command, TxnCmd):
            self._apply_txn(command)
        elif isinstance(command, MapChangeCmd):
            self._apply_map_change(command)
        else:
            raise TypeError(f"{self.name}: unknown command {command!r}")

    def _apply_put(self, cmd: PutCmd) -> None:
        if not self.partition_map.owns(self.name, cmd.key):
            self.discarded_misdirected += 1
            return
        self.store.put(cmd.key, cmd.value)
        self._finish(cmd.client, cmd.cmd_id, True, "stored", cost=self.put_cost)

    def _apply_get(self, cmd: GetCmd) -> None:
        if not self.partition_map.owns(self.name, cmd.key):
            self.discarded_misdirected += 1
            return
        result = self.store.get(cmd.key)
        self._finish(cmd.client, cmd.cmd_id, True, result, cost=self.get_cost)

    def _apply_delete(self, cmd: DeleteCmd) -> None:
        if not self.partition_map.owns(self.name, cmd.key):
            self.discarded_misdirected += 1
            return
        existed = self.store.delete(cmd.key)
        self._finish(cmd.client, cmd.cmd_id, True, existed, cost=self.put_cost)

    def _apply_range(self, cmd: RangeCmd) -> None:
        # Snapshot the local shard's slice at the merge position: this
        # is the linearization point of the multi-partition query.
        rows = self.store.get_range(cmd.start, cmd.end)
        my_partition = self.partition_map.partition_of_replica(self.name)
        if my_partition is None:
            self.discarded_misdirected += 1
            return
        others = [
            p for p in self.partition_map.partitions if p.index != my_partition.index
        ]
        for partition in others:
            for replica in partition.replicas:
                self.send(
                    replica,
                    SignalMsg(
                        cmd_id=cmd.cmd_id,
                        partition=my_partition.index,
                        replica=self.name,
                    ),
                )
        waiting = {p.index for p in others}
        waiting -= self._early_signals.pop(cmd.cmd_id, set())
        cost = self.get_cost + self.range_cost_per_key * len(rows)
        if not waiting:
            self._finish(cmd.client, cmd.cmd_id, True, rows, cost=cost)
            return
        self._pending_ranges[cmd.cmd_id] = {
            "client": cmd.client,
            "result": rows,
            "waiting": waiting,
            "cost": cost,
        }

    def _apply_txn(self, cmd: TxnCmd) -> None:
        """Execute the one-shot transaction's ops on the owned keys.

        The command was delivered at the same merged position at every
        involved partition (shared stream, or the single owning
        partition's stream), so applying the owned subset here and
        waiting for the peers' execution signals yields an atomic,
        linearizable multi-key operation.
        """
        my_partition = self.partition_map.partition_of_replica(self.name)
        if my_partition is None:
            self.discarded_misdirected += 1
            return
        involved = {
            self.partition_map.partition_of(key).index for key in cmd.keys()
        }
        if my_partition.index not in involved:
            return   # delivered via the shared stream but not our keys
        results = {}
        writes = 0
        for key, op, arg in cmd.ops:
            if not self.partition_map.owns(self.name, key):
                continue
            if op == "put":
                self.store.put(key, arg)
                writes += 1
            elif op == "add":
                current = self.store.get(key) or 0
                self.store.put(key, current + arg)
                results[key] = current + arg
                writes += 1
            elif op == "read":
                results[key] = self.store.get(key)
            else:
                raise ValueError(f"unknown txn op {op!r}")
        others = involved - {my_partition.index}
        for index in others:
            for replica in self.partition_map.partitions[index].replicas:
                self.send(
                    replica,
                    SignalMsg(
                        cmd_id=cmd.cmd_id,
                        partition=my_partition.index,
                        replica=self.name,
                    ),
                )
        waiting = set(others)
        waiting -= self._early_signals.pop(cmd.cmd_id, set())
        cost = self.put_cost * max(1, writes)
        if not waiting:
            self._finish(cmd.client, cmd.cmd_id, True, results, cost=cost)
            return
        self._pending_ranges[cmd.cmd_id] = {
            "client": cmd.client,
            "result": results,
            "waiting": waiting,
            "cost": cost,
        }

    def on_signal_msg(self, msg: SignalMsg, src: str) -> None:
        pending = self._pending_ranges.get(msg.cmd_id)
        if pending is None:
            # The signal outran our own delivery of the command.
            self._early_signals.setdefault(msg.cmd_id, set()).add(msg.partition)
            return
        pending["waiting"].discard(msg.partition)
        if not pending["waiting"]:
            del self._pending_ranges[msg.cmd_id]
            self._finish(
                pending["client"],
                msg.cmd_id,
                True,
                pending["result"],
                cost=pending["cost"],
            )

    def _apply_map_change(self, cmd: MapChangeCmd) -> None:
        new_map: PartitionMap = cmd.new_map
        if new_map.version <= self.partition_map.version:
            return   # duplicate copy delivered via another stream
        old_map = self.partition_map
        self.partition_map = new_map

        # Hand off the rows this shard no longer owns: they are kept,
        # keyed by map version, so a gaining shard can fetch them
        # (URingPaxos's checkpoint/state-transfer path).
        handed_off = []

        def keep(key: str) -> bool:
            if new_map.owns(self.name, key):
                return True
            handed_off.append((key, self.store.get(key)))
            return False

        self.store.retain_only(keep)
        self._handoff[new_map.version] = tuple(handed_off)
        for requester in self._waiting_transfers.pop(new_map.version, []):
            self._answer_transfer(requester, new_map.version)

        # Request rows this shard gained from the shards that held them.
        # A replica that belonged to the shedding shard already has the
        # data (the Fig. 4 split), so only foreign old shards are asked.
        if new_map.partition_of_replica(self.name) is not None:
            for old_partition in old_map.partitions:
                if self.name not in old_partition.replicas:
                    self.send(
                        old_partition.replicas[0],
                        StateTransferRequest(
                            version=new_map.version, requester=self.name
                        ),
                    )

    def on_state_transfer_request(self, msg: StateTransferRequest, src: str) -> None:
        if msg.version not in self._handoff:
            # We have not installed that map yet: answer once we do.
            self._waiting_transfers.setdefault(msg.version, []).append(
                msg.requester
            )
            return
        self._answer_transfer(msg.requester, msg.version)

    def _answer_transfer(self, requester: str, version: int) -> None:
        rows = tuple(
            (key, value)
            for key, value in self._handoff.get(version, ())
        )
        self.send(requester, StateTransferReply(version=version, rows=rows))

    def on_state_transfer_reply(self, msg: StateTransferReply, src: str) -> None:
        if msg.version != self.partition_map.version:
            return   # stale transfer for a superseded map
        for key, value in msg.rows:
            if not self.partition_map.owns(self.name, key):
                continue
            if key not in self.store:
                # A write ordered after the map change beats the
                # transferred snapshot; only fill absent keys.
                self.store.put(key, value)

    def _finish(self, client: str, cmd_id: int, ok: bool, result, cost: float) -> None:
        """Charge the CPU, then reply to the client."""
        self.executed += 1
        self.applied_ops.record()
        partition = self.partition_index
        done = self.cpu.request(cost)
        reply = CommandReply(
            cmd_id=cmd_id,
            ok=ok,
            result=result,
            partition=partition if partition is not None else -1,
            replica=self.name,
        )
        done.callbacks.append(lambda _e: self.send(client, reply))
