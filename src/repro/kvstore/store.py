"""In-memory sorted key/value store.

Replicas "execute the commands to their in-memory data store" (§VI).
Keys are kept in sorted order so that ``getrange`` scans an interval in
O(log n + k).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Optional

__all__ = ["InMemoryStore"]


class InMemoryStore:
    """A sorted in-memory map supporting point and range operations."""

    def __init__(self):
        self._data: dict[str, Any] = {}
        self._sorted_keys: list[str] = []

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def put(self, key: str, value: Any) -> None:
        if key not in self._data:
            bisect.insort(self._sorted_keys, key)
        self._data[key] = value

    def get(self, key: str) -> Optional[Any]:
        return self._data.get(key)

    def delete(self, key: str) -> bool:
        """Remove ``key``; returns whether it existed."""
        if key not in self._data:
            return False
        del self._data[key]
        index = bisect.bisect_left(self._sorted_keys, key)
        del self._sorted_keys[index]
        return True

    def get_range(self, start: str, end: str) -> list[tuple[str, Any]]:
        """All ``(key, value)`` with ``start <= key < end``, sorted."""
        if end < start:
            raise ValueError(f"empty interval: end {end!r} < start {start!r}")
        lo = bisect.bisect_left(self._sorted_keys, start)
        hi = bisect.bisect_left(self._sorted_keys, end)
        return [(k, self._data[k]) for k in self._sorted_keys[lo:hi]]

    def keys(self) -> Iterator[str]:
        return iter(self._sorted_keys)

    def retain_only(self, predicate) -> int:
        """Drop every key for which ``predicate(key)`` is False.

        Used after a re-partitioning: a replica discards the keys that
        now belong to another shard.  Returns the number dropped.
        """
        doomed = [k for k in self._sorted_keys if not predicate(k)]
        for key in doomed:
            del self._data[key]
        if doomed:
            self._sorted_keys = [k for k in self._sorted_keys if k in self._data]
        return len(doomed)
