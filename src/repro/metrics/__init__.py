"""Measurement analysis: shape checks for the reproduced figures."""

from ..sim.monitor import Counter, Series, UtilisationProbe, percentile
from .analysis import (
    dip_and_recovery,
    flat_through,
    is_monotonic_increasing,
    relative_error,
    step_ratios,
)

__all__ = [
    "Counter",
    "Series",
    "UtilisationProbe",
    "dip_and_recovery",
    "flat_through",
    "is_monotonic_increasing",
    "percentile",
    "relative_error",
    "step_ratios",
]
