"""Analysis helpers for comparing measured series against the paper.

The reproduction does not target absolute numbers (the substrate is a
simulator, not SWITCHengines); these helpers quantify the *shape*
properties the paper's figures establish: scaling steps, dips and
recoveries, halvings, and flat lines through a reconfiguration.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "relative_error",
    "is_monotonic_increasing",
    "dip_and_recovery",
    "flat_through",
    "step_ratios",
]


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / reference (reference must be nonzero)."""
    if reference == 0:
        raise ValueError("reference must be nonzero")
    return abs(measured - reference) / abs(reference)


def is_monotonic_increasing(values: Sequence[float], tolerance: float = 0.0) -> bool:
    """True if each value is >= the previous (within ``tolerance``
    relative slack)."""
    return all(
        b >= a * (1.0 - tolerance) for a, b in zip(values, values[1:])
    )


def step_ratios(values: Sequence[float]) -> list[float]:
    """Ratio of each value to the first (the figure-3 scaling factors)."""
    if not values:
        raise ValueError("no values")
    if values[0] == 0:
        raise ValueError("first value is zero")
    return [v / values[0] for v in values]


def dip_and_recovery(
    series: Iterable[tuple[float, float]],
    event_time: float,
    window: float,
    baseline: float,
) -> tuple[float, float]:
    """Quantify a dip after ``event_time``.

    Returns ``(depth, recovery_seconds)``: depth is the minimum rate in
    the window as a fraction of ``baseline`` (0 = full stall), and
    recovery is how long after the event the series first returns to
    90% of baseline.
    """
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    in_window = [
        (t, v) for t, v in series if event_time <= t <= event_time + window
    ]
    if not in_window:
        raise ValueError("no samples in the event window")
    depth = min(v for _t, v in in_window) / baseline
    recovery = window
    dipped = False
    for t, v in in_window:
        if v < 0.9 * baseline:
            dipped = True
        elif dipped:
            recovery = t - event_time
            break
    else:
        if not dipped:
            recovery = 0.0
    return depth, recovery


def flat_through(
    series: Iterable[tuple[float, float]],
    start: float,
    end: float,
    baseline: float,
    max_drop: float = 0.15,
) -> bool:
    """True if the series never drops more than ``max_drop`` below
    ``baseline`` over [start, end] -- the Fig. 5 "no overhead" check."""
    if baseline <= 0:
        raise ValueError("baseline must be positive")
    window = [v for t, v in series if start <= t <= end]
    if not window:
        raise ValueError("no samples in the window")
    return min(window) >= baseline * (1.0 - max_drop)
