"""Atomic multicast on composed Paxos streams, with dynamic subscriptions.

This package is the paper's contribution:

* :class:`StreamDeployment` / :class:`TokenLog` -- one stream = one
  Multi-Paxos sequence, viewed by replicas as a position-indexed token
  sequence (:mod:`repro.multicast.stream`);
* :class:`StaticMerger` -- the fixed-subscription deterministic merge
  of Multi-Ring Paxos (:mod:`repro.multicast.merge`);
* :class:`ElasticMerger` -- Algorithm 1: the dMerge with dynamic
  subscribe/unsubscribe (:mod:`repro.multicast.elastic`);
* :class:`MulticastReplica` -- learner tasks + dMerge on one host
  (:mod:`repro.multicast.replica`);
* :class:`MulticastClient` -- ``multicast``, ``subscribe_msg``,
  ``unsubscribe_msg``, ``prepare_msg`` (:mod:`repro.multicast.api`).
"""

from .api import MulticastClient
from .elastic import ElasticMerger, MergerStats
from .merge import StaticMerger, StreamCursor
from .replica import MulticastReplica
from .stream import StreamDeployment, TokenLog
from .trim import TrimCoordinator

__all__ = [
    "ElasticMerger",
    "MergerStats",
    "MulticastClient",
    "MulticastReplica",
    "StaticMerger",
    "StreamCursor",
    "StreamDeployment",
    "TokenLog",
    "TrimCoordinator",
]
