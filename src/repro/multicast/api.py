"""The dynamic atomic multicast interface (§III-A and §IV-B).

The paper's abstraction has four client-facing primitives:

* ``multicast(S, m)`` -- submit message ``m`` to stream ``S``;
* ``deliver(m)`` -- replicas receive messages (see
  :class:`repro.multicast.replica.MulticastReplica`);
* ``subscribe_msg(G, S)`` / ``unsubscribe_msg(G, S)`` -- the dynamic
  subscription extension Elastic Paxos introduces.

:class:`MulticastClient` implements the submission side as an actor:
it resolves the coordinator of a stream through the stream directory
and sends :class:`repro.paxos.messages.Propose` messages over the
network, so client-to-coordinator latency is part of every measurement.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..net.actor import Actor
from ..paxos.messages import Propose
from ..paxos.types import (
    AppValue,
    PrepareMsg,
    SubscribeMsg,
    UnsubscribeMsg,
    fresh_value_id,
)
from ..runtime.kernel import Kernel, Transport
from .stream import StreamDeployment

__all__ = ["MulticastClient"]


class MulticastClient(Actor):
    """Submits application and control messages to streams."""

    def __init__(
        self,
        env: Kernel,
        network: Transport,
        name: str,
        directory: Mapping[str, StreamDeployment],
    ):
        super().__init__(env, network, name)
        self.directory = directory

    def _coordinator_of(self, stream: str) -> str:
        try:
            deployment = self.directory[stream]
        except KeyError:
            raise KeyError(f"unknown stream {stream!r}") from None
        return deployment.config.coordinator

    # -- application messages -------------------------------------------------

    def multicast(self, stream: str, payload, size: int = 128) -> AppValue:
        """Multicast ``payload`` to ``stream``; returns the value whose
        ``msg_id`` replies can be matched against."""
        value = AppValue(payload=payload, size=size, sender=self.name)
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "client.submit", self.env.now, client=self.name,
                stream=stream, msg_id=value.msg_id, size=size,
            )
        self.send(self._coordinator_of(stream), Propose(stream=stream, token=value))
        return value

    # -- dynamic subscriptions (§IV-B) -------------------------------------------

    def subscribe_msg(self, group: str, new_stream: str, via_stream: str) -> int:
        """Subscribe ``group`` to ``new_stream``.

        The request is atomically multicast to *both* the new stream and
        ``via_stream`` (a stream the group currently subscribes to);
        the two copies share a request id, which is how the dMerge
        matches them to compute the merge point.
        """
        if new_stream == via_stream:
            raise ValueError("new stream and via stream must differ")
        request_id = fresh_value_id()
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "control.subscribe", self.env.now, client=self.name,
                group=group, stream=new_stream, via=via_stream,
                request_id=request_id,
            )
        for stream in (via_stream, new_stream):
            message = SubscribeMsg(
                group=group, stream=new_stream, request_id=request_id
            )
            self.send(
                self._coordinator_of(stream),
                Propose(stream=stream, token=message),
            )
        return request_id

    def unsubscribe_msg(
        self, group: str, stream: str, via_stream: Optional[str] = None
    ) -> int:
        """Unsubscribe ``group`` from ``stream``.

        A single copy ordered in any subscribed stream suffices (a total
        order over the group's streams already exists); by default it is
        ordered in the stream being unsubscribed.
        """
        request_id = fresh_value_id()
        carrier = via_stream if via_stream is not None else stream
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "control.unsubscribe", self.env.now, client=self.name,
                group=group, stream=stream, via=carrier,
                request_id=request_id,
            )
        message = UnsubscribeMsg(group=group, stream=stream, request_id=request_id)
        self.send(
            self._coordinator_of(carrier),
            Propose(stream=carrier, token=message),
        )
        return request_id

    def prepare_msg(self, group: str, new_stream: str, via_stream: str) -> int:
        """Send the §V-C hint: replicas of ``group`` should start
        recovering ``new_stream`` in the background."""
        request_id = fresh_value_id()
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit(
                "control.prepare", self.env.now, client=self.name,
                group=group, stream=new_stream, via=via_stream,
                request_id=request_id,
            )
        message = PrepareMsg(group=group, stream=new_stream, request_id=request_id)
        self.send(
            self._coordinator_of(via_stream),
            Propose(stream=via_stream, token=message),
        )
        return request_id
