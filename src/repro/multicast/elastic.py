"""Elastic Paxos deterministic merge (Algorithm 1 of the paper).

:class:`ElasticMerger` is the dMerge task that runs at every replica.
It merges the streams in Σ (the replica's current subscriptions) by
strict round-robin over stream *positions*, delivering application
values and consuming skip/control tokens silently, and it handles the
three dynamic-subscription control messages:

``subscribe_msg(G, S_N)``
    Atomically multicast to *both* the new stream ``S_N`` and one
    currently subscribed stream.  When the merger consumes the request
    from a subscribed stream it (1) spawns a learner for ``S_N`` (if a
    ``prepare_msg`` did not already), (2) scans ``S_N`` -- recovering
    its history -- until it finds the same request, (3) computes the
    merge point as ``max`` over the positions at which the request was
    seen and the current cursors of the other subscribed streams, then
    (4) lets the old streams deliver up to the merge point, discards
    everything in ``S_N`` before it, and finally adds ``S_N`` to Σ.
    Because the merge point is a deterministic function of the token
    sequences, every replica of ``G`` computes the same one, which is
    what makes delivery acyclic (Fig. 2 of the paper).

``unsubscribe_msg(G, S)``
    Ordered in *any* subscribed stream (the total order over Σ already
    exists); consuming it removes ``S`` from Σ on the spot.

``prepare_msg(G, S_N)`` (optimization, §V-C)
    A hint: start a background learner for ``S_N`` now so that the
    scan in step (2) finds everything already recovered and the
    subscription causes no delivery stall (used by the paper's
    reconfiguration experiment, Fig. 5).

Determinism notes (choices Algorithm 1 leaves open, pinned here):

* Σ is kept sorted by stream name and round-robin restarts from
  ``first(Σ)`` after a subscription commits -- this reproduces the
  delivery orders shown in Fig. 2 for both groups.
* While the merger waits for the subscribe request to appear in the
  new stream, delivery from the old streams is suspended (exactly the
  Algorithm 1 behaviour whose cost Fig. 3 shows and whose remedy is
  ``prepare_msg``).
* Subscribe requests consumed while another subscription is still in
  progress are deferred (FIFO) and handled right after it commits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..paxos.types import (
    AppValue,
    PrepareMsg,
    SkipToken,
    SubscribeMsg,
    Token,
    UnsubscribeMsg,
)
from .merge import StreamCursor
from .stream import TokenLog

__all__ = ["ElasticMerger", "MergerStats"]

_SCANNING = "scanning"
_ALIGNING = "aligning"


@dataclass
class _PendingSubscription:
    """In-flight subscribe handling state."""

    stream: str
    request_id: int
    phase: str = _SCANNING
    merge_ptr: int = -1
    started_at: float = 0.0


@dataclass
class MergerStats:
    """Counters exposed for tests and experiment instrumentation."""

    delivered: int = 0
    discarded: int = 0                  # tokens of a new stream before merge point
    subscriptions: int = 0
    unsubscriptions: int = 0
    per_stream_delivered: dict = field(default_factory=dict)
    # request_id -> (stream, merge point) per committed subscription.
    # Every replica of a group must compute the same merge point for the
    # same request (Fig. 2); the fault-injection invariant checkers
    # compare these across replicas.
    merge_points: dict = field(default_factory=dict)


class ElasticMerger:
    """The dMerge task of one replica in replication group ``group``.

    Parameters
    ----------
    group:
        Replication group this replica belongs to; control messages of
        other groups are consumed silently.
    deliver:
        ``deliver(value, stream, position)`` called in merge order.
    stream_provider:
        ``stream_provider(stream_name) -> TokenLog`` -- invoked when the
        merger needs a stream it has no learner for (subscribe without
        prepare, or the prepare hint itself).  The provider must create
        the learner, start recovery, and arrange for
        :meth:`notify` to be called as tokens arrive.
    stream_releaser:
        ``stream_releaser(stream_name)`` -- invoked after an
        unsubscription so the deployment can stop the learner.
    on_subscription_change:
        Optional callback ``(kind, stream)`` with kind ``"subscribe"``
        or ``"unsubscribe"``, fired when Σ changes (the key/value store
        uses it to switch partitions).
    """

    def __init__(
        self,
        group: str,
        deliver: Callable[[AppValue, str, int], None],
        stream_provider: Callable[[str], TokenLog],
        stream_releaser: Optional[Callable[[str], None]] = None,
        on_subscription_change: Optional[Callable[[str, str], None]] = None,
        now: Callable[[], float] = lambda: 0.0,
        owner: str = "",
        env=None,
    ):
        self.group = group
        self.deliver = deliver
        self.stream_provider = stream_provider
        self.stream_releaser = stream_releaser or (lambda name: None)
        self.on_subscription_change = on_subscription_change or (lambda k, s: None)
        self.now = now
        # Trace identity: the replica hosting this merger, and the
        # environment whose tracer subscription switches are reported to
        # (None keeps the merger fully standalone, as in the unit tests).
        self.owner = owner or f"merger:{group}"
        self.env = env
        # The merger runs standalone in unit tests (env=None); when
        # simulated, env.tracer is fixed, so pre-gate the probe here.
        self._tracer = env.tracer if env is not None else None
        self._metrics = getattr(env, "metrics", None) if env is not None else None
        # Head-of-line tracking for latency attribution: which stream
        # the round-robin turn is blocked on, since when.  Only when a
        # tracer or metrics are installed -- untraced runs skip it all.
        self._hol_track = self._tracer is not None or self._metrics is not None
        self._blocked_since: Optional[tuple[str, float]] = None

        self.sigma: list[str] = []
        self._cursors: dict[str, StreamCursor] = {}
        self._rr = 0
        self._pending: Optional[_PendingSubscription] = None
        self._deferred: list[SubscribeMsg] = []
        self._handled_requests: set[int] = set()
        self._pumping = False
        self.stats = MergerStats()

    def _emit(self, kind: str, **fields) -> None:
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                kind, self.env.now, replica=self.owner, group=self.group,
                **fields,
            )

    def _note_unblocked(self) -> None:
        """The round-robin turn just produced a token after having been
        blocked: emit the head-of-line episode the latency budget blames
        ``merge_wait`` on (docs/OBSERVABILITY.md)."""
        blocked = self._blocked_since
        self._blocked_since = None
        if blocked is None:
            return
        stream, since = blocked
        waited = self.now() - since
        if waited <= 0.0:
            return
        self._emit("merge.head_of_line", stream=stream, waited=waited)
        if self._metrics is not None:
            self._metrics.histogram(self.owner, "merge_hol_wait_ms").record(
                1000.0 * waited
            )

    # -- setup -------------------------------------------------------------

    def bootstrap(
        self,
        streams: dict[str, TokenLog],
        positions: Optional[dict[str, int]] = None,
        next_stream: Optional[str] = None,
    ) -> None:
        """Install the initial subscriptions (the default stream(s)).

        ``positions`` presets the merge cursors and ``next_stream`` the
        round-robin turn -- used when a replica recovers from a
        checkpoint and resumes mid-stream.  Restoring the turn matters:
        a checkpoint can be cut mid-cycle (one cursor already advanced,
        the next stream's position still undecided), and restarting
        round-robin from first(Σ) would replay the suffix in a
        different interleaving than the pre-crash replica delivered.
        """
        if self.sigma:
            raise RuntimeError("merger already bootstrapped")
        if not streams:
            raise ValueError("need at least one initial stream")
        for name, log in streams.items():
            cursor = StreamCursor(name, log)
            if positions is not None and name in positions:
                cursor.position = positions[name]
            self._cursors[name] = cursor
            self.stats.per_stream_delivered[name] = 0
        self.sigma = sorted(streams)
        if next_stream is not None:
            self._rr = self.sigma.index(next_stream)

    @property
    def next_stream(self) -> Optional[str]:
        """The stream whose turn the round-robin is at (None pre-bootstrap)."""
        return self.sigma[self._rr] if self.sigma else None

    @property
    def subscriptions(self) -> tuple[str, ...]:
        return tuple(self.sigma)

    @property
    def pending_subscription(self) -> Optional[str]:
        return self._pending.stream if self._pending else None

    def positions(self) -> dict[str, int]:
        return {name: self._cursors[name].position for name in self._cursors}

    # -- driving -------------------------------------------------------------

    def notify(self, stream: str = "") -> None:
        """Tokens were appended to a stream's log: resume merging."""
        self.pump()

    def pump(self) -> None:
        if self._pumping:
            return
        self._pumping = True
        try:
            while self._step():
                pass
        finally:
            self._pumping = False

    # -- the merge step ---------------------------------------------------------

    def _step(self) -> bool:
        if self._pending is not None:
            if self._pending.phase == _SCANNING:
                return self._scan_step()
            return self._align_step()
        if not self.sigma:
            return False
        stream = self.sigma[self._rr]
        cursor = self._cursors[stream]
        token = cursor.peek()
        if token is None:
            if self._hol_track and self._blocked_since is None:
                self._blocked_since = (stream, self.now())
            return False
        if self._blocked_since is not None:
            self._note_unblocked()
        self._rr = (self._rr + 1) % len(self.sigma)
        self._consume(stream, cursor, token, deliver=True)
        return True

    def _consume(
        self, stream: str, cursor: StreamCursor, token: Token, deliver: bool
    ) -> None:
        """Consume one position of ``token`` at ``cursor``."""
        if isinstance(token, SkipToken):
            if len(self.sigma) == 1 and self._pending is None:
                cursor.position = cursor.token_end(token)
            else:
                cursor.position += 1
            return
        cursor.position += 1
        if isinstance(token, AppValue):
            if deliver:
                self.stats.delivered += 1
                self.stats.per_stream_delivered[stream] = (
                    self.stats.per_stream_delivered.get(stream, 0) + 1
                )
                self.deliver(token, stream, cursor.position - 1)
            return
        if isinstance(token, SubscribeMsg):
            self._handle_subscribe(token)
            return
        if isinstance(token, UnsubscribeMsg):
            self._handle_unsubscribe(token)
            return
        if isinstance(token, PrepareMsg):
            self._handle_prepare(token)
            return

    # -- subscribe ------------------------------------------------------------

    def _handle_subscribe(self, msg: SubscribeMsg) -> None:
        if msg.group != self.group:
            return
        if msg.stream in self.sigma or msg.request_id in self._handled_requests:
            return
        self._handled_requests.add(msg.request_id)
        if self._pending is not None:
            self._deferred.append(msg)
            return
        self._begin_subscription(msg)

    def _begin_subscription(self, msg: SubscribeMsg) -> None:
        if msg.stream not in self._cursors:
            log = self.stream_provider(msg.stream)
            self._cursors[msg.stream] = StreamCursor(msg.stream, log)
        self._pending = _PendingSubscription(
            stream=msg.stream, request_id=msg.request_id, started_at=self.now()
        )
        self._emit(
            "merge.subscribe.begin", stream=msg.stream,
            request_id=msg.request_id,
        )

    def _scan_step(self) -> bool:
        """Walk the new stream token-by-token until the subscribe request
        is found (Algorithm 1, lines 17-18).  Everything before it is
        discarded -- it predates this group's subscription."""
        pending = self._pending
        cursor = self._cursors[pending.stream]
        token = cursor.peek()
        if token is None:
            return False   # still recovering; notify() resumes the scan
        if (
            isinstance(token, SubscribeMsg)
            and token.request_id == pending.request_id
        ):
            cursor.position += 1
            # Merge point: max over the request's position in the new
            # stream (cursor now) and every subscribed stream's cursor
            # (the carrier stream consumed the request already, so its
            # cursor is its request position + 1).
            pending.merge_ptr = max(
                [cursor.position]
                + [self._cursors[s].position for s in self.sigma]
            )
            pending.phase = _ALIGNING
            return True
        # Discard: jump whole tokens (skips included) -- nothing before
        # the request is delivered to this group.
        self.stats.discarded += 1
        cursor.position = cursor.token_end(token)
        return True

    def _align_step(self) -> bool:
        """Deliver old streams up to the merge point, discard the new
        stream up to it, then commit the subscription (lines 19-28).

        Old streams advance in strict round-robin, one position per
        turn, streams already at the merge point parked -- consumption
        order must be a function of the token sequences alone, never of
        message arrival timing, or two replicas of the group (or two
        groups sharing these streams) could interleave differently.
        The new stream's backlog is discarded greedily: nothing from it
        is delivered, so its pace cannot affect the delivered order.
        """
        pending = self._pending
        merge_ptr = pending.merge_ptr

        # Greedily discard the new stream's pre-merge-point backlog.
        new_progress = False
        new_cursor = self._cursors[pending.stream]
        while new_cursor.position < merge_ptr:
            token = new_cursor.peek()
            if token is None:
                break
            if isinstance(token, SkipToken):
                new_cursor.position = min(new_cursor.token_end(token), merge_ptr)
            else:
                new_cursor.position += 1
                self.stats.discarded += 1
            new_progress = True

        # Strict round-robin over the old streams, parking aligned ones.
        old_progress = False
        behind = [s for s in self.sigma if self._cursors[s].position < merge_ptr]
        if behind:
            for _ in range(len(self.sigma)):
                stream = self.sigma[self._rr]
                cursor = self._cursors[stream]
                if cursor.position >= merge_ptr:
                    self._rr = (self._rr + 1) % len(self.sigma)
                    continue   # parked: skip its turn without consuming
                token = cursor.peek()
                if token is not None:
                    self._rr = (self._rr + 1) % len(self.sigma)
                    self._consume(stream, cursor, token, deliver=True)
                    old_progress = True
                break   # blocked (or consumed one position): end the turn

        if self._pending is not pending:
            # An unsubscription consumed during alignment may have
            # changed Σ; the loop re-evaluates on the next step.
            return True
        aligned = all(
            self._cursors[s].position >= merge_ptr for s in self.sigma
        ) and new_cursor.position >= merge_ptr
        if aligned:
            self._commit_subscription()
            return True
        return new_progress or old_progress

    def _commit_subscription(self) -> None:
        pending = self._pending
        self._pending = None
        self.sigma = sorted(self.sigma + [pending.stream])
        self.stats.merge_points[pending.request_id] = (
            pending.stream, pending.merge_ptr
        )
        self.stats.per_stream_delivered.setdefault(pending.stream, 0)
        self._rr = 0   # restart from first(Σ), Algorithm 1 line 28
        self.stats.subscriptions += 1
        self._emit(
            "merge.subscribe.commit", stream=pending.stream,
            request_id=pending.request_id, merge_point=pending.merge_ptr,
            waited=self.now() - pending.started_at,
        )
        self.on_subscription_change("subscribe", pending.stream)
        if self._deferred:
            self._begin_subscription(self._deferred.pop(0))

    # -- unsubscribe -------------------------------------------------------------

    def _handle_unsubscribe(self, msg: UnsubscribeMsg) -> None:
        if msg.group != self.group or msg.stream not in self.sigma:
            return
        index = self.sigma.index(msg.stream)
        self.sigma.remove(msg.stream)
        if not self.sigma:
            raise RuntimeError(
                f"group {self.group} unsubscribed from its last stream"
            )
        # Keep round-robin continuity: streams after the removed one
        # shift left by one.
        if index < self._rr:
            self._rr -= 1
        self._rr %= len(self.sigma)
        del self._cursors[msg.stream]
        self.stats.unsubscriptions += 1
        self._emit(
            "merge.unsubscribe", stream=msg.stream, request_id=msg.request_id
        )
        self.stream_releaser(msg.stream)
        self.on_subscription_change("unsubscribe", msg.stream)

    # -- prepare hint ---------------------------------------------------------------

    def _handle_prepare(self, msg: PrepareMsg) -> None:
        if msg.group != self.group:
            return
        if msg.stream in self._cursors or msg.stream in self.sigma:
            return
        self._emit(
            "merge.prepare", stream=msg.stream, request_id=msg.request_id
        )
        log = self.stream_provider(msg.stream)
        self._cursors[msg.stream] = StreamCursor(msg.stream, log)
