"""Static deterministic merge (Multi-Ring Paxos).

This is the merger Elastic Paxos replaces: the set of streams is fixed
at construction and never changes.  Kept as (a) the baseline the paper
improves on and (b) the simplest statement of the round-robin delivery
rule that :mod:`repro.multicast.elastic` extends.

The merger consumes one stream *position* per round-robin turn.  Values
are delivered; skip tokens and control messages are consumed silently.
Because every stream is topped up to the virtual rate λ with skip
tokens (:mod:`repro.paxos.skip`), delivery never stalls on an idle
stream.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..paxos.types import AppValue, SkipToken, Token
from .stream import TokenLog

__all__ = ["StaticMerger", "StreamCursor"]


class StreamCursor:
    """A replica's read position in one stream's token log."""

    __slots__ = (
        "name", "log", "position", "index_hint",
        "_cache_token", "_cache_start", "_cache_end",
    )

    def __init__(self, name: str, log: Optional[TokenLog] = None):
        self.name = name
        self.log = log if log is not None else TokenLog()
        self.position = self.log.base      # next position to consume
        self.index_hint = 0                # token index cache for O(1) lookup
        # Last peeked token with its [start, end) position range.  The
        # log is append-only and never rebased once it holds tokens, so
        # a cached triple stays valid forever; re-peeking inside a wide
        # token (a multi-position skip) hits the cache instead of
        # re-running ``token_covering``.
        self._cache_token: Optional[Token] = None
        self._cache_start = 0
        self._cache_end = 0

    def peek(self) -> Optional[Token]:
        """Token at the current position, or None if not yet decided."""
        pos = self.position
        if self._cache_start <= pos < self._cache_end:
            return self._cache_token
        log = self.log
        if pos < log._base:
            # The log was rebased after this cursor was created (the
            # acceptors trimmed their prefix); positions below the base
            # are unknowable and, for a fresh subscriber, discarded.
            self.position = pos = log.base
        token, index = log.token_covering(pos, self.index_hint)
        self.index_hint = index
        if token is not None:
            start = log.start_of(index)
            self._cache_token = token
            self._cache_start = start
            self._cache_end = start + token.positions()
        return token

    def token_end(self, token: Token) -> int:
        """End position (exclusive) of the token under the cursor."""
        return self.log.start_of(self.index_hint) + token.positions()


class StaticMerger:
    """Deterministic round-robin merge over a fixed set of streams."""

    def __init__(
        self,
        streams: dict[str, TokenLog],
        deliver: Callable[[AppValue, str, int], None],
    ):
        if not streams:
            raise ValueError("a merger needs at least one stream")
        self._cursors = {
            name: StreamCursor(name, log) for name, log in streams.items()
        }
        self.sigma: list[str] = sorted(streams)
        self.deliver = deliver
        self._rr = 0
        self._pumping = False
        self.delivered_per_stream = {name: 0 for name in streams}

    @property
    def positions(self) -> dict[str, int]:
        return {name: c.position for name, c in self._cursors.items()}

    def notify(self, stream: str = "") -> None:
        """New tokens are available; drain as far as possible."""
        self.pump()

    def pump(self) -> None:
        if self._pumping:
            return
        self._pumping = True
        try:
            while self._step():
                pass
        finally:
            self._pumping = False

    def _step(self) -> bool:
        """Consume one position from the current stream; False if blocked."""
        stream = self.sigma[self._rr]
        cursor = self._cursors[stream]
        token = cursor.peek()
        if token is None:
            return False
        if isinstance(token, AppValue):
            self.delivered_per_stream[stream] += 1
            self.deliver(token, stream, cursor.position)
            cursor.position += 1
        elif isinstance(token, SkipToken) and len(self.sigma) == 1:
            # Sole stream: jumping the whole skip preserves the
            # delivered sequence and costs one step instead of `count`.
            cursor.position = cursor.token_end(token)
        else:
            cursor.position += 1   # skip/control token: silently consumed
        self._rr = (self._rr + 1) % len(self.sigma)
        return True
