"""A multicast replica: learner tasks + dMerge on one host.

:class:`MulticastReplica` is the process the paper's Figure 1 calls a
*Replica*: it hosts one learner task per subscribed stream, a token log
per stream, and the dMerge (:class:`repro.multicast.elastic.ElasticMerger`)
that turns the streams into a single acyclic delivery order.  The
application (e.g. the key/value store) receives delivered values
through ``on_deliver`` or by subclassing.
"""

from __future__ import annotations

from typing import Callable, Mapping, Optional

from ..net.actor import Actor
from ..paxos.learner import LearnerCore
from ..paxos.messages import Decision, RecoverReply
from ..paxos.types import AppValue, Batch
from ..runtime.kernel import Kernel, Transport
from .elastic import ElasticMerger
from .stream import StreamDeployment, TokenLog

__all__ = ["MulticastReplica"]


class MulticastReplica(Actor):
    """A replica of replication group ``group``.

    Parameters
    ----------
    directory:
        Maps stream names to their :class:`StreamDeployment`; the
        replica uses it to register as a learner and to spawn learner
        tasks for newly subscribed streams (the role ZooKeeper plays in
        URingPaxos).
    on_deliver:
        ``on_deliver(value, stream, position)`` invoked in merge order.
        Subclasses may instead override :meth:`apply`.
    """

    def __init__(
        self,
        env: Kernel,
        network: Transport,
        name: str,
        group: str,
        directory: Mapping[str, StreamDeployment],
        on_deliver: Optional[Callable[[AppValue, str, int], None]] = None,
        gap_timeout: float = 0.2,
    ):
        super().__init__(env, network, name)
        self.group = group
        self.directory = directory
        self._on_deliver = on_deliver
        # Fixed at environment construction; cached for the hot probes.
        self._tracer = env.tracer
        self._metrics = env.metrics
        self._observers: list[Callable[[AppValue, str, int], None]] = []
        self.learners: dict[str, LearnerCore] = {}
        self.logs: dict[str, TokenLog] = {}
        self.merger = ElasticMerger(
            group=group,
            deliver=self.apply,
            stream_provider=self._provide_stream,
            stream_releaser=self._release_stream,
            on_subscription_change=self.on_subscription_change,
            now=lambda: env.now,
            owner=name,
            env=env,
        )

    # -- application hooks ---------------------------------------------------

    def apply(self, value: AppValue, stream: str, position: int) -> None:
        """Deliver one value to the application (override or callback)."""
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "replica.deliver", self.env.now, replica=self.name,
                group=self.group, stream=stream, position=position,
                msg_id=value.msg_id,
            )
        metrics = self._metrics
        if metrics is not None:
            metrics.counter(self.name, "delivered").record()
        for observer in self._observers:
            observer(value, stream, position)
        if self._on_deliver is not None:
            self._on_deliver(value, stream, position)

    def add_delivery_observer(
        self, observer: Callable[[AppValue, str, int], None]
    ) -> None:
        """Attach a tap invoked on every delivery, before the
        application.  Observers survive crash/recovery (they watch the
        replica, not its volatile state) -- the invariant checkers of
        :mod:`repro.faults` attach through this."""
        self._observers.append(observer)

    def on_subscription_change(self, kind: str, stream: str) -> None:
        """Subclass hook: Σ changed ('subscribe'/'unsubscribe')."""

    # -- lifecycle ---------------------------------------------------------------

    def bootstrap(self, streams: list[str]) -> None:
        """Install the initial subscriptions and start merging."""
        logs = {}
        for stream in streams:
            logs[stream] = self._attach_stream(stream, recover=False)
        self.merger.bootstrap(logs)
        self.start()

    @property
    def subscriptions(self) -> tuple[str, ...]:
        return self.merger.subscriptions

    # -- stream plumbing -------------------------------------------------------

    def _attach_stream(
        self,
        stream: str,
        recover: bool,
        start_instance: int = 0,
        base_position: int = 0,
    ) -> TokenLog:
        if stream in self.learners:
            return self.logs[stream]
        deployment = self.directory[stream]
        log = TokenLog(start_position=base_position)

        def on_decided(instance: int, batch: Batch, _stream=stream, _log=log):
            _log.append_batch(batch, instance=instance)
            tracer = self._tracer
            if tracer is not None:
                tracer.emit(
                    "learner.learned", self.env.now, replica=self.name,
                    stream=_stream, instance=instance,
                    msg_ids=[
                        t.msg_id for t in batch.tokens
                        if isinstance(t, AppValue)
                    ],
                    positions=batch.positions(),
                )
            metrics = self._metrics
            if metrics is not None:
                cursor = self.merger.positions().get(_stream)
                if cursor is not None:
                    metrics.gauge(self.name, "merge_lag").record(
                        _log.frontier - cursor
                    )
            self.merger.notify(_stream)

        def on_rebase(_first_instance: int, base_position: int, _log=log):
            _log.rebase(base_position)

        core = LearnerCore(
            self.env,
            deployment.config,
            on_decided,
            send=self.send,
            on_rebase=on_rebase,
            start_instance=start_instance,
            owner=self.name,
        )
        core.start()
        self.learners[stream] = core
        self.logs[stream] = log
        deployment.add_learner(self.name)
        if recover:
            core.start_recovery()
        return log

    def _provide_stream(self, stream: str) -> TokenLog:
        """Merger callback: it needs a stream it has no learner for."""
        return self._attach_stream(stream, recover=True)

    def crash(self) -> None:
        """Crash the replica: the host drops traffic and every learner
        task (and its gap-repair timer) halts."""
        for core in self.learners.values():
            core.stop()
        super().crash()

    # -- checkpointing & crash recovery ---------------------------------------

    def snapshot_state(self):
        """Subclass hook: application state to include in a checkpoint."""
        return None

    def restore_state(self, state) -> None:
        """Subclass hook: reinstall application state from a checkpoint."""

    def make_checkpoint(self) -> dict:
        """Capture a recovery point: Σ, merge cursors, replay points and
        the application state.

        Only valid while no subscription is in flight (the dMerge's
        pending machinery is not checkpointed; callers retry later).
        """
        if self.merger.pending_subscription is not None:
            raise RuntimeError(
                f"{self.name}: cannot checkpoint during a subscription"
            )
        cursors = self.merger.positions()
        streams = {}
        for stream in self.merger.sigma:
            cursor = cursors[stream]
            instance, base = self.logs[stream].replay_point(cursor)
            streams[stream] = {
                "replay_instance": instance,
                "base_position": base,
                "cursor": cursor,
            }
        checkpoint = {
            "sigma": list(self.merger.sigma),
            "streams": streams,
            "next_stream": self.merger.next_stream,
            "state": self.snapshot_state(),
        }
        metrics = self._metrics
        if metrics is not None:
            metrics.histogram(self.name, "checkpoint_bytes").record(
                len(repr(checkpoint))
            )
        return checkpoint

    def recover_from_checkpoint(self, checkpoint: dict) -> None:
        """Rebuild this replica after a crash from ``checkpoint``.

        Learner tasks re-fetch decided instances from the replay points;
        the dMerge resumes at the checkpointed cursors and replays
        everything ordered since -- *including* subscribe/unsubscribe
        messages, so the replica re-learns all subscription changes that
        happened while it was down (§VIII-B of the paper).
        """
        for stream in list(self.learners):
            self._release_stream(stream)
        self.host.recover()
        self.merger = ElasticMerger(
            group=self.group,
            deliver=self.apply,
            stream_provider=self._provide_stream,
            stream_releaser=self._release_stream,
            on_subscription_change=self.on_subscription_change,
            now=lambda: self.env.now,
            owner=self.name,
            env=self.env,
        )
        logs = {}
        positions = {}
        for stream, point in checkpoint["streams"].items():
            logs[stream] = self._attach_stream(
                stream,
                recover=False,
                start_instance=point["replay_instance"],
                base_position=point["base_position"],
            )
            positions[stream] = point["cursor"]
        self.merger.bootstrap(
            logs,
            positions=positions,
            next_stream=checkpoint.get("next_stream"),
        )
        self.restore_state(checkpoint["state"])
        self.start()
        for stream in checkpoint["streams"]:
            self.learners[stream].start_recovery()

    def safe_trim_instance(self, stream: str) -> Optional[int]:
        """Highest acceptor-log instance this replica no longer needs.

        None when the replica subscribes to ``stream`` but cannot spare
        anything yet.  Raises KeyError for streams it does not consume.
        """
        if stream not in self.logs:
            raise KeyError(f"{self.name} has no learner for {stream!r}")
        position = self.merger.positions().get(stream)
        if position is None:
            # Attached (prepare/pending) but not merging yet: the whole
            # backlog is still needed.
            return None
        return self.logs[stream].instance_consumed_below(position)

    def _release_stream(self, stream: str) -> None:
        """Merger callback: Σ dropped a stream; stop its learner task."""
        core = self.learners.pop(stream, None)
        if core is not None:
            core.stop()
        self.logs.pop(stream, None)
        deployment = self.directory.get(stream)
        if deployment is not None:
            deployment.remove_learner(self.name)

    # -- message dispatch ---------------------------------------------------------

    def dispatch(self, payload, src):
        if isinstance(payload, Decision):
            learner = self.learners.get(payload.stream)
            if learner is not None:       # decisions may trail an unsubscribe
                learner.on_decision(payload, src)
            return
        if isinstance(payload, RecoverReply):
            learner = self.learners.get(payload.stream)
            if learner is not None:
                learner.on_recover_reply(payload, src)
            return
        super().dispatch(payload, src)
