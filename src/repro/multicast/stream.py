"""Streams: the unit Elastic Paxos composes.

A *stream* is one Multi-Paxos sequence.  :class:`StreamDeployment`
wires a coordinator and its acceptors onto the simulated network and
manages the learner set (in ring mode the decision fan-out happens at
the last acceptor, so learner changes are pushed to the acceptors --
the role ZooKeeper plays for URingPaxos).

:class:`TokenLog` is the replica-side view of a stream: decided batches
flattened into a position-indexed sequence of tokens.  *Positions* are
the timestamps of Elastic Paxos -- the subscribe request's position in
each stream defines the merge point -- so they are absolute from the
beginning of the stream.  A :class:`SkipToken` with count ``n``
occupies ``n`` consecutive positions.
"""

from __future__ import annotations

import bisect
from typing import Callable, Optional

import dataclasses

from ..paxos.acceptor import AcceptorActor
from ..paxos.config import StreamConfig
from ..paxos.coordinator import CoordinatorActor
from ..paxos.ballot import quorum_size
from ..paxos.failover import FailoverMonitor, RingWatchdog
from ..paxos.learner import LearnerActor
from ..paxos.types import Batch, SkipToken, Token  # noqa: F401 (SkipToken used by fast_forward)
from ..runtime.kernel import Kernel, Transport
from ..storage.stable import StableStore

__all__ = ["StreamDeployment", "TokenLog"]


class TokenLog:
    """Position-indexed, append-only token sequence of one stream."""

    def __init__(self, start_position: int = 0):
        self._tokens: list[Token] = []
        self._starts: list[int] = []          # start position of each token
        self._frontier = start_position       # first position not yet filled
        self._base = start_position
        # (end_position, instance) per appended batch, for the trim
        # coordinator: positions consumed map back to Paxos instances.
        self._batch_ends: list[tuple[int, int]] = []

    @property
    def frontier(self) -> int:
        """First position for which no token is known yet."""
        return self._frontier

    @property
    def base(self) -> int:
        """First position this log covers (0 unless seeded post-trim)."""
        return self._base

    def rebase(self, position: int) -> None:
        """Seed an empty log at ``position`` (post-trim recovery)."""
        if self._tokens:
            raise RuntimeError("cannot rebase a log that already has tokens")
        if position < self._base:
            raise ValueError("rebase must not move backwards")
        self._base = position
        self._frontier = position

    def append_batch(self, batch: Batch, instance: Optional[int] = None) -> None:
        for token in batch.tokens:
            self.append(token)
        if instance is not None:
            self._batch_ends.append((self._frontier, instance))

    def instance_consumed_below(self, position: int) -> Optional[int]:
        """Highest instance whose batch ends at or before ``position``.

        Returns None when no full batch lies below ``position``.  Used
        by the trim coordinator to translate a replica's merge cursor
        back into a safe acceptor-log trim horizon.
        """
        index = bisect.bisect_right(self._batch_ends, (position, float("inf")))
        if index == 0:
            return None
        return self._batch_ends[index - 1][1]

    def replay_point(self, position: int) -> tuple[int, int]:
        """Where a recovering replica must restart to cover ``position``.

        Returns ``(instance, base_position)``: re-fetch decided batches
        from ``instance`` on, seed the fresh token log at
        ``base_position`` (the start of that instance's tokens), and the
        merge cursor resumes at ``position`` -- anything between base
        and cursor is re-fetched but not re-delivered.
        """
        index = bisect.bisect_right(self._batch_ends, (position, float("inf")))
        if index == 0:
            return 0, self._base
        end, instance = self._batch_ends[index - 1]
        return instance + 1, end

    def append(self, token: Token) -> None:
        positions = token.positions()
        if positions <= 0:
            raise ValueError(f"token {token!r} occupies no position")
        self._tokens.append(token)
        self._starts.append(self._frontier)
        self._frontier += positions

    def token_count(self) -> int:
        return len(self._tokens)

    def start_of(self, index: int) -> int:
        """Start position of the token at ``index``."""
        return self._starts[index]

    def token_at(self, index: int) -> Token:
        return self._tokens[index]

    def token_covering(self, position: int, hint: int = 0) -> tuple[Optional[Token], int]:
        """Return ``(token, token_index)`` covering ``position``.

        ``hint`` is a token index to start the forward scan from (the
        merger's cursor); the scan is O(1) amortized for sequential
        access.  Returns ``(None, hint)`` when ``position`` is at or
        beyond the frontier.
        """
        if position < self._base:
            raise ValueError(
                f"position {position} precedes log base {self._base}"
            )
        tokens = self._tokens
        starts = self._starts
        count = len(tokens)
        if position >= self._frontier:
            return None, (hint if hint < count else count)
        index = hint
        if index < 0:
            index = 0
        elif index >= count:
            index = count - 1
        # Walk backwards if the hint overshot, forwards otherwise.
        while starts[index] > position:
            index -= 1
        while index + 1 < count and starts[index + 1] <= position:
            if position < starts[index] + tokens[index].positions():
                break
            index += 1
        return tokens[index], index


class StreamDeployment:
    """One stream's server side: coordinator + acceptors on the network."""

    def __init__(
        self,
        env: Kernel,
        network: Transport,
        config: StreamConfig,
        stable_store_factory: Optional[Callable[[str], StableStore]] = None,
        recovery_instance_cost: float = 0.0,
    ):
        self.env = env
        self.network = network
        self.config = config
        # Two coordinator slots (primary + optional standby) partition
        # the ballot space: primary owns even ballots, standby odd.
        self.coordinator = CoordinatorActor(
            env, network, config, coordinator_index=0, n_coordinators=2
        )
        self.standby: Optional[CoordinatorActor] = None
        self.monitor: Optional[FailoverMonitor] = None
        self.watchdog: Optional[RingWatchdog] = None
        self.acceptors: list[AcceptorActor] = []
        for name in config.acceptors:
            store = stable_store_factory(name) if stable_store_factory else None
            self.acceptors.append(
                AcceptorActor(
                    env,
                    network,
                    name,
                    stream=config.name,
                    ring=config.acceptors,
                    store=store,
                    recovery_instance_cost=recovery_instance_cost,
                )
            )
        self._learners: list[str] = []
        self._sync_decision_targets()
        self.started = False

    @property
    def name(self) -> str:
        return self.config.name

    def start(self) -> None:
        if self.started:
            return
        self.started = True
        for acceptor in self.acceptors:
            acceptor.start()
        self.coordinator.start()

    def stop(self) -> None:
        if not self.started:
            return
        self.started = False
        self.coordinator.stop()
        if self.standby is not None:
            self.standby.stop()
        if self.monitor is not None:
            self.monitor.stop()
        if self.watchdog is not None:
            self.watchdog.stop()
        for acceptor in self.acceptors:
            acceptor.stop()

    # -- failover ----------------------------------------------------------

    def enable_failover(
        self, interval: float = 0.1, misses: int = 3
    ) -> FailoverMonitor:
        """Deploy a standby coordinator plus a heartbeat monitor that
        promotes it when the primary goes silent."""
        if self.standby is not None:
            raise RuntimeError(f"stream {self.name} already has a standby")
        standby_config = dataclasses.replace(
            self.config, coordinator=f"{self.name}/coordinator-standby"
        )
        self.standby = CoordinatorActor(
            self.env,
            self.network,
            standby_config,
            coordinator_index=1,
            n_coordinators=2,
            standby=True,
        )
        self.standby.start()
        self.monitor = FailoverMonitor(
            self.env,
            self.network,
            f"{self.name}/monitor",
            active=self.config.coordinator,
            standby=self.standby,
            interval=interval,
            misses=misses,
            on_failover=self._on_failover,
        )
        self.monitor.start()
        return self.monitor

    def _on_failover(self) -> None:
        """Repoint the deployment at the promoted standby."""
        for learner in self._learners:
            self.standby.add_learner(learner)
        self.coordinator = self.standby
        self.config.coordinator = self.standby.name
        self._sync_decision_targets()

    # -- ring reformation ------------------------------------------------------

    def enable_ring_watchdog(
        self, interval: float = 0.1, misses: int = 3
    ) -> RingWatchdog:
        """Monitor the acceptor ring and reform it around crashed
        members (URingPaxos keeps the ring layout in ZooKeeper and
        reforms it the same way)."""
        self.watchdog = RingWatchdog(
            self.env,
            self.network,
            f"{self.name}/ring-watchdog",
            targets=list(self.config.acceptors),
            on_suspect=self.reform_ring,
            interval=interval,
            misses=misses,
        )
        self.watchdog.start()
        return self.watchdog

    def reform_ring(self, crashed: str) -> None:
        """Remove ``crashed`` from the ring and re-anchor the stream.

        Safe while the surviving ring still constitutes a majority of
        the original acceptor set: every decided instance was accepted
        by the full ring, so the survivors hold all decided state, and
        Phase 1 on the new ring re-anchors anything in flight.
        """
        survivors = tuple(a for a in self.config.acceptors if a != crashed)
        original = getattr(self, "_original_acceptors", None)
        if original is None:
            original = self.config.acceptors
            self._original_acceptors = original
        if len(survivors) < quorum_size(len(original)):
            raise RuntimeError(
                f"cannot reform ring of {self.name}: survivors {survivors} "
                f"are no majority of {original}"
            )
        self.config.acceptors = survivors
        self.acceptors = [a for a in self.acceptors if a.name != crashed]
        for acceptor in self.acceptors:
            acceptor.core.ring = survivors
        self._sync_decision_targets()
        if getattr(self, "watchdog", None) is not None:
            self.watchdog.forget(crashed)
        self.coordinator.take_over()

    # -- learner management (the ZooKeeper-maintained ring config) --------

    def add_learner(self, learner_name: str) -> None:
        if learner_name in self._learners:
            return
        self._learners.append(learner_name)
        self.coordinator.add_learner(learner_name)
        self._sync_decision_targets()

    def remove_learner(self, learner_name: str) -> None:
        if learner_name not in self._learners:
            return
        self._learners.remove(learner_name)
        self.coordinator.remove_learner(learner_name)
        self._sync_decision_targets()

    def _sync_decision_targets(self) -> None:
        # In ring mode the final acceptor fans decisions out to the
        # other acceptors, the coordinator and every learner.
        targets = (
            list(self.config.acceptors)
            + [self.config.coordinator]
            + list(self._learners)
        )
        for acceptor in self.acceptors:
            acceptor.decision_targets = targets

    # -- convenience -------------------------------------------------------

    def propose(self, token: Token) -> None:
        """Inject a token at the coordinator (zero client latency)."""
        self.coordinator.propose(token)

    def fast_forward(self, to_position: int) -> int:
        """Align a freshly created stream with an existing ensemble.

        Stream positions are the merge's logical clock: a new stream
        starts at position 0 while long-running streams sit millions of
        positions ahead, and the merge point (``max`` over positions)
        would stall the subscription until the newcomer generated that
        many positions at rate λ.  Proposing one skip covering the gap
        up front aligns the newcomer's position counter immediately --
        this is how a provisioned stream joins a running ensemble.

        Returns the skip size proposed (0 if already past the target).
        """
        gap = to_position - self.coordinator.positions_proposed
        if gap <= 0:
            return 0
        self.coordinator.propose(SkipToken(count=gap))
        return gap

    def make_learner(
        self,
        name: str,
        on_deliver: Callable[[int, Batch], None],
        gap_timeout: float = 0.2,
    ) -> LearnerActor:
        """Create (and start) a learner actor attached to this stream."""
        learner = LearnerActor(
            self.env, self.network, name, self.config, on_deliver, gap_timeout
        )
        learner.start()
        self.add_learner(name)
        return learner

    def drop_learner(self, learner: LearnerActor) -> None:
        self.remove_learner(learner.name)
        learner.stop()
