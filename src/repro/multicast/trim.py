"""Acceptor-log trim coordination.

"The URingPaxos library has several mechanisms built in to recover and
trim Paxos acceptors' logs and coordinate replica checkpoints and state
transfer" (§VI).  Without trimming, acceptor logs grow without bound --
the very problem (acceptors running out of disk) that motivates the
reconfiguration use case.

The :class:`TrimCoordinator` periodically collects, for every stream,
the highest instance each consuming replica has fully merged, and trims
the acceptors' logs to the minimum across replicas minus a safety
slack.  The slack keeps recent instances available for in-flight
subscriptions (whose scan must still find the subscribe request) and
for gap repair.

A replica that subscribes after a trim seeds its token log at the
trimmed prefix's position (see ``RecoverReply.base_position``), keeping
the merge's position arithmetic absolute.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional

from ..runtime.kernel import Interrupt, Kernel
from .replica import MulticastReplica
from .stream import StreamDeployment

__all__ = ["TrimCoordinator"]


class TrimCoordinator:
    """Periodically trims every stream's acceptor logs.

    Parameters
    ----------
    replicas:
        The replicas whose consumption constrains trimming.  Replicas
        registered here must include *every* consumer of the streams in
        ``directory``; trimming past an unregistered consumer loses data
        (the learner raises when it detects that).
    slack_instances:
        Decided instances kept behind the global minimum.
    """

    def __init__(
        self,
        env: Kernel,
        directory: Mapping[str, StreamDeployment],
        replicas: Iterable[MulticastReplica],
        interval: float = 5.0,
        slack_instances: int = 100,
    ):
        if slack_instances < 0:
            raise ValueError("slack_instances must be >= 0")
        self.env = env
        self.directory = directory
        self.replicas = list(replicas)
        self.interval = interval
        self.slack_instances = slack_instances
        self.trims_issued: list[tuple[float, str, int]] = []
        self._proc = None

    def start(self) -> None:
        self._proc = self.env.process(self._loop())

    def stop(self) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
        self._proc = None

    def add_replica(self, replica: MulticastReplica) -> None:
        if replica not in self.replicas:
            self.replicas.append(replica)

    def safe_horizon(self, stream: str) -> Optional[int]:
        """Trim horizon for ``stream``: min over consumers, minus slack.

        None when any consumer cannot spare anything (or a subscription
        to the stream is in flight anywhere).
        """
        consumed = []
        for replica in self.replicas:
            if replica.merger.pending_subscription == stream:
                return None
            if stream not in replica.logs:
                continue
            instance = replica.safe_trim_instance(stream)
            if instance is None:
                return None
            consumed.append(instance)
        if not consumed:
            return None
        horizon = min(consumed) + 1 - self.slack_instances
        return horizon if horizon > 0 else None

    def trim_once(self) -> None:
        for name, deployment in self.directory.items():
            horizon = self.safe_horizon(name)
            if horizon is not None:
                deployment.coordinator.trim(horizon)
                self.trims_issued.append((self.env.now, name, horizon))

    def _loop(self):
        while True:
            try:
                yield self.env.timeout(self.interval)
            except Interrupt:
                return
            self.trim_once()
