"""Message and actor abstractions on top of the simulated network."""

from .actor import Actor
from .messages import Message, WIRE_HEADER_BYTES

__all__ = ["Actor", "Message", "WIRE_HEADER_BYTES"]
