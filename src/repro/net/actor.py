"""Actor base class: a protocol role bound to a transport host.

An :class:`Actor` drains its host's inbox in a receive loop and
dispatches each payload to ``on_<MessageClassName>`` methods, e.g. a
``Phase1a`` payload is dispatched to ``on_phase1a(msg, src)``.  Unknown
message types raise -- a replica silently ignoring a message it should
handle is a bug, not a feature.

Actors code against the :class:`repro.runtime.kernel.Kernel` and
:class:`repro.runtime.kernel.Transport` interfaces only; the same actor
runs unchanged on the discrete-event simulator and on the live asyncio
TCP backend.

Actors respect crash state: while the underlying host is crashed the
receive loop idles, and :meth:`Actor.send` drops outgoing traffic,
mirroring a dead process.
"""

from __future__ import annotations

import re
from typing import Any, Optional

from ..runtime.kernel import Interrupt, Kernel, ProcessHandle, Transport
from .messages import Message

__all__ = ["Actor"]

_CAMEL_RE = re.compile(r"(?<!^)(?=[A-Z])")


def _handler_name(payload: Any) -> str:
    return "on_" + _CAMEL_RE.sub("_", type(payload).__name__).lower()


class Actor:
    """A named protocol participant attached to a transport host."""

    def __init__(self, env: Kernel, network: Transport, name: str):
        self.env = env
        self.network = network
        self.name = name
        self.host = network.add_host(name)
        # Back-reference so fault injectors that only know host names
        # can crash the *process* (stop loops, halt timers), not just
        # the box -- crashing only the host would leave the receive
        # loop parked on the replaced inbox forever.
        self.host.actor = self
        self._loop: Optional[ProcessHandle] = None
        # Per-message-class handler methods, resolved lazily: the regex
        # camel-case split and getattr are too slow for the dispatch
        # hot path.
        self._handler_cache: dict[type, Any] = {}

    # -- lifecycle ------------------------------------------------------

    @property
    def running(self) -> bool:
        """True while the receive loop is active."""
        return self._loop is not None and self._loop.is_alive

    def start(self) -> None:
        """Begin draining the inbox."""
        if self.running:
            raise RuntimeError(f"{self.name} already started")
        self._loop = self.env.process(self._receive_loop())

    def stop(self) -> None:
        """Stop the receive loop (without crashing the host)."""
        if self._loop is not None and self._loop.is_alive:
            self._loop.interrupt("stop")
        self._loop = None

    def crash(self) -> None:
        """Crash the actor's host and halt its receive loop."""
        self.host.crash()
        self.stop()
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit("actor.crash", self.env._now, name=self.name)

    def recover(self) -> None:
        """Restart after a crash; volatile state must be rebuilt by the
        subclass (override and call ``super().recover()``)."""
        self.host.recover()
        self.start()
        tracer = self.env.tracer
        if tracer is not None:
            tracer.emit("actor.recover", self.env._now, name=self.name)

    @property
    def crashed(self) -> bool:
        return self.host.crashed

    # -- messaging ------------------------------------------------------

    def send(self, dst: str, payload: Message) -> None:
        """Send ``payload`` to the actor named ``dst``."""
        if self.host.crashed:
            return
        self.network.send(self.name, dst, payload, payload.wire_size())

    def send_all(self, dsts: list[str], payload: Message) -> None:
        if self.host.crashed:
            return
        # One wire-size computation for the whole fan-out.
        size = payload.wire_size()
        net_send = self.network.send
        name = self.name
        for dst in dsts:
            net_send(name, dst, payload, size)

    # -- dispatch ------------------------------------------------------

    def _receive_loop(self):
        # env.tracer / env.metrics are fixed for the environment's
        # lifetime, so hoist the per-message guards out of the loop.
        tracer = self.env.tracer
        if tracer is not None and not tracer.wants_dispatch:
            tracer = None
        metrics = self.env.metrics
        # The inbox and dispatch method are stable for the lifetime of
        # one loop instance: a crash interrupts the loop and recovery
        # starts a fresh generator against the replacement inbox.
        get = self.host.inbox.get
        dispatch = self.dispatch
        if tracer is None and metrics is None:
            while True:
                try:
                    envelope = yield get()
                except Interrupt:
                    return
                dispatch(envelope.payload, envelope.src)
        while True:
            try:
                envelope = yield get()
            except Interrupt:
                return
            if tracer is not None:
                tracer.emit(
                    "actor.dispatch", self.env._now, name=self.name,
                    src=envelope.src, type=type(envelope.payload).__name__,
                )
            if metrics is not None:
                metrics.gauge(self.name, "inbox_depth").record(
                    len(self.host.inbox)
                )
            dispatch(envelope.payload, envelope.src)

    def dispatch(self, payload: Any, src: str) -> None:
        """Route ``payload`` to the matching ``on_*`` handler."""
        cls = type(payload)
        handler = self._handler_cache.get(cls)
        if handler is None:
            handler = getattr(self, _handler_name(payload), None)
            if handler is None:
                raise NotImplementedError(
                    f"{type(self).__name__} {self.name!r} has no handler "
                    f"{_handler_name(payload)!r} for {payload!r}"
                )
            self._handler_cache[cls] = handler
        handler(payload, src)
