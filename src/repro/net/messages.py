"""Base types for protocol messages.

Messages are immutable dataclasses.  Each message knows its wire size
in bytes, which feeds the network's bandwidth model: the paper's
vertical-scalability experiment sends 32 KiB values, and stream
throughput saturates on serialisation, so size accounting matters for
reproducing the figure shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any

__all__ = ["FastMessage", "Message", "WIRE_HEADER_BYTES"]

# Fixed per-message framing overhead (headers, type tag, checksums).
WIRE_HEADER_BYTES = 48

# Per-class tuple of field names, resolved once -- dataclasses.fields()
# walks the MRO on every call, which is measurable on the send path.
_FIELD_NAMES: dict[type, tuple[str, ...]] = {}


@dataclass(frozen=True, slots=True)
class Message:
    """Base class for all protocol messages.

    Subclasses may either rely on the generic field-based size estimate
    or carry an explicit payload size (see e.g. stream values, whose
    application payload dominates).
    """

    def wire_size(self) -> int:
        """Estimated serialized size in bytes."""
        cls = type(self)
        names = _FIELD_NAMES.get(cls)
        if names is None:
            names = tuple(f.name for f in fields(self))
            _FIELD_NAMES[cls] = names
        return WIRE_HEADER_BYTES + sum(
            _field_size(getattr(self, name)) for name in names
        )


class FastMessage(Message):
    """Base for hand-optimized hot-path messages.

    The frozen-dataclass construction protocol routes every field
    through ``object.__setattr__``, which dominates the cost of
    building the millions of protocol messages a long run sends.
    Subclasses of this base hand-write ``__init__`` with plain
    attribute stores and declare ``_FIELDS`` so ``__repr__`` /
    ``__eq__`` / ``__hash__`` stay equivalent to the generated ones.
    Instances are immutable by convention -- the frozen guard is traded
    for construction speed on exactly these classes.
    """

    __slots__ = ()
    __setattr__ = object.__setattr__
    __delattr__ = object.__delattr__
    _FIELDS: tuple = ()

    def __repr__(self) -> str:
        kv = ", ".join(f"{n}={getattr(self, n)!r}" for n in self._FIELDS)
        return f"{self.__class__.__name__}({kv})"

    def __eq__(self, other: Any) -> Any:
        if other.__class__ is not self.__class__:
            return NotImplemented
        names = self._FIELDS
        return tuple(getattr(self, n) for n in names) == tuple(
            getattr(other, n) for n in names
        )

    def __hash__(self) -> int:
        return hash(tuple(getattr(self, n) for n in self._FIELDS))


def _field_size(value: Any) -> int:
    """Rough serialized size of one field value."""
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, (list, tuple, frozenset, set)):
        return 4 + sum(_field_size(v) for v in value)
    if isinstance(value, dict):
        return 4 + sum(_field_size(k) + _field_size(v) for k, v in value.items())
    if hasattr(value, "wire_size"):
        return value.wire_size()
    return 16
