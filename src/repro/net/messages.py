"""Base types for protocol messages.

Messages are immutable dataclasses.  Each message knows its wire size
in bytes, which feeds the network's bandwidth model: the paper's
vertical-scalability experiment sends 32 KiB values, and stream
throughput saturates on serialisation, so size accounting matters for
reproducing the figure shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any

__all__ = ["Message", "WIRE_HEADER_BYTES"]

# Fixed per-message framing overhead (headers, type tag, checksums).
WIRE_HEADER_BYTES = 48


@dataclass(frozen=True)
class Message:
    """Base class for all protocol messages.

    Subclasses may either rely on the generic field-based size estimate
    or carry an explicit payload size (see e.g. stream values, whose
    application payload dominates).
    """

    def wire_size(self) -> int:
        """Estimated serialized size in bytes."""
        return WIRE_HEADER_BYTES + sum(
            _field_size(getattr(self, f.name)) for f in fields(self)
        )


def _field_size(value: Any) -> int:
    """Rough serialized size of one field value."""
    if value is None or isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, (list, tuple, frozenset, set)):
        return 4 + sum(_field_size(v) for v in value)
    if isinstance(value, dict):
        return 4 + sum(_field_size(k) + _field_size(v) for k, v in value.items())
    if hasattr(value, "wire_size"):
        return value.wire_size()
    return 16
