"""Observability layer: tracing, lifecycle spans, metrics, flight recorder.

See ``docs/OBSERVABILITY.md`` for the guide.  The usual entry points:

- :class:`Tracer` + :func:`installed` -- capture structured protocol
  events into sinks (:class:`JsonlSink`, :class:`ListSink`,
  :class:`FlightRecorder`).
- :class:`LifecycleIndex` -- correlate a trace into per-message causal
  spans and per-stage latency samples.
- :class:`MetricsRegistry` -- per-actor counters / gauges / histograms.
- :func:`latency_budget` -- critical-path latency attribution over a
  :class:`LifecycleIndex` (``python -m repro latency``).
- :func:`validate_file` -- JSONL trace schema validation (used by CI).

``MetricsRegistry`` / ``Gauge`` are exposed lazily: ``obs.metrics``
imports ``sim.monitor`` which imports ``sim.core``, and ``sim.core``
imports ``obs.trace`` -- an eager import here would close that loop
while ``sim.core`` is still initialising.
"""

from .audit import (
    AuditViolation,
    IncrementalTraceReader,
    SafetyCertifier,
    TraceDirectorySource,
)
from .critpath import (
    BUDGET_FORMAT,
    SEGMENTS,
    CriticalPath,
    budget_lines,
    diff_budgets,
    extract_critical_paths,
    latency_budget,
)
from .merge import (
    cross_node_messages,
    merge_events,
    merge_files,
    read_trace,
    trace_offsets,
    write_trace,
)
from .recorder import FlightRecorder
from .schema import EVENT_SCHEMA, SchemaError, validate_event, validate_file
from .spans import STAGES, LifecycleIndex, MessageLifecycle, SubscriptionTimeline
from .watch import (
    Alert,
    EndpointsWatch,
    TraceWatch,
    Watchdog,
    default_node_detectors,
    default_trace_detectors,
)
from .trace import (
    ALL_CATEGORIES,
    DEFAULT_CATEGORIES,
    JsonlSink,
    ListSink,
    Tracer,
    current_metrics,
    current_tracer,
    install,
    install_metrics,
    installed,
    uninstall,
    uninstall_metrics,
)

__all__ = [
    "ALL_CATEGORIES",
    "Alert",
    "AuditViolation",
    "BUDGET_FORMAT",
    "CriticalPath",
    "EndpointsWatch",
    "IncrementalTraceReader",
    "SafetyCertifier",
    "TraceDirectorySource",
    "TraceWatch",
    "Watchdog",
    "default_node_detectors",
    "default_trace_detectors",
    "DEFAULT_CATEGORIES",
    "EVENT_SCHEMA",
    "SEGMENTS",
    "budget_lines",
    "diff_budgets",
    "extract_critical_paths",
    "latency_budget",
    "FlightRecorder",
    "Gauge",
    "JsonlSink",
    "LifecycleIndex",
    "ListSink",
    "METRICS_DUMP_FORMAT",
    "MessageLifecycle",
    "MetricsRegistry",
    "STAGES",
    "rows_from_dump",
    "SchemaError",
    "SubscriptionTimeline",
    "Tracer",
    "cross_node_messages",
    "current_metrics",
    "current_tracer",
    "install",
    "merge_events",
    "merge_files",
    "read_trace",
    "trace_offsets",
    "write_trace",
    "install_metrics",
    "installed",
    "uninstall",
    "uninstall_metrics",
    "validate_event",
    "validate_file",
]

_LAZY = {"MetricsRegistry", "Gauge", "METRICS_DUMP_FORMAT", "rows_from_dump"}


def __getattr__(name):
    if name in _LAZY:
        from . import metrics

        return getattr(metrics, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
