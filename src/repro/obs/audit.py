"""Online safety certifier: stream the paper's invariants, live.

``repro.faults.invariants`` checks Elastic Paxos's safety properties
*in-process* and the golden digests check them *post-hoc*; this module
checks them *while the cluster runs*, from the outside, with nothing
but the per-node JSONL traces every live/deploy run already writes.

Three layers:

:class:`IncrementalTraceReader`
    Tails one JSONL file.  Each :meth:`~IncrementalTraceReader.poll`
    returns only the events appended since the previous poll, holding
    any torn final line (a kill -9'd worker dies mid-``write``) in a
    buffer until its newline arrives -- or forever, if it never does.
    A file that shrinks (truncate + recreate) resets the cursor.

:class:`TraceDirectorySource`
    Tails every ``*.trace.jsonl`` under a run directory, discovering
    new files between polls -- a restarted worker shows up as a fresh
    incarnation trace (``n3-r1.trace.jsonl``) mid-run.  Merged
    timelines (``merged.trace.jsonl``) are skipped: they duplicate the
    per-node events.

:class:`SafetyCertifier`
    Consumes the event stream and maintains just enough state to check,
    online and cross-node:

    * **stream agreement** -- every ``(stream, position)`` carries one
      msg_id, across all replicas of all nodes;
    * **prefix agreement / uniform order** -- each replication group's
      delivery sequences are prefixes of one canonical sequence;
    * **no lost or duplicated deliveries** -- per (incarnation,
      replica, stream) positions are strictly increasing and gap-free;
    * **acyclic order** -- the union of the groups' canonical
      sequences stays a DAG (:meth:`check_acyclic`);
    * **merge-point consistency** -- every replica committing a
      reconfiguration reports the same merge point per request;
    * **reconfiguration liveness** -- a requested subscribe/split/
      replace must commit within a bound (surfaced through
      :meth:`watch_sample` as a pending age, alerted by the watchdog --
      a liveness miss is an alert, not a safety violation).

    Timestamps are aligned into the reference clock domain using the
    recorded ``meta.clock`` offsets, exactly like
    :func:`repro.obs.merge.trace_offsets`; ``self.now`` is the aligned
    high-watermark of trace time and is the clock every staleness
    measure runs on (so post-hoc certification of a finished run sees
    the same ages a live tail did).

    State is bounded: :meth:`compact` (called automatically every
    ``compact_every`` observed events) retires the oldest per-position
    entries beyond ``compact_limit`` per stream/group.  Deliveries
    below the compaction floor are still checked for per-replica
    monotonicity, just no longer cross-checked value-by-value -- the
    documented memory/coverage tradeoff for day-long runs.

A kill -9'd worker restarts as a *new incarnation* with a fresh trace
node id (``n3-r1``) and replays its deliveries from position 1; the
certifier keys replica identity as ``(trace_node, replica)``, so the
replay is a new observer agreeing with the canonical sequence, not a
duplicate delivery.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

__all__ = [
    "AuditViolation",
    "IncrementalTraceReader",
    "SafetyCertifier",
    "TraceDirectorySource",
]


# -- incremental input -------------------------------------------------

class IncrementalTraceReader:
    """Tail one JSONL trace file; each poll yields the new events.

    Tolerates every artifact a live run produces: the file not existing
    yet (the worker has not booted), a torn final line (buffered until
    completed by a later append), interleaved malformed lines (counted,
    skipped), and truncation (cursor reset, counted in ``resets``).
    """

    def __init__(self, path: str):
        self.path = path
        self.offset = 0
        self.events_read = 0
        self.malformed = 0
        self.resets = 0
        self._partial = b""

    def poll(self) -> list[dict]:
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return []
        if size < self.offset:
            # Truncated or recreated underneath us: start over.
            self.offset = 0
            self._partial = b""
            self.resets += 1
        if size == self.offset:
            return []
        with open(self.path, "rb") as handle:
            handle.seek(self.offset)
            chunk = handle.read()
        self.offset += len(chunk)
        lines = (self._partial + chunk).split(b"\n")
        # Bytes after the last newline are a line still being written.
        self._partial = lines.pop()
        events: list[dict] = []
        for raw in lines:
            if not raw.strip():
                continue
            try:
                event = json.loads(raw)
            except ValueError:
                self.malformed += 1
                continue
            if isinstance(event, dict):
                self.events_read += 1
                events.append(event)
            else:
                self.malformed += 1
        return events


class TraceDirectorySource:
    """Tail every per-node trace under a run directory.

    New ``*.trace.jsonl`` files are discovered on every poll (restart
    incarnations appear mid-run); ``merged.trace.jsonl`` is excluded
    because it duplicates the per-node events.  ``paths`` pins an
    explicit file list instead of scanning a directory.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        paths: Optional[Iterable[str]] = None,
    ):
        self.directory = directory
        self.readers: dict[str, IncrementalTraceReader] = {}
        for path in paths or ():
            self.readers[path] = IncrementalTraceReader(path)

    def _discover(self) -> None:
        if self.directory is None:
            return
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        for name in sorted(names):
            if not name.endswith(".trace.jsonl"):
                continue
            if name.startswith("merged"):
                continue
            path = os.path.join(self.directory, name)
            if path not in self.readers:
                self.readers[path] = IncrementalTraceReader(path)

    def poll(self) -> list[dict]:
        self._discover()
        events: list[dict] = []
        for path in sorted(self.readers):
            events.extend(self.readers[path].poll())
        return events

    @property
    def events_read(self) -> int:
        return sum(r.events_read for r in self.readers.values())

    @property
    def malformed(self) -> int:
        return sum(r.malformed for r in self.readers.values())


# -- certifier ---------------------------------------------------------

@dataclass(frozen=True)
class AuditViolation:
    """One safety-property violation the certifier proved from events."""

    property: str                  # e.g. "stream-agreement"
    message: str
    at: float = 0.0                # aligned trace time it was detected
    stream: Optional[str] = None
    position: Optional[int] = None
    msg_id: Optional[Any] = None
    replica: Optional[str] = None  # "trace_node/replica"

    def to_json(self) -> dict:
        payload = {"property": self.property, "message": self.message,
                   "at": self.at}
        for key in ("stream", "position", "msg_id", "replica"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        return payload


class _ReplicaState:
    """One observer: a replica inside one worker incarnation."""

    __slots__ = ("key", "group", "group_index", "positions", "last_at")

    def __init__(self, key: str, group: str):
        self.key = key
        self.group = group
        self.group_index = 0                 # next index into the canon
        self.positions: dict[str, int] = {}  # stream -> last position
        self.last_at = 0.0


class _StreamState:
    __slots__ = (
        "values", "floor", "high", "delivered", "proposes",
        "decided", "pending_proposes", "first_pending_at",
        "last_decide_at", "last_propose_at",
    )

    def __init__(self) -> None:
        self.values: dict[int, Any] = {}     # position -> msg_id
        self.floor = 1                       # positions below: compacted
        self.high = 0                        # max position delivered
        self.delivered = 0
        self.proposes = 0
        self.decided = 0                     # decided positions (incl. skips)
        self.pending_proposes = 0            # proposes since the last decide
        self.first_pending_at: Optional[float] = None
        self.last_decide_at: Optional[float] = None
        self.last_propose_at: Optional[float] = None


class _GroupState:
    __slots__ = ("canon", "base", "unverified")

    def __init__(self) -> None:
        # canon[i - base] = (stream, position, msg_id): the group's
        # canonical delivery sequence, as first observed.
        self.canon: list[tuple] = []
        self.base = 0
        self.unverified = 0                  # deliveries below base


@dataclass
class _Reconfig:
    kind: str                                # subscribe / unsubscribe
    stream: str
    requested_at: float
    begins: set = field(default_factory=set)
    commits: set = field(default_factory=set)
    merge_points: dict = field(default_factory=dict)

    @property
    def committed(self) -> bool:
        return bool(self.commits) and self.commits >= self.begins


class SafetyCertifier:
    """Streaming checker of the paper's safety properties (module doc)."""

    def __init__(
        self,
        compact_limit: int = 100_000,
        compact_every: int = 50_000,
    ):
        self.compact_limit = compact_limit
        self.compact_every = compact_every
        self.offsets: dict[str, float] = {}        # node -> clock offset
        self.clock_rtts: dict[str, float] = {}
        self.replicas: dict[str, _ReplicaState] = {}
        self.streams: dict[str, _StreamState] = {}
        self.groups: dict[str, _GroupState] = {}
        self.reconfigs: dict[Any, _Reconfig] = {}
        self.violations: list[AuditViolation] = []
        self.worker_violations: list[str] = []     # invariant.* from nodes
        self.now = 0.0                             # aligned trace time
        self.events = 0
        self.submitted = 0
        self.last_submit_at: Optional[float] = None
        self.acyclic_checks = 0
        self._since_compact = 0
        self._retired: dict[str, set] = {}         # stream -> replica keys

    # -- helpers ------------------------------------------------------

    def _stream(self, name: str) -> _StreamState:
        state = self.streams.get(name)
        if state is None:
            state = self.streams[name] = _StreamState()
        return state

    def _group(self, name: str) -> _GroupState:
        state = self.groups.get(name)
        if state is None:
            state = self.groups[name] = _GroupState()
        return state

    def _replica(self, key: str, group: str) -> _ReplicaState:
        state = self.replicas.get(key)
        if state is None:
            state = self.replicas[key] = _ReplicaState(key, group)
        return state

    def _violate(self, violation: AuditViolation,
                 out: list[AuditViolation]) -> None:
        self.violations.append(violation)
        out.append(violation)

    # -- ingest -------------------------------------------------------

    def observe_all(self, events: Iterable[dict]) -> list[AuditViolation]:
        fresh: list[AuditViolation] = []
        for event in events:
            fresh.extend(self.observe(event))
        return fresh

    def observe(self, event: dict) -> list[AuditViolation]:
        """Feed one trace event; returns any *new* violations."""
        self.events += 1
        self._since_compact += 1
        kind = event.get("kind")
        node = str(event.get("node", ""))
        fresh: list[AuditViolation] = []

        if kind == "meta.clock":
            target = str(event.get("node", node))
            self.offsets[target] = float(event.get("offset", 0.0))
            rtt = event.get("rtt")
            if rtt is not None:
                self.clock_rtts[target] = float(rtt)
            return fresh

        at = float(event.get("ts", 0.0)) - self.offsets.get(node, 0.0)
        if at > self.now:
            self.now = at

        if kind == "replica.deliver":
            self._observe_deliver(event, node, at, fresh)
        elif kind == "coord.decide":
            state = self._stream(str(event.get("stream", "")))
            # ``positions`` is an int count live (batch.positions());
            # tolerate a list for forward compatibility.
            positions = event.get("positions")
            state.decided += (
                positions if isinstance(positions, int)
                else len(positions or ())
            )
            state.pending_proposes = 0
            state.first_pending_at = None
            state.last_decide_at = at
        elif kind == "coord.propose":
            state = self._stream(str(event.get("stream", "")))
            state.proposes += 1
            state.pending_proposes += 1
            if state.first_pending_at is None:
                state.first_pending_at = at
            state.last_propose_at = at
        elif kind == "client.submit":
            self.submitted += 1
            self.last_submit_at = at
        elif kind in ("control.subscribe", "control.prepare",
                      "control.unsubscribe"):
            request_id = event.get("request_id")
            if request_id is not None and request_id not in self.reconfigs:
                self.reconfigs[request_id] = _Reconfig(
                    kind=kind.rsplit(".", 1)[1],
                    stream=str(event.get("stream", "")),
                    requested_at=at,
                )
        elif kind == "merge.subscribe.begin":
            reconfig = self._reconfig_for(event, at)
            reconfig.begins.add(self._observer_key(event, node))
        elif kind == "merge.subscribe.commit":
            self._observe_commit(event, node, at, fresh)
        elif kind == "merge.unsubscribe":
            reconfig = self._reconfig_for(event, at)
            key = self._observer_key(event, node)
            reconfig.begins.add(key)
            reconfig.commits.add(key)
            # The observer stops delivering this stream on purpose; do
            # not count its frozen position against the low watermark.
            self._retired.setdefault(
                str(event.get("stream", "")), set()
            ).add(key)
        elif kind in ("invariant.violation", "meta.violation"):
            self.worker_violations.append(
                f"{node}: {event.get('message', kind)}"
            )

        if (self.compact_every and
                self._since_compact >= self.compact_every):
            self.compact()
        return fresh

    def _observer_key(self, event: dict, node: str) -> str:
        return f"{node}/{event.get('replica', '')}"

    def _reconfig_for(self, event: dict, at: float) -> _Reconfig:
        request_id = event.get("request_id")
        reconfig = self.reconfigs.get(request_id)
        if reconfig is None:
            kind = str(event.get("kind", ""))
            reconfig = self.reconfigs[request_id] = _Reconfig(
                kind="unsubscribe" if "unsubscribe" in kind else "subscribe",
                stream=str(event.get("stream", "")),
                requested_at=at,
            )
        return reconfig

    def _observe_deliver(self, event: dict, node: str, at: float,
                         fresh: list[AuditViolation]) -> None:
        stream = str(event.get("stream", ""))
        group = str(event.get("group", ""))
        position = int(event.get("position", 0))
        msg_id = event.get("msg_id")
        key = self._observer_key(event, node)
        replica = self._replica(key, group)
        replica.last_at = at

        # No duplicate / regressed delivery within one observer.
        previous = replica.positions.get(stream)
        if previous is not None and position <= previous:
            self._violate(AuditViolation(
                property="duplicate-delivery",
                message=(
                    f"{key} delivered {stream}@{position} after "
                    f"already reaching position {previous}"
                ),
                at=at, stream=stream, position=position,
                msg_id=msg_id, replica=key,
            ), fresh)
            return
        replica.positions[stream] = position
        retired = self._retired.get(stream)
        if retired is not None:
            retired.discard(key)     # delivering again: not retired

        # Stream agreement: one msg_id per (stream, position), ever.
        state = self._stream(stream)
        state.delivered += 1
        if position > state.high:
            state.high = position
        if position >= state.floor:
            seen = state.values.get(position)
            if seen is None:
                state.values[position] = msg_id
            elif seen != msg_id:
                self._violate(AuditViolation(
                    property="stream-agreement",
                    message=(
                        f"{stream}@{position}: {key} delivered "
                        f"msg {msg_id}, another replica delivered "
                        f"msg {seen}"
                    ),
                    at=at, stream=stream, position=position,
                    msg_id=msg_id, replica=key,
                ), fresh)

        # Prefix agreement: the observer's next delivery must extend or
        # match the group's canonical sequence.
        group_state = self._group(group)
        index = replica.group_index
        replica.group_index += 1
        entry = (stream, position, msg_id)
        if index < group_state.base:
            group_state.unverified += 1
            return
        slot = index - group_state.base
        if slot < len(group_state.canon):
            expected = group_state.canon[slot]
            if expected != entry:
                self._violate(AuditViolation(
                    property="prefix-agreement",
                    message=(
                        f"group {group} index {index}: {key} delivered "
                        f"{stream}@{position} msg {msg_id}, canonical "
                        f"order has {expected[0]}@{expected[1]} "
                        f"msg {expected[2]}"
                    ),
                    at=at, stream=stream, position=position,
                    msg_id=msg_id, replica=key,
                ), fresh)
        else:
            # First observer to reach this index extends the canon.
            group_state.canon.append(entry)

    def _observe_commit(self, event: dict, node: str, at: float,
                        fresh: list[AuditViolation]) -> None:
        reconfig = self._reconfig_for(event, at)
        key = self._observer_key(event, node)
        reconfig.begins.add(key)
        reconfig.commits.add(key)
        merge_point = event.get("merge_point")
        request_id = event.get("request_id")
        if merge_point is None:
            return
        for other_key, other_point in reconfig.merge_points.items():
            if other_point != merge_point:
                self._violate(AuditViolation(
                    property="merge-point",
                    message=(
                        f"request {request_id}: {key} committed at merge "
                        f"point {merge_point}, {other_key} at "
                        f"{other_point}"
                    ),
                    at=at, stream=reconfig.stream, replica=key,
                ), fresh)
                break
        reconfig.merge_points[key] = merge_point

    # -- global checks ------------------------------------------------

    def check_acyclic(self) -> list[AuditViolation]:
        """Uniform acyclic order: the union of the groups' canonical
        sequences, read as msg-follows-msg edges, must stay a DAG.
        Runs over the retained (non-compacted) canon."""
        self.acyclic_checks += 1
        edges: dict[Any, set] = {}
        for group_state in self.groups.values():
            canon = group_state.canon
            for i in range(1, len(canon)):
                earlier, later = canon[i - 1][2], canon[i][2]
                if earlier != later:
                    edges.setdefault(earlier, set()).add(later)
        WHITE, GREY, BLACK = 0, 1, 2
        colour: dict[Any, int] = {}
        fresh: list[AuditViolation] = []
        for root in edges:
            if colour.get(root, WHITE) != WHITE:
                continue
            stack = [(root, iter(edges.get(root, ())))]
            colour[root] = GREY
            while stack:
                vertex, children = stack[-1]
                advanced = False
                for child in children:
                    state = colour.get(child, WHITE)
                    if state == GREY:
                        self._violate(AuditViolation(
                            property="acyclic-order",
                            message=(
                                f"delivery order cycle: msg {child} both "
                                f"precedes and follows msg {vertex} "
                                f"across groups"
                            ),
                            at=self.now, msg_id=child,
                        ), fresh)
                        return fresh
                    if state == WHITE:
                        colour[child] = GREY
                        stack.append((child, iter(edges.get(child, ()))))
                        advanced = True
                        break
                if not advanced:
                    colour[vertex] = BLACK
                    stack.pop()
        return fresh

    # -- memory bound -------------------------------------------------

    def compact(self) -> int:
        """Retire the oldest per-position state beyond ``compact_limit``
        entries per stream / group; returns entries dropped."""
        self._since_compact = 0
        dropped = 0
        for state in self.streams.values():
            excess = len(state.values) - self.compact_limit
            if excess > 0:
                for position in sorted(state.values)[:excess]:
                    del state.values[position]
                    dropped += 1
                state.floor = min(state.values) if state.values else (
                    state.high + 1
                )
        for group_state in self.groups.values():
            excess = len(group_state.canon) - self.compact_limit
            if excess > 0:
                del group_state.canon[:excess]
                group_state.base += excess
                dropped += excess
        return dropped

    # -- snapshots ----------------------------------------------------

    def watermarks(self) -> dict[str, dict]:
        """Per-stream ``{"low", "high"}`` delivery watermarks.

        ``high`` is the max position any observer delivered; ``low`` the
        min across observers still expected to deliver the stream
        (observers that explicitly unsubscribed are excluded -- their
        frozen position is intentional, not a stall).
        """
        marks: dict[str, dict] = {}
        lows: dict[str, int] = {}
        for replica in self.replicas.values():
            for stream, position in replica.positions.items():
                if replica.key in self._retired.get(stream, ()):
                    continue
                if stream not in lows or position < lows[stream]:
                    lows[stream] = position
        for stream, state in self.streams.items():
            marks[stream] = {
                "low": lows.get(stream, state.high),
                "high": state.high,
            }
        return marks

    def watch_sample(self) -> dict:
        """The watchdog's view of the certifier (see
        :func:`repro.obs.watch.sample_from_certifier`)."""
        streams: dict[str, dict] = {}
        marks = self.watermarks()
        for stream, state in self.streams.items():
            entry = dict(marks.get(stream, {"low": 0, "high": state.high}))
            entry["pending"] = state.pending_proposes
            entry["pending_age"] = (
                None if state.first_pending_at is None
                else max(0.0, self.now - state.first_pending_at)
            )
            entry["decide_age"] = (
                None if state.last_decide_at is None
                else max(0.0, self.now - state.last_decide_at)
            )
            streams[stream] = entry
        pending_reconfigs = {
            str(request_id): max(0.0, self.now - reconfig.requested_at)
            for request_id, reconfig in self.reconfigs.items()
            if not reconfig.committed
        }
        return {
            "at": self.now,
            "streams": streams,
            "delivered": sum(s.delivered for s in self.streams.values()),
            "submitted": self.submitted,
            "submit_age": (
                None if self.last_submit_at is None
                else max(0.0, self.now - self.last_submit_at)
            ),
            "pending_reconfigs": pending_reconfigs,
            "clock_offsets": dict(self.offsets),
            "clock_rtts": dict(self.clock_rtts),
        }

    def summary(self) -> dict:
        """Aggregate audit verdict (embedded in deploy manifests)."""
        return {
            "events": self.events,
            "now": self.now,
            "replicas": len(self.replicas),
            "groups": len(self.groups),
            "streams": sorted(self.streams),
            "delivered": sum(s.delivered for s in self.streams.values()),
            "watermarks": self.watermarks(),
            "violations": [v.to_json() for v in self.violations],
            "worker_violations": list(self.worker_violations),
            "acyclic_checks": self.acyclic_checks,
            "ok": not self.violations,
        }
