"""Per-message critical-path extraction and latency-budget reports.

Decomposes each delivered message's end-to-end latency (client submit to
first replica delivery) into named segments over a
:class:`~repro.obs.spans.LifecycleIndex`:

==================  ====================================================
``submit->propose``  client transit + coordinator admission
``batch_wait``       coordinator batching/throttle/CPU (propose->phase2)
``quorum_wait``      Phase 2 quorum / ring traversal (phase2->decide)
``dissemination``    decision fan-out to the first learner (decide->learn)
``merge_wait``       dMerge head-of-line wait (learn->deliver)
==================  ====================================================

The five segments telescope -- consecutive stage boundaries along the
submit -> first-deliver path, forced monotone and clamped into the
[submit, first-deliver] window -- so a complete lifecycle is attributed
100% by construction even when clock skew on a merged trace stamps a
boundary out of order.  On top of the per-segment p50/p99 budget the
report attributes *who* to blame:

- **stragglers** -- which acceptor's 2b (classic mode) or ring decision
  (``closed_by`` on ``coord.decide``) closed each instance's quorum;
- **blockers** -- which stream the dMerge round-robin was waiting on
  during each message's merge wait (``merge.head_of_line`` episodes);
- **transport** (live traces only) -- send-queue wait vs. wire+decode
  time, from ``transport.queue_wait`` and ``net.context`` arrivals with
  ``origin_ts`` sender clocks re-aligned via the trace-merge offsets.

Works on sim traces (``python -m repro trace``) and on ``trace-merge``d
multi-node live timelines alike; exposed as ``python -m repro latency``.
"""

from __future__ import annotations

import json
from bisect import bisect_right
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from .spans import LifecycleIndex

__all__ = [
    "BUDGET_FORMAT",
    "SEGMENTS",
    "CriticalPath",
    "budget_lines",
    "diff_budgets",
    "extract_critical_paths",
    "latency_budget",
]

BUDGET_FORMAT = "repro-latency-budget/1"

SEGMENTS = (
    ("submit->propose", "client transit + coordinator admission"),
    ("batch_wait", "coordinator batching/throttle/CPU"),
    ("quorum_wait", "Phase 2 quorum / ring traversal"),
    ("dissemination", "decision fan-out to first learner"),
    ("merge_wait", "dMerge head-of-line wait"),
)
SEGMENT_NAMES = tuple(name for name, _ in SEGMENTS)


def _clamp(value: float) -> float:
    return value if value > 0.0 else 0.0


def _round(value: float, digits: int = 6) -> float:
    return round(value, digits)


def _percentile(ordered: list[float], q: float) -> float:
    """Nearest-rank percentile over a pre-sorted sample list."""
    if not ordered:
        return 0.0
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _dist_ms(values: list[float]) -> dict:
    """Count/mean/p50/p99 of a latency sample set, in milliseconds."""
    if not values:
        return {"n": 0, "mean": None, "p50": None, "p99": None}
    ordered = sorted(values)
    return {
        "n": len(values),
        "mean": _round(1000.0 * sum(values) / len(values)),
        "p50": _round(1000.0 * _percentile(ordered, 0.50)),
        "p99": _round(1000.0 * _percentile(ordered, 0.99)),
    }


@dataclass
class CriticalPath:
    """One message's decomposed submit -> first-deliver path."""

    msg_id: int
    stream: Optional[str]
    total: float                         # end-to-end seconds
    segments: dict[str, float] = field(default_factory=dict)
    closed_by: Optional[str] = None      # acceptor that closed the quorum
    blocking_stream: Optional[str] = None  # stream blamed for merge_wait
    queue_wait: float = 0.0              # transport send-queue wait (live)
    wire_wait: float = 0.0               # transit minus queue wait (live)


class _EpisodeIndex:
    """Per-replica ``merge.head_of_line`` episodes, searchable by time.

    Episodes at one replica are sequential (the merger blocks on one
    stream at a time), so both starts and ends are monotone and the
    overlap scan can bisect in and break out early.
    """

    def __init__(self, index: LifecycleIndex):
        by_replica: dict[str, list[tuple[float, float, str]]] = {}
        for replica, end, waited, stream in index.hol_episodes:
            by_replica.setdefault(replica, []).append((end - waited, end, stream))
        self._by_replica = {
            replica: sorted(episodes)
            for replica, episodes in by_replica.items()
        }
        self._ends = {
            replica: [end for (_, end, _) in episodes]
            for replica, episodes in self._by_replica.items()
        }

    def blame(self, replica: str, start: float, end: float) -> Optional[str]:
        """The stream whose episode overlaps [start, end] the longest."""
        episodes = self._by_replica.get(replica)
        if not episodes or end < start:
            return None
        best_stream: Optional[str] = None
        best_overlap = 0.0
        for i in range(bisect_right(self._ends[replica], start), len(episodes)):
            ep_start, ep_end, stream = episodes[i]
            if ep_start > end:
                break
            overlap = min(ep_end, end) - max(ep_start, start)
            if overlap > best_overlap:
                best_overlap = overlap
                best_stream = stream
        return best_stream


def extract_critical_paths(index: LifecycleIndex) -> list[CriticalPath]:
    """One :class:`CriticalPath` per *complete* lifecycle, by msg_id."""
    episodes = _EpisodeIndex(index)
    offsets = index.clock_offsets
    paths: list[CriticalPath] = []
    for msg_id in sorted(index.messages):
        m = index.messages[msg_id]
        if not m.complete:
            continue
        first_learn = min(m.learned_at.values())
        deliver_replica = min(
            m.delivered_at, key=lambda r: (m.delivered_at[r], r)
        )
        first_deliver = m.delivered_at[deliver_replica]
        # Telescope over *monotone* boundaries: each raw timestamp is
        # clamped into [previous boundary, first_deliver], so on a
        # skewed merged trace a late-stamped boundary truncates its
        # segment instead of double-counting the overlap -- the five
        # segments always partition submit->first_deliver exactly.
        boundaries = []
        previous = m.submitted_at
        for raw in (m.proposed_at, m.phase2_at, m.decided_at,
                    first_learn, first_deliver):
            previous = min(max(previous, raw), first_deliver)
            boundaries.append(previous)
        segments = {
            name: _clamp(boundary - start)
            for name, start, boundary in zip(
                SEGMENT_NAMES, [m.submitted_at] + boundaries[:-1], boundaries
            )
        }
        transit = 0.0
        for ts, origin, origin_ts in m.context_arrivals:
            if origin_ts is None:
                continue
            transit += _clamp(ts - (origin_ts - offsets.get(origin, 0.0)))
        paths.append(
            CriticalPath(
                msg_id=msg_id,
                stream=m.stream,
                total=_clamp(first_deliver - m.submitted_at),
                segments=segments,
                closed_by=m.closed_by,
                blocking_stream=episodes.blame(
                    deliver_replica,
                    m.learned_at.get(deliver_replica, first_learn),
                    first_deliver,
                ),
                queue_wait=m.queue_wait,
                wire_wait=_clamp(transit - m.queue_wait),
            )
        )
    return paths


def latency_budget(index: LifecycleIndex) -> dict:
    """Aggregate critical paths into the latency-budget report."""
    paths = extract_critical_paths(index)
    complete, delivered = index.coverage()
    totals = [p.total for p in paths]
    budget: dict = {
        "format": BUDGET_FORMAT,
        "messages": {
            "observed": len(index.messages),
            "delivered": delivered,
            "complete": complete,
        },
        "coverage": _round(complete / delivered) if delivered else 0.0,
        "total_ms": _dist_ms(totals),
        "segments": [],
        "attributed_share": 0.0,
        "stragglers": [],
        "blockers": [],
        "transport_ms": None,
    }
    if not paths:
        return budget
    mean_total = sum(totals) / len(totals)
    attributed = 0.0
    for name, description in SEGMENTS:
        values = [p.segments[name] for p in paths]
        mean = sum(values) / len(values)
        attributed += mean
        entry = _dist_ms(values)
        entry["name"] = name
        entry["description"] = description
        entry["share"] = _round(mean / mean_total) if mean_total > 0 else 0.0
        budget["segments"].append(entry)
    budget["attributed_share"] = (
        _round(attributed / mean_total) if mean_total > 0 else 1.0
    )

    closers = Counter(p.closed_by for p in paths if p.closed_by is not None)
    closed_total = sum(closers.values())
    budget["stragglers"] = [
        {
            "acceptor": acceptor,
            "closed": count,
            "share": _round(count / closed_total),
        }
        for acceptor, count in sorted(
            closers.items(), key=lambda kv: (-kv[1], kv[0])
        )[:5]
    ]

    blocker_wait: dict[str, float] = {}
    blocker_msgs: Counter = Counter()
    for p in paths:
        if p.blocking_stream is not None:
            wait = p.segments["merge_wait"]
            blocker_wait[p.blocking_stream] = (
                blocker_wait.get(p.blocking_stream, 0.0) + wait
            )
            blocker_msgs[p.blocking_stream] += 1
    blocked_total = sum(blocker_wait.values())
    budget["blockers"] = [
        {
            "stream": stream,
            "messages": blocker_msgs[stream],
            "wait_ms": _round(1000.0 * wait),
            "share": _round(wait / blocked_total) if blocked_total > 0 else 0.0,
        }
        for stream, wait in sorted(
            blocker_wait.items(), key=lambda kv: (-kv[1], kv[0])
        )[:5]
    ]

    queue = [p.queue_wait for p in paths]
    wire = [p.wire_wait for p in paths]
    if any(q > 0.0 for q in queue) or any(w > 0.0 for w in wire):
        budget["transport_ms"] = {
            "queue": _dist_ms(queue),
            "wire": _dist_ms(wire),
        }
    return budget


def _fmt_ms(value: Optional[float]) -> str:
    return "-" if value is None else f"{value:.3f}"


def budget_lines(budget: dict) -> list[str]:
    """Human-readable rendering of a latency-budget report."""
    msgs = budget["messages"]
    lines = [
        f"messages: observed {msgs['observed']}, delivered "
        f"{msgs['delivered']}, complete {msgs['complete']} "
        f"(coverage {100.0 * budget['coverage']:.1f}%)",
    ]
    total = budget["total_ms"]
    lines.append(
        f"end-to-end submit->deliver: n={total['n']} "
        f"mean={_fmt_ms(total['mean'])}ms p50={_fmt_ms(total['p50'])}ms "
        f"p99={_fmt_ms(total['p99'])}ms"
    )
    if not budget["segments"]:
        lines.append("no complete lifecycles -- nothing to attribute")
        return lines
    lines.append("")
    lines.append(
        f"{'SEGMENT':<17}{'P50MS':>10}{'P99MS':>10}{'MEANMS':>10}{'SHARE':>8}"
        "  WHAT"
    )
    for seg in budget["segments"]:
        lines.append(
            f"{seg['name']:<17}{_fmt_ms(seg['p50']):>10}"
            f"{_fmt_ms(seg['p99']):>10}{_fmt_ms(seg['mean']):>10}"
            f"{100.0 * seg['share']:>7.1f}%  {seg['description']}"
        )
    lines.append(
        f"attributed: {100.0 * budget['attributed_share']:.1f}% of mean "
        "end-to-end latency in named segments"
    )
    if budget["stragglers"]:
        lines.append("")
        lines.append("quorum stragglers (who closed each instance):")
        for s in budget["stragglers"]:
            lines.append(
                f"  {s['acceptor']:<14} closed {s['closed']} "
                f"({100.0 * s['share']:.1f}%)"
            )
    if budget["blockers"]:
        lines.append("")
        lines.append("merge head-of-line blockers (stream being waited on):")
        for b in budget["blockers"]:
            lines.append(
                f"  {b['stream']:<14} blocked {b['messages']} msgs, "
                f"{b['wait_ms']:.3f}ms total ({100.0 * b['share']:.1f}%)"
            )
    transport = budget.get("transport_ms")
    if transport:
        q, w = transport["queue"], transport["wire"]
        lines.append("")
        lines.append(
            f"transport (live): queue p50={_fmt_ms(q['p50'])}ms "
            f"p99={_fmt_ms(q['p99'])}ms / wire+decode p50={_fmt_ms(w['p50'])}ms "
            f"p99={_fmt_ms(w['p99'])}ms"
        )
    return lines


def diff_budgets(base: dict, other: dict) -> list[str]:
    """Per-segment p50/p99/share deltas of ``other`` vs ``base``."""

    def delta(new: Optional[float], old: Optional[float]) -> str:
        if new is None or old is None:
            return "-"
        return f"{new - old:+.3f}"

    lines = [
        f"{'SEGMENT':<17}{'DP50MS':>10}{'DP99MS':>10}{'DSHARE':>9}"
    ]
    base_segs = {seg["name"]: seg for seg in base.get("segments", [])}
    for seg in other.get("segments", []):
        old = base_segs.get(seg["name"])
        if old is None:
            lines.append(f"{seg['name']:<17}{'new':>10}{'new':>10}{'new':>9}")
            continue
        share = (
            f"{100.0 * (seg['share'] - old['share']):+.1f}%"
            if seg["share"] is not None and old["share"] is not None
            else "-"
        )
        lines.append(
            f"{seg['name']:<17}{delta(seg['p50'], old['p50']):>10}"
            f"{delta(seg['p99'], old['p99']):>10}{share:>9}"
        )
    t_new, t_old = other.get("total_ms", {}), base.get("total_ms", {})
    lines.append(
        f"{'TOTAL':<17}{delta(t_new.get('p50'), t_old.get('p50')):>10}"
        f"{delta(t_new.get('p99'), t_old.get('p99')):>10}"
    )
    return lines


def load_budget(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        budget = json.load(handle)
    if budget.get("format") != BUDGET_FORMAT:
        raise ValueError(
            f"{path}: not a {BUDGET_FORMAT} report "
            f"(format={budget.get('format')!r})"
        )
    return budget


def write_budget(budget: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(budget, handle, indent=2, sort_keys=True)
        handle.write("\n")
