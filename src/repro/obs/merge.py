"""Clock-aligned merging of per-node live traces into one timeline.

A live multi-node run (``python -m repro live --nodes N
--telemetry-dir DIR``) streams one JSONL trace per node, each stamped
with that node's id and timed on that node's *local* wall clock
(seconds since its kernel started).  The clocks of two nodes never
start at the same instant, so the raw traces cannot simply be
concatenated: a message can appear to be delivered before it was
submitted.

This module turns those per-node traces into a single causally
consistent timeline that the existing tooling -- ``python -m repro
stats`` / ``validate-trace`` and :class:`repro.obs.spans.LifecycleIndex`
-- consumes unchanged:

1. **Offset discovery.**  Each node's trace carries ``meta.clock``
   events written by the live supervisor after an NTP-style handshake
   against the reference node's ``/clock`` endpoint (offset = node
   clock minus reference clock, estimated from the minimum-RTT sample;
   see :func:`repro.runtime.telemetry.estimate_offset`).  Explicit
   offsets override the recorded ones.
2. **Alignment.**  Every event's ``ts`` is shifted into the reference
   clock domain (``ts - offset``).
3. **Causal repair.**  Offset estimation is only RTT/2-accurate, so a
   residual skew can still invert a happened-before edge.  The merge
   therefore enforces two kinds of edges while interleaving: events of
   one node keep their local order, and the per-message lifecycle
   stages (submit -> propose -> phase2 -> decide -> learn -> deliver ->
   ack) stay non-decreasing in time, clamping a too-early timestamp up
   to the stage floor.
4. **Renumbering.**  ``seq`` is reassigned globally monotone (the
   original per-node value survives as ``node_seq``), so the merged
   file passes the schema validator's monotonicity check.

The merged timeline opens with a ``meta.merge`` header naming the
nodes and the offsets that were applied.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional, Sequence, TextIO, Union

__all__ = [
    "CAUSAL_STAGES",
    "cross_node_messages",
    "merge_events",
    "merge_files",
    "read_trace",
    "trace_offsets",
    "write_trace",
]

# Per-message lifecycle stage ranks: within one msg_id, an event of a
# later stage must not precede an event of an earlier one.
CAUSAL_STAGES: dict[str, int] = {
    "client.submit": 0,
    "coord.propose": 1,
    "coord.phase2": 2,
    "coord.decide": 3,
    "learner.learned": 4,
    "replica.deliver": 5,
    "client.ack": 6,
}


def read_trace(
    source: Union[str, TextIO, Iterable[str]],
    skip_malformed: bool = False,
) -> list[dict]:
    """Load a JSONL trace into a list of event dicts.

    With ``skip_malformed`` unparsable lines are dropped instead of
    raising.  A trace from a kill -9'd worker legitimately ends in a
    torn tail -- the sink's buffered write dies mid-line -- and the
    merge tool must salvage every complete event before it, so
    :func:`merge_files` reads with this on.  Non-dict lines (a bare
    JSON number or string that happens to parse) are skipped too.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return read_trace(handle, skip_malformed=skip_malformed)
    events = []
    for line in source:
        if not line.strip():
            continue
        if skip_malformed:
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                events.append(event)
        else:
            events.append(json.loads(line))
    return events


def write_trace(events: Iterable[dict], path: str) -> int:
    """Write events to ``path`` as JSONL; returns the count written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count


def _node_of(events: Sequence[dict], fallback: str) -> str:
    for event in events:
        node = event.get("node")
        if node is not None:
            return node
    return fallback


def trace_offsets(traces: dict[str, list[dict]]) -> dict[str, float]:
    """Clock offsets recorded in the traces' ``meta.clock`` events.

    Returns ``node -> offset`` where ``offset`` is the node's clock
    minus the reference node's clock; nodes without a recorded
    handshake default to 0.0 (same clock domain as the reference).
    The *last* handshake per node wins.
    """
    offsets = {node: 0.0 for node in traces}
    for node, events in traces.items():
        for event in events:
            if event.get("kind") == "meta.clock":
                offsets[event.get("node", node)] = float(event["offset"])
    return offsets


def merge_events(
    traces: dict[str, list[dict]],
    offsets: Optional[dict[str, float]] = None,
    header: bool = True,
) -> list[dict]:
    """Merge per-node event lists into one aligned, renumbered timeline.

    ``traces`` maps node id to that node's events (in emission order);
    ``offsets`` maps node id to its clock offset against the reference
    domain (discovered from ``meta.clock`` events when omitted).
    """
    if offsets is None:
        offsets = trace_offsets(traces)
    nodes = sorted(traces)
    # Working copies: shift every timestamp into the reference domain,
    # preserving each node's emission order.
    per_node: dict[str, list[dict]] = {}
    for node in nodes:
        aligned_events = []
        for event in traces[node]:
            aligned = dict(event)
            aligned["ts"] = float(event.get("ts", 0.0)) - offsets.get(node, 0.0)
            aligned["node"] = aligned.get("node", node)
            aligned["node_seq"] = event.get("seq")
            aligned_events.append(aligned)
        per_node[node] = aligned_events

    def msg_ids_of(event: dict) -> tuple:
        msg_id = event.get("msg_id")
        if msg_id is not None:
            return (msg_id,)
        return tuple(event.get("msg_ids") or ())

    # Causal repair to fixpoint.  Clamping a too-early timestamp up to
    # its per-message stage floor can break the owning node's local
    # monotonicity and vice versa, so alternate the two passes until
    # neither changes anything; clamps only ever *raise* timestamps, so
    # this converges (the cap is a safety net, not an expected exit).
    for _ in range(16):
        changed = False
        staged: dict[object, list] = {}
        for node in nodes:
            for event in per_node[node]:
                rank = CAUSAL_STAGES.get(event.get("kind"))
                if rank is None:
                    continue
                for msg_id in msg_ids_of(event):
                    staged.setdefault(msg_id, []).append((rank, event))
        for entries in staged.values():
            entries.sort(key=lambda pair: (pair[0], pair[1]["ts"]))
            floor = float("-inf")
            for _rank, event in entries:
                if event["ts"] < floor:
                    event["ts"] = floor
                    changed = True
                else:
                    floor = event["ts"]
        for node in nodes:
            floor = float("-inf")
            for event in per_node[node]:
                if event["ts"] < floor:
                    event["ts"] = floor
                    changed = True
                else:
                    floor = event["ts"]
        if not changed:
            break

    # K-way merge: every queue is now time-monotone, so popping the
    # smallest head yields a globally sorted timeline.  Equal
    # timestamps (the signature of a clamp) tie-break on lifecycle
    # stage rank so causal order holds in sequence too.
    heads = {node: 0 for node in nodes}
    merged: list[dict] = []
    while True:
        best_key = None
        best_node = None
        for node in nodes:
            index = heads[node]
            if index >= len(per_node[node]):
                continue
            event = per_node[node][index]
            key = (event["ts"], CAUSAL_STAGES.get(event.get("kind"), -1), node)
            if best_key is None or key < best_key:
                best_key, best_node = key, node
        if best_node is None:
            break
        merged.append(per_node[best_node][heads[best_node]])
        heads[best_node] += 1

    if header:
        first_ts = merged[0]["ts"] if merged else 0.0
        merged.insert(0, {
            "ts": first_ts,
            "seq": 0,
            "kind": "meta.merge",
            "cat": "meta",
            "nodes": nodes,
            "offsets": {node: offsets.get(node, 0.0) for node in nodes},
        })
    for seq, event in enumerate(merged):
        event["seq"] = seq
    return merged


def merge_files(
    paths: Sequence[str],
    out: Optional[str] = None,
    offsets: Optional[dict[str, float]] = None,
) -> list[dict]:
    """Merge per-node trace files; optionally write the result to ``out``.

    Reads tolerantly (``skip_malformed``): a node that died by kill -9
    leaves a torn final line, and the merged timeline must still carry
    everything that node flushed before dying.
    """
    traces: dict[str, list[dict]] = {}
    for index, path in enumerate(paths):
        events = read_trace(path, skip_malformed=True)
        node = _node_of(events, f"node{index + 1}")
        traces.setdefault(node, []).extend(events)
    merged = merge_events(traces, offsets=offsets)
    if out is not None:
        write_trace(merged, out)
    return merged


def cross_node_messages(events: Iterable[dict]) -> dict[object, set]:
    """Messages whose lifecycle events span more than one node.

    Returns ``msg_id -> {nodes}`` restricted to messages observed on at
    least two distinct nodes -- the live acceptance check that a
    message's lifecycle (submit -> decide -> deliver) really crossed
    the wire.
    """
    seen: dict[object, set] = {}
    for event in events:
        if event.get("kind") not in CAUSAL_STAGES:
            continue
        node = event.get("node")
        if node is None:
            continue
        msg_id = event.get("msg_id")
        ids = (msg_id,) if msg_id is not None else tuple(event.get("msg_ids") or ())
        for mid in ids:
            seen.setdefault(mid, set()).add(node)
    return {mid: nodes for mid, nodes in seen.items() if len(nodes) > 1}
