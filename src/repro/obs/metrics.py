"""Per-actor metrics registry built on the sim monitor primitives.

:class:`MetricsRegistry` hands out named :class:`~repro.sim.monitor.Counter`
(occurrences), :class:`Gauge` (sampled instantaneous values, e.g. inbox
depth or merge lag) and :class:`~repro.sim.monitor.Series` histograms
(distributions, e.g. checkpoint sizes) keyed by ``(actor, metric)``.
Instrumented code paths ask for metrics lazily::

    metrics = self.env.metrics
    if metrics is not None:
        metrics.counter(self.name, "retransmits").record()

so that -- like the tracer -- the default (no registry installed) costs
one attribute load and an ``is None`` test.

All instruments are created in *windowed* mode by default (see the
``window`` / ``max_samples`` knobs of the monitor primitives), so a
long chaos run's registry stays bounded in memory.

Install a registry process-wide with
:func:`repro.obs.trace.install_metrics` (or ``installed(metrics=...)``)
before creating the environment; the environment adopts it at
construction and binds it to virtual time.
"""

from __future__ import annotations

from typing import Optional

from ..sim.monitor import Counter, Series, percentile
from .trace import install_metrics, uninstall_metrics  # re-export convenience

__all__ = [
    "Gauge",
    "METRICS_DUMP_FORMAT",
    "MetricsRegistry",
    "install_metrics",
    "rows_from_dump",
    "uninstall_metrics",
]

# Format marker of a JSON metrics dump (`python -m repro stats` sniffs
# it to distinguish a dump from a trace JSONL file).
METRICS_DUMP_FORMAT = "repro-metrics/1"


class Gauge:
    """A sampled instantaneous value (last-write-wins semantics).

    Backed by a :class:`~repro.sim.monitor.Series` so history within the
    retention window is available for sparklines and percentiles.
    """

    def __init__(self, env, name: str = "", max_samples: Optional[int] = None):
        self.series = Series(env, name, max_samples=max_samples)
        self._last: Optional[float] = None
        self.peak: Optional[float] = None

    def record(self, value: float) -> None:
        self._last = value
        if self.peak is None or value > self.peak:
            self.peak = value
        self.series.record(value)

    @property
    def value(self) -> Optional[float]:
        """Most recently recorded value (None before the first sample)."""
        return self._last

    def __len__(self) -> int:
        return len(self.series)


class MetricsRegistry:
    """Counters, gauges and histograms keyed by ``(actor, metric)``."""

    def __init__(
        self,
        env=None,
        window: Optional[float] = None,
        max_samples: Optional[int] = 65536,
    ):
        self.env = env
        self.window = window
        self.max_samples = max_samples
        self._counters: dict[tuple[str, str], Counter] = {}
        self._gauges: dict[tuple[str, str], Gauge] = {}
        self._histograms: dict[tuple[str, str], Series] = {}

    def bind(self, env) -> None:
        """Adopt ``env`` as the clock source (first environment wins)."""
        if self.env is None:
            self.env = env

    def _require_env(self):
        if self.env is None:
            raise RuntimeError(
                "metrics registry is not bound to an environment yet"
            )
        return self.env

    # -- instruments -----------------------------------------------------

    def counter(self, actor: str, name: str) -> Counter:
        key = (actor, name)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(
                self._require_env(), f"{actor}:{name}", window=self.window,
                max_samples=self.max_samples,
            )
        return instrument

    def gauge(self, actor: str, name: str) -> Gauge:
        key = (actor, name)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(
                self._require_env(), f"{actor}:{name}",
                max_samples=self.max_samples,
            )
        return instrument

    def histogram(self, actor: str, name: str) -> Series:
        key = (actor, name)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Series(
                self._require_env(), f"{actor}:{name}", window=self.window,
                max_samples=self.max_samples,
            )
        return instrument

    def windowed_histogram(
        self, actor: str, name: str, window: float
    ) -> Series:
        """A histogram with an explicit per-instrument retention window
        (overriding the registry-wide default, which live registries
        leave unset).  Used by probes whose quantiles must reflect the
        recent window -- e.g. the event-loop-lag probe.  If the key
        already exists, the existing instrument (and its window) wins.
        """
        key = (actor, name)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Series(
                self._require_env(), f"{actor}:{name}", window=window,
                max_samples=self.max_samples,
            )
        return instrument

    # -- introspection ---------------------------------------------------

    def counters(self) -> dict[tuple[str, str], Counter]:
        """Live ``(actor, metric) -> Counter`` view (read-only use)."""
        return dict(self._counters)

    def gauges(self) -> dict[tuple[str, str], Gauge]:
        """Live ``(actor, metric) -> Gauge`` view (read-only use)."""
        return dict(self._gauges)

    def histograms(self) -> dict[tuple[str, str], Series]:
        """Live ``(actor, metric) -> Series`` view (read-only use)."""
        return dict(self._histograms)

    def actors(self) -> list[str]:
        names = {actor for actor, _ in self._counters}
        names.update(actor for actor, _ in self._gauges)
        names.update(actor for actor, _ in self._histograms)
        return sorted(names)

    def summary_rows(self) -> list[tuple[str, str, str, str]]:
        """``(actor, metric, kind, rendered value)`` rows, sorted.

        Counters render their lifetime total, gauges their last/peak
        samples, histograms mean and p95 of the retained samples.
        """
        rows: list[tuple[str, str, str, str]] = []
        for (actor, name), counter in self._counters.items():
            rows.append((actor, name, "counter", f"total={counter.total:g}"))
        for (actor, name), gauge in self._gauges.items():
            if gauge.value is None:
                rendered = "(no samples)"
            else:
                rendered = f"last={gauge.value:g} peak={gauge.peak:g}"
            rows.append((actor, name, "gauge", rendered))
        for (actor, name), series in self._histograms.items():
            if len(series) == 0:
                rendered = "(no samples)"
            else:
                values = series.values
                rendered = (
                    f"n={len(values)} mean={sum(values) / len(values):.4g} "
                    f"p95={percentile(values, 95):.4g}"
                )
            rows.append((actor, name, "histogram", rendered))
        rows.sort()
        return rows

    def dump(self) -> dict:
        """A JSON-serializable snapshot of every instrument.

        Written by live runs (``python -m repro live --metrics-out``)
        and read back by ``python -m repro stats``.
        """
        counters = [
            {"actor": actor, "name": name, "total": counter.total}
            for (actor, name), counter in self._counters.items()
        ]
        gauges = [
            {"actor": actor, "name": name, "last": gauge.value,
             "peak": gauge.peak}
            for (actor, name), gauge in self._gauges.items()
        ]
        histograms = []
        for (actor, name), series in self._histograms.items():
            values = series.values
            # Stat keys are always present -- explicit null rather than
            # absent -- so consumers (rows_from_dump, the Prometheus
            # renderer, `repro top`) never need per-key existence
            # checks and an unsampled histogram keeps its actor row.
            entry = {
                "actor": actor, "name": name, "n": len(values),
                "mean": None, "p50": None, "p95": None, "p99": None,
            }
            if values:
                entry.update(
                    mean=sum(values) / len(values),
                    p50=percentile(values, 50),
                    p95=percentile(values, 95),
                    p99=percentile(values, 99),
                )
            histograms.append(entry)
        return {
            "format": METRICS_DUMP_FORMAT,
            "counters": sorted(counters, key=lambda e: (e["actor"], e["name"])),
            "gauges": sorted(gauges, key=lambda e: (e["actor"], e["name"])),
            "histograms": sorted(
                histograms, key=lambda e: (e["actor"], e["name"])
            ),
        }


def rows_from_dump(data: dict) -> list[tuple[str, str, str, str]]:
    """Render a :meth:`MetricsRegistry.dump` back into summary rows."""
    if data.get("format") != METRICS_DUMP_FORMAT:
        raise ValueError(
            f"not a metrics dump (format={data.get('format')!r}, "
            f"expected {METRICS_DUMP_FORMAT!r})"
        )
    rows: list[tuple[str, str, str, str]] = []
    for entry in data.get("counters", ()):
        total = entry.get("total")
        rendered = "(no total)" if total is None else f"total={total:g}"
        rows.append((entry["actor"], entry["name"], "counter", rendered))
    for entry in data.get("gauges", ()):
        if entry.get("last") is None:
            rendered = "(no samples)"
        else:
            rendered = f"last={entry['last']:g} peak={entry['peak']:g}"
        rows.append((entry["actor"], entry["name"], "gauge", rendered))
    for entry in data.get("histograms", ()):
        if not entry.get("n") or entry.get("mean") is None:
            rendered = "(no samples)"
        else:
            rendered = (
                f"n={entry['n']} mean={entry['mean']:.4g} "
                f"p95={entry['p95']:.4g}"
            )
        rows.append((entry["actor"], entry["name"], "histogram", rendered))
    rows.sort()
    return rows
