"""Flight recorder: a bounded ring buffer of recent trace events.

The recorder is a tracer sink that keeps the last ``capacity`` events in
memory.  When a safety invariant fires during a fault-injection run, the
scenario runner dumps the buffer to a JSONL file, so every ``INVARIANT
VIOLATION`` ships with the causal history that led up to it -- which
message was submitted where, how it was ordered, and who delivered it.

:meth:`FlightRecorder.causal_history` filters the buffer down to the
events that mention one message id (``msg_id`` field, ``msg_ids`` batch
lists, or ``request_id`` for control messages), reconstructing that
message's submit -> propose -> Phase 2 -> decide -> learn -> deliver
path.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Optional

__all__ = ["FlightRecorder"]


class FlightRecorder:
    """Ring-buffer trace sink with JSONL dump support."""

    def __init__(self, capacity: int = 100_000):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._buffer: deque[dict] = deque(maxlen=capacity)
        self.recorded = 0          # lifetime count (>= len(buffer))

    def record(self, event: dict) -> None:
        self.recorded += 1
        self._buffer.append(event)

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound."""
        return self.recorded - len(self._buffer)

    def events(self) -> list[dict]:
        """Snapshot of the buffered events, oldest first."""
        return list(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()

    # -- causal filtering ------------------------------------------------

    @staticmethod
    def _mentions(event: dict, msg_id: int) -> bool:
        if event.get("msg_id") == msg_id or event.get("request_id") == msg_id:
            return True
        ids = event.get("msg_ids")
        return ids is not None and msg_id in ids

    def causal_history(self, msg_id: int) -> list[dict]:
        """Every buffered event that mentions ``msg_id``, oldest first."""
        return [e for e in self._buffer if self._mentions(e, msg_id)]

    # -- dumping ---------------------------------------------------------

    def dump(
        self,
        path: str,
        header: Optional[dict] = None,
    ) -> int:
        """Write the buffer to ``path`` as JSONL; returns events written.

        ``header``, when given, is emitted as a leading ``meta.violation``
        event (schema-valid) carrying the violation message and, when
        known, the violating ``msg_id`` -- so a dump is self-describing.
        """
        events = self.events()
        with open(path, "w", encoding="utf-8") as handle:
            if header is not None:
                first_ts = events[0]["ts"] if events else 0.0
                meta = {
                    "ts": header.get("ts", first_ts),
                    "seq": -1,
                    "kind": "meta.violation",
                    "cat": "meta",
                }
                meta.update({k: v for k, v in header.items() if k != "ts"})
                meta.setdefault("message", "")
                handle.write(json.dumps(meta, separators=(",", ":")) + "\n")
            for event in events:
                handle.write(json.dumps(event, separators=(",", ":")) + "\n")
        return len(events)
