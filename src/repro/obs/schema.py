"""Trace event schema: the catalogue of kinds and their required fields.

Every event is one JSON object per line (JSONL).  All events carry the
envelope fields ``ts`` (virtual time, float), ``seq`` (monotone int),
``kind`` (string from :data:`EVENT_SCHEMA`) and ``cat`` (category).
:data:`EVENT_SCHEMA` maps each kind to the payload fields it must also
carry; extra fields are allowed (the schema is open for forward
compatibility), missing required fields are an error.

:func:`validate_event` / :func:`validate_file` are what the CI trace
smoke test runs against the output of ``python -m repro trace``.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator, TextIO, Union

__all__ = ["EVENT_SCHEMA", "SchemaError", "validate_event", "validate_file"]


class SchemaError(ValueError):
    """A trace event does not match the schema."""


# kind -> required payload fields (beyond the ts/seq/kind/cat envelope).
EVENT_SCHEMA: dict[str, tuple[str, ...]] = {
    # simulation kernel (category "sim"; opt-in)
    "sim.process": (),
    # network wire level (category "net"; opt-in)
    "net.send": ("src", "dst", "type", "size"),
    "net.drop": ("src", "dst", "type", "reason"),
    "net.deliver": ("src", "dst", "type", "latency", "inbox_depth"),
    "net.duplicate": ("src", "dst", "type"),
    # network fault state changes (category "fault"; on by default)
    "net.partition": ("side_a", "side_b"),
    "net.unpartition": ("side_a", "side_b"),
    "net.heal": (),
    # actor lifecycle / dispatch
    "actor.crash": ("name",),
    "actor.recover": ("name",),
    "actor.dispatch": ("name", "src", "type"),     # category "dispatch"; opt-in
    # client-side message lifecycle
    "client.submit": ("client", "stream", "msg_id", "size"),
    "client.ack": ("client", "msg_id", "latency"),
    "client.timeout": ("client", "stream", "msg_id"),
    # dynamic-subscription control plane
    "control.subscribe": ("client", "group", "stream", "via", "request_id"),
    "control.unsubscribe": ("client", "group", "stream", "request_id"),
    "control.prepare": ("client", "group", "stream", "via", "request_id"),
    # coordinator (per-stream leader)
    "coord.phase1": ("coordinator", "stream", "ballot"),
    "coord.lead": ("coordinator", "stream", "ballot"),
    "coord.propose": ("coordinator", "stream", "type"),
    "coord.skip": ("coordinator", "stream", "count"),
    "coord.phase2": ("coordinator", "stream", "instance", "msg_ids", "positions"),
    "coord.retransmit": ("coordinator", "stream", "instance"),
    "coord.decide": ("coordinator", "stream", "instance", "positions"),
    # learner tasks
    "learner.learned": ("replica", "stream", "instance", "msg_ids", "positions"),
    "learner.recover.request": ("owner", "stream", "from_instance", "to_instance"),
    "learner.recover.reply": ("owner", "stream", "decided", "trimmed_below"),
    "learner.gap_repair": ("owner", "stream", "from_instance", "to_instance"),
    # deterministic merge (dMerge)
    "merge.subscribe.begin": ("replica", "group", "stream", "request_id"),
    "merge.subscribe.commit": (
        "replica", "group", "stream", "request_id", "merge_point", "waited",
    ),
    "merge.unsubscribe": ("replica", "group", "stream", "request_id"),
    "merge.prepare": ("replica", "group", "stream", "request_id"),
    # dMerge head-of-line wait ended: the merger's round-robin turn was
    # blocked ``waited`` seconds on ``stream`` before it produced the
    # next token (latency-attribution hint, docs/OBSERVABILITY.md).
    "merge.head_of_line": ("replica", "group", "stream", "waited"),
    # replica delivery (the end of a message's life)
    "replica.deliver": ("replica", "group", "stream", "position", "msg_id"),
    # fault injection & invariant checking
    "fault.inject": ("action",),
    "invariant.violation": ("message",),
    # elasticity controller (docs/ELASTICITY.md): one poll per control
    # tick, one decision per rule that cleared hysteresis/cooldown, and
    # one action per reconfiguration actually issued.  The action's
    # request_id is the same id the control.subscribe / merge.* events
    # carry, which is how validate-trace-era tooling links a decision
    # to the reconfiguration it caused.
    "elastic.poll": ("controller",),
    "elastic.decision": ("controller", "rule", "action", "mode"),
    "elastic.action": ("controller", "action", "stream", "request_id"),
    # flight-recorder dump metadata
    "meta.violation": ("message",),
    # live telemetry plane (docs/OBSERVABILITY.md, "Live mode")
    "net.context": ("src", "dst", "origin"),    # wire trace context arrived
    # Live transport: frame left the per-peer send queue after ``wait``
    # seconds (queue vs. wire split for latency attribution).
    "transport.queue_wait": ("dst", "msg_id", "wait"),
    "meta.node": ("node", "clock"),             # per-node trace header
    "meta.clock": ("node", "ref", "offset"),    # handshake offset estimate
    "meta.merge": ("nodes",),                   # merged-timeline header
    # online audit & watchdog plane (docs/OBSERVABILITY.md, "Online
    # audit").  audit.check summarises one certification pass;
    # audit.violation is a proved safety-property breach; alert.raise /
    # alert.clear are watchdog anomaly transitions (the detector name
    # travels in the payload, not the kind, so the kind set stays
    # closed and validate-trace keeps rejecting unknown kinds).
    "audit.check": ("events", "violations"),
    "audit.violation": ("property", "message"),
    "alert.raise": ("detector", "severity", "message"),
    "alert.clear": ("detector",),
}

_ENVELOPE = ("ts", "seq", "kind", "cat")


def validate_event(event: dict) -> None:
    """Raise :class:`SchemaError` unless ``event`` matches the schema."""
    if not isinstance(event, dict):
        raise SchemaError(f"event is not an object: {event!r}")
    for key in _ENVELOPE:
        if key not in event:
            raise SchemaError(f"event missing envelope field {key!r}: {event!r}")
    if not isinstance(event["ts"], (int, float)):
        raise SchemaError(f"ts is not a number: {event!r}")
    if not isinstance(event["seq"], int):
        raise SchemaError(f"seq is not an integer: {event!r}")
    kind = event["kind"]
    try:
        required = EVENT_SCHEMA[kind]
    except KeyError:
        raise SchemaError(f"unknown event kind {kind!r}") from None
    for field in required:
        if field not in event:
            raise SchemaError(
                f"{kind} event missing required field {field!r}: {event!r}"
            )


def validate_file(source: Union[str, TextIO, Iterable[str]]) -> int:
    """Validate a JSONL trace; returns the number of events checked.

    ``source`` is a path, an open text file, or an iterable of lines.
    Raises :class:`SchemaError` (with the line number) on the first
    invalid line; an empty trace is an error -- a run that traced
    nothing should fail loudly.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            return validate_file(handle)
    count = 0
    last_seq = None
    for lineno, line in enumerate(_lines(source), start=1):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"line {lineno}: invalid JSON: {exc}") from None
        try:
            validate_event(event)
        except SchemaError as exc:
            raise SchemaError(f"line {lineno}: {exc}") from None
        if last_seq is not None and event["seq"] <= last_seq:
            raise SchemaError(
                f"line {lineno}: seq {event['seq']} not monotonically "
                f"increasing (previous {last_seq})"
            )
        last_seq = event["seq"]
        count += 1
    if count == 0:
        raise SchemaError("trace contains no events")
    return count


def _lines(source: Union[TextIO, Iterable[str]]) -> Iterator[str]:
    for line in source:
        yield line
