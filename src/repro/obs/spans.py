"""Causal message-lifecycle spans built from trace events.

:class:`LifecycleIndex` consumes protocol-level trace events (streaming,
as a tracer sink, or in bulk from a recorded JSONL file) and correlates
them by message id into one :class:`MessageLifecycle` per application
message:

    client submit -> coordinator propose -> Phase 2 sent -> decided
    -> learned (per replica) -> delivered by the dMerge (per replica)
    -> client ack

from which the per-stage latency breakdown of the end-to-end path is
derived.  Subscribe/unsubscribe switches are tracked the same way by
``request_id`` (:class:`SubscriptionTimeline`), including the merge
point each replica committed.

Stage definitions (seconds of virtual time):

=================  =====================================================
``submit->propose``  client submission to coordinator admission
``propose->phase2``  coordinator queueing/batching/CPU until Phase 2a
``phase2->decide``   quorum latency of the consensus instance
``decide->learn``    decision dissemination to a replica's learner task
``learn->deliver``   dMerge latency (merge-order wait) at that replica
``submit->deliver``  end-to-end, per replica
``submit->ack``      client-observed latency (first replica ack)
=================  =====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .recorder import FlightRecorder

__all__ = ["LifecycleIndex", "MessageLifecycle", "SubscriptionTimeline", "STAGES"]

STAGES = (
    "submit->propose",
    "propose->phase2",
    "phase2->decide",
    "decide->learn",
    "learn->deliver",
    "submit->deliver",
    "submit->ack",
)


@dataclass
class MessageLifecycle:
    """Everything observed about one application message."""

    msg_id: int
    stream: Optional[str] = None
    submitted_at: Optional[float] = None
    proposed_at: Optional[float] = None
    phase2_at: Optional[float] = None          # first Phase 2 send
    instance: Optional[int] = None
    decided_at: Optional[float] = None
    learned_at: dict = field(default_factory=dict)    # replica -> time
    delivered_at: dict = field(default_factory=dict)  # replica -> time
    position: Optional[int] = None
    acked_at: Optional[float] = None
    # Attribution extras (docs/OBSERVABILITY.md, "Latency attribution"):
    # the acceptor whose 2b (or ring decision) closed the instance, the
    # summed transport send-queue wait of this message's frames (live
    # mode), and raw ``net.context`` arrivals ``(ts, origin, origin_ts)``
    # from which queue-vs-wire transit is derived by repro.obs.critpath.
    closed_by: Optional[str] = None
    queue_wait: float = 0.0
    queue_wait_events: int = 0
    context_arrivals: list = field(default_factory=list)

    @property
    def delivered(self) -> bool:
        return bool(self.delivered_at)

    @property
    def complete(self) -> bool:
        """True when the submit -> deliver path is fully reconstructed."""
        return (
            self.submitted_at is not None
            and self.proposed_at is not None
            and self.phase2_at is not None
            and self.decided_at is not None
            and bool(self.learned_at)
            and bool(self.delivered_at)
        )

    def stage_latencies(self) -> dict[str, float]:
        """Per-stage latencies (only stages with both endpoints known)."""
        out: dict[str, float] = {}

        def put(stage: str, start: Optional[float], end: Optional[float]):
            if start is not None and end is not None:
                # Clock-adjusted merged traces can leave residual skew on
                # stages outside the causal-repair set; never report a
                # negative latency.
                delta = end - start
                out[stage] = delta if delta > 0.0 else 0.0

        put("submit->propose", self.submitted_at, self.proposed_at)
        put("propose->phase2", self.proposed_at, self.phase2_at)
        put("phase2->decide", self.phase2_at, self.decided_at)
        first_learn = min(self.learned_at.values()) if self.learned_at else None
        first_deliver = (
            min(self.delivered_at.values()) if self.delivered_at else None
        )
        put("decide->learn", self.decided_at, first_learn)
        put("learn->deliver", first_learn, first_deliver)
        put("submit->deliver", self.submitted_at, first_deliver)
        put("submit->ack", self.submitted_at, self.acked_at)
        return out


@dataclass
class SubscriptionTimeline:
    """One subscribe/unsubscribe/prepare switch, by request id."""

    request_id: int
    kind: str = "subscribe"            # subscribe | unsubscribe | prepare
    group: Optional[str] = None
    stream: Optional[str] = None
    requested_at: Optional[float] = None
    begun_at: dict = field(default_factory=dict)      # replica -> time
    committed_at: dict = field(default_factory=dict)  # replica -> time
    merge_points: dict = field(default_factory=dict)  # replica -> position

    @property
    def switch_duration(self) -> Optional[float]:
        """Request to last replica commit (None until committed)."""
        if self.requested_at is None or not self.committed_at:
            return None
        return max(self.committed_at.values()) - self.requested_at


class LifecycleIndex:
    """Correlates trace events into message lifecycles.

    Use as a streaming tracer sink (it exposes ``record``), or feed a
    recorded trace via :meth:`consume_all` / :meth:`from_jsonl`.
    """

    def __init__(self):
        self.messages: dict[int, MessageLifecycle] = {}
        self.subscriptions: dict[int, SubscriptionTimeline] = {}
        # (stream, instance) -> msg_ids, for decide/learn correlation
        # when a decide event arrives before its phase2 counterpart has
        # been indexed (retransmission paths).
        self._instance_msgs: dict[tuple[str, int], tuple[int, ...]] = {}
        self.events_seen = 0
        # merge.head_of_line episodes: (replica, end_ts, waited, stream);
        # critpath.py blames each message's merge wait on the episode
        # overlapping its learn->deliver window.
        self.hol_episodes: list[tuple[str, float, float, str]] = []
        # node -> clock offset applied by trace-merge (meta.clock /
        # meta.merge); used to align raw ``origin_ts`` sender clocks.
        self.clock_offsets: dict[str, float] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def from_jsonl(cls, path: str) -> "LifecycleIndex":
        index = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                if line.strip():
                    index.record(json.loads(line))
        return index

    @classmethod
    def from_recorder(cls, recorder: FlightRecorder) -> "LifecycleIndex":
        index = cls()
        index.consume_all(recorder.events())
        return index

    def consume_all(self, events: Iterable[dict]) -> "LifecycleIndex":
        for event in events:
            self.record(event)
        return self

    def _message(self, msg_id: int) -> MessageLifecycle:
        lifecycle = self.messages.get(msg_id)
        if lifecycle is None:
            lifecycle = self.messages[msg_id] = MessageLifecycle(msg_id)
        return lifecycle

    def _subscription(self, request_id: int) -> SubscriptionTimeline:
        timeline = self.subscriptions.get(request_id)
        if timeline is None:
            timeline = self.subscriptions[request_id] = SubscriptionTimeline(
                request_id
            )
        return timeline

    # -- the sink --------------------------------------------------------

    def record(self, event: dict) -> None:  # noqa: C901 - a dispatch table
        self.events_seen += 1
        kind = event.get("kind")
        ts = event.get("ts", 0.0)
        if kind == "client.submit":
            m = self._message(event["msg_id"])
            if m.submitted_at is None:      # retries keep the first attempt
                m.submitted_at = ts
                m.stream = event.get("stream")
        elif kind == "client.ack":
            m = self._message(event["msg_id"])
            if m.acked_at is None:
                m.acked_at = ts
        elif kind == "coord.propose":
            msg_id = event.get("msg_id")
            if msg_id is not None:
                m = self._message(msg_id)
                if m.proposed_at is None:
                    m.proposed_at = ts
                    if m.stream is None:
                        m.stream = event.get("stream")
        elif kind == "coord.phase2":
            key = (event["stream"], event["instance"])
            ids = tuple(event.get("msg_ids") or ())
            self._instance_msgs.setdefault(key, ids)
            for msg_id in ids:
                m = self._message(msg_id)
                if m.phase2_at is None:
                    m.phase2_at = ts
                    m.instance = event["instance"]
        elif kind == "coord.decide":
            key = (event["stream"], event["instance"])
            closed_by = event.get("closed_by")
            for msg_id in self._instance_msgs.get(key, ()):
                m = self._message(msg_id)
                if m.decided_at is None:
                    m.decided_at = ts
                    if closed_by is not None:
                        m.closed_by = closed_by
        elif kind == "learner.learned":
            replica = event["replica"]
            for msg_id in event.get("msg_ids") or ():
                m = self._message(msg_id)
                m.learned_at.setdefault(replica, ts)
        elif kind == "replica.deliver":
            m = self._message(event["msg_id"])
            m.delivered_at.setdefault(event["replica"], ts)
            if m.position is None:
                m.position = event.get("position")
            if m.stream is None:
                m.stream = event.get("stream")
        elif kind in ("control.subscribe", "control.unsubscribe", "control.prepare"):
            t = self._subscription(event["request_id"])
            t.kind = kind.rpartition(".")[2]
            t.group = event.get("group")
            t.stream = event.get("stream")
            if t.requested_at is None:
                t.requested_at = ts
        elif kind == "merge.subscribe.begin":
            t = self._subscription(event["request_id"])
            t.begun_at.setdefault(event["replica"], ts)
        elif kind == "merge.subscribe.commit":
            t = self._subscription(event["request_id"])
            t.committed_at.setdefault(event["replica"], ts)
            t.merge_points[event["replica"]] = event["merge_point"]
        elif kind == "merge.unsubscribe":
            t = self._subscription(event["request_id"])
            t.kind = "unsubscribe"
            t.committed_at.setdefault(event["replica"], ts)
        elif kind == "merge.head_of_line":
            waited = event.get("waited", 0.0)
            if waited > 0.0:
                self.hol_episodes.append(
                    (event["replica"], ts, waited, event.get("stream", "?"))
                )
        elif kind == "transport.queue_wait":
            msg_id = event.get("msg_id")
            if msg_id is not None:
                m = self._message(msg_id)
                wait = event.get("wait", 0.0)
                if wait > 0.0:
                    m.queue_wait += wait
                m.queue_wait_events += 1
        elif kind == "net.context":
            msg_id = event.get("msg_id")
            if msg_id is not None:
                m = self._message(msg_id)
                m.context_arrivals.append(
                    (ts, event.get("origin"), event.get("origin_ts"))
                )
        elif kind == "meta.clock":
            node = event.get("node")
            if node is not None:
                self.clock_offsets[node] = event.get("offset", 0.0)
        elif kind == "meta.merge":
            for node, offset in (event.get("offsets") or {}).items():
                self.clock_offsets[node] = offset

    # -- analysis --------------------------------------------------------

    def delivered_messages(self) -> list[MessageLifecycle]:
        return [m for m in self.messages.values() if m.delivered]

    def complete_messages(self) -> list[MessageLifecycle]:
        return [m for m in self.messages.values() if m.complete]

    def stage_samples(self) -> dict[str, list[float]]:
        """All per-stage latency samples across delivered messages."""
        samples: dict[str, list[float]] = {stage: [] for stage in STAGES}
        for lifecycle in self.messages.values():
            if not lifecycle.delivered:
                continue
            for stage, latency in lifecycle.stage_latencies().items():
                samples[stage].append(latency)
        return samples

    def coverage(self) -> tuple[int, int]:
        """``(complete, delivered)`` message counts -- how many delivered
        messages have a fully reconstructed submit -> deliver path."""
        delivered = self.delivered_messages()
        return sum(1 for m in delivered if m.complete), len(delivered)
