"""Structured trace event bus with a near-zero-cost no-op default.

Every layer of the reproduction -- the simulation kernel, the network,
actor dispatch, the Paxos roles, the elastic merger and the clients --
carries instrumentation points of the form::

    tracer = self.env.tracer
    if tracer is not None:
        tracer.emit("coord.decide", self.env.now, stream=..., instance=...)

When no tracer is installed (the default), every probe costs one
attribute load and an ``is None`` test, which keeps the traced hot
paths within the experiment wall-clock budget.  When a tracer *is*
installed, events are typed dictionaries

    ``{"ts": <virtual time>, "seq": <int>, "kind": <str>, "cat": <str>,
       ...payload fields...}``

fanned out to the attached sinks (an in-memory list, a JSONL file, the
flight recorder's ring buffer, or a streaming consumer such as the
:class:`repro.obs.spans.LifecycleIndex`).

Installation
------------
A tracer is installed process-wide with :func:`install` /
:func:`uninstall` (or the :func:`installed` context manager) **before**
the :class:`repro.sim.core.Environment` is created: the environment
captures the current tracer at construction, so already-running
simulations are unaffected by later installs.  The metrics registry
(:mod:`repro.obs.metrics`) uses the same slot mechanism, defined here so
that the kernel only ever needs to import this dependency-free module.

Categories
----------
The category of an event defaults to the ``kind`` prefix before the
first dot (``net.send`` -> ``net``).  High-volume wire/kernel categories
(``net``, ``sim``, ``dispatch``) are excluded by default; pass
``categories=ALL_CATEGORIES`` (or an explicit set) to capture them.
"""

from __future__ import annotations

import contextlib
import itertools
import json
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "ALL_CATEGORIES",
    "DEFAULT_CATEGORIES",
    "JsonlSink",
    "ListSink",
    "Tracer",
    "current_metrics",
    "current_tracer",
    "install",
    "install_metrics",
    "installed",
    "uninstall",
    "uninstall_metrics",
]

# Protocol-level categories captured by default: these carry msg_id /
# request_id correlation and are what the lifecycle spans are built
# from.  The wire- and kernel-level firehoses are opt-in.
DEFAULT_CATEGORIES = frozenset(
    {
        "client",
        "control",
        "coord",
        "learner",
        "merge",
        "replica",
        "actor",
        "fault",
        "invariant",
        "elastic",
        "meta",
        "transport",
        "audit",
        "alert",
    }
)
_NOISY_CATEGORIES = frozenset({"net", "sim", "dispatch"})
ALL_CATEGORIES = DEFAULT_CATEGORIES | _NOISY_CATEGORIES


class ListSink:
    """Collects events into an in-memory list (tests, small runs)."""

    def __init__(self):
        self.events: list[dict] = []

    def record(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class JsonlSink:
    """Streams events to a JSON-lines file, one event per line."""

    def __init__(self, path: str):
        self.path = path
        self._file = open(path, "w", encoding="utf-8")
        self.written = 0

    def record(self, event: dict) -> None:
        self._file.write(json.dumps(event, separators=(",", ":")))
        self._file.write("\n")
        self.written += 1

    def flush(self) -> None:
        """Push buffered lines to disk so a live tail can see them."""
        if not self._file.closed:
            self._file.flush()

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


class Tracer:
    """Fans typed trace events out to its sinks.

    Parameters
    ----------
    sinks:
        Objects with a ``record(event: dict)`` method.  A plain callable
        is also accepted.
    categories:
        Set of category names to capture; defaults to
        :data:`DEFAULT_CATEGORIES`.  Use :data:`ALL_CATEGORIES` to
        include the wire/kernel firehoses.
    node:
        Optional node id of the emitting process/clock domain.  When
        set, every event is stamped with a ``node`` field and ``ts``
        is understood as that node's local clock; the trace-merge tool
        (:mod:`repro.obs.merge`) aligns such per-node traces onto one
        timeline.  Sim traces (one process, one virtual clock) leave it
        unset, and their events are byte-identical to before.
    clock:
        Clock-domain label stamped alongside ``node`` in the
        ``meta.node`` header event: ``"virtual"`` (sim) or ``"wall"``
        (live node-local seconds since kernel start).
    """

    def __init__(
        self,
        sinks: Iterable[Any] = (),
        categories: Optional[Iterable[str]] = None,
        node: Optional[str] = None,
        clock: str = "virtual",
    ):
        self._sinks: list[Callable[[dict], None]] = []
        self._sink_objs: list[Any] = []
        for sink in sinks:
            self.add_sink(sink)
        self.node = node
        self.clock = clock
        self.categories = frozenset(
            categories if categories is not None else DEFAULT_CATEGORIES
        )
        # Cached membership tests for the hottest guard sites.
        self.wants_net = "net" in self.categories
        self.wants_sim = "sim" in self.categories
        self.wants_dispatch = "dispatch" in self.categories
        self._seq = itertools.count()
        self.emitted = 0

    def add_sink(self, sink: Any) -> None:
        self._sink_objs.append(sink)
        self._sinks.append(sink.record if hasattr(sink, "record") else sink)

    def wants(self, category: str) -> bool:
        return category in self.categories

    def emit(self, kind: str, at: float, cat: Optional[str] = None, **fields) -> None:
        """Record one event at virtual time ``at``.

        ``cat`` defaults to the ``kind`` prefix before the first dot.
        Fields must be JSON-serialisable (strings, numbers, lists).
        """
        category = cat if cat is not None else kind.partition(".")[0]
        if category not in self.categories:
            return
        event = {"ts": at, "seq": next(self._seq), "kind": kind, "cat": category}
        if self.node is not None:
            event["node"] = self.node
        event.update(fields)
        self.emitted += 1
        for sink in self._sinks:
            sink(event)

    def close(self) -> None:
        for sink in self._sink_objs:
            close = getattr(sink, "close", None)
            if close is not None:
                close()


# -- process-wide install slots ------------------------------------------
#
# The kernel (repro.sim.core.Environment) captures these at construction.
# They live here -- not in repro.obs.__init__ -- so that importing them
# from the kernel never drags in modules that themselves import the
# kernel (repro.obs.metrics builds on repro.sim.monitor).

_current_tracer: Optional[Tracer] = None
_current_metrics: Optional[Any] = None


def current_tracer() -> Optional[Tracer]:
    """The process-wide tracer new environments will adopt (or None)."""
    return _current_tracer


def install(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the process-wide default for new environments."""
    global _current_tracer
    _current_tracer = tracer
    return tracer


def uninstall() -> None:
    global _current_tracer
    _current_tracer = None


def current_metrics() -> Optional[Any]:
    """The process-wide metrics registry for new environments (or None)."""
    return _current_metrics


def install_metrics(registry: Any) -> Any:
    global _current_metrics
    _current_metrics = registry
    return registry


def uninstall_metrics() -> None:
    global _current_metrics
    _current_metrics = None


@contextlib.contextmanager
def installed(
    tracer: Optional[Tracer] = None, metrics: Optional[Any] = None
):
    """Context manager: install a tracer and/or metrics registry for the
    duration of the block (environment construction must happen inside)."""
    if tracer is not None:
        install(tracer)
    if metrics is not None:
        install_metrics(metrics)
    try:
        yield tracer
    finally:
        if tracer is not None:
            uninstall()
        if metrics is not None:
            uninstall_metrics()
