"""Anomaly watchdog over the online certifier and telemetry plane.

The certifier (:mod:`repro.obs.audit`) proves *safety* violations; this
module flags *anomalies* -- conditions that are not yet violations but
mean an operator (or the elasticity controller) should look:

========================  =============================================
``watermark_stall``       a stream's low delivery watermark stopped
                          advancing while the high one is ahead (a
                          replica is stuck or a worker is dead)
``quorum_stall``          proposals outstanding but no ``coord.decide``
                          for longer than the bound (acceptor quorum
                          lost)
``clock_drift``           a node's estimated clock offset exceeds the
                          bound the NTP-style handshake should keep it
                          under
``backpressure``          a transport send queue is near capacity
``delivery_collapse``     delivered values/s collapsed versus the
                          trailing window while submissions continue
``reconfig_stall``        a requested subscribe/split/replace has not
                          committed within the liveness bound
``unreachable``           a telemetry endpoint stopped answering
                          (endpoints mode only)
========================  =============================================

Detectors are pluggable: anything with ``name`` and
``observe(sample) -> list[Alert]`` returning the alerts *currently
firing*.  :class:`Watchdog` diffs consecutive firing sets into
``alert.raise`` / ``alert.clear`` transitions, keeps the active set,
scores health (100 = clean), and -- when given a tracer -- emits the
transitions as schema-valid ``alert.*`` trace events so they land in
the node's JSONL trace *and* its FlightRecorder ring (causal context
for any later dump).

Front ends:

:class:`TraceWatch`
    Tails a run directory with the incremental reader, feeds the
    certifier, samples it for the watchdog, and appends violations and
    alert transitions to a JSONL alert log (schema-valid; see
    ``audit.*`` / ``alert.*`` in :mod:`repro.obs.schema`).  This is
    ``python -m repro watch <dir>`` and the deploy supervisor's live
    certification task.

:class:`EndpointsWatch`
    Polls a live cluster's ``/health`` endpoints (no trace files
    needed) and runs the telemetry-level detectors, including
    ``unreachable``.  This is ``python -m repro watch endpoints.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Optional

from .audit import AuditViolation, SafetyCertifier, TraceDirectorySource

__all__ = [
    "Alert",
    "BackpressureDetector",
    "ClockDriftDetector",
    "DeliveryCollapseDetector",
    "EndpointsWatch",
    "QuorumStallDetector",
    "ReconfigStallDetector",
    "TraceWatch",
    "UnreachableDetector",
    "Watchdog",
    "WatermarkStallDetector",
    "default_node_detectors",
    "default_trace_detectors",
    "sample_from_health",
]

SEVERITIES = ("info", "warning", "critical")
_PENALTY = {"info": 5, "warning": 15, "critical": 40}


@dataclass(frozen=True)
class Alert:
    """One firing anomaly.  ``(detector, key)`` identifies it across
    ticks -- the watchdog uses that pair to tell a still-firing alert
    from a fresh one."""

    detector: str
    severity: str
    message: str
    at: float
    key: str = ""
    node: Optional[str] = None

    def to_json(self) -> dict:
        payload = {
            "detector": self.detector, "severity": self.severity,
            "message": self.message, "at": self.at, "key": self.key,
        }
        if self.node is not None:
            payload["node"] = self.node
        return payload


# -- detectors ---------------------------------------------------------
#
# Samples are plain dicts (see SafetyCertifier.watch_sample and
# sample_from_health) with at least {"at": float}; each detector reads
# the keys it understands and ignores the rest, so both trace-level and
# endpoint-level samples feed the same detector types.

class WatermarkStallDetector:
    """Low watermark frozen while the high one is ahead."""

    name = "watermark_stall"

    def __init__(self, stall_after: float = 2.0, min_gap: int = 1):
        self.stall_after = stall_after
        self.min_gap = min_gap
        self._lows: dict[str, tuple[int, float]] = {}   # stream -> (low, since)

    def observe(self, sample: Mapping) -> list[Alert]:
        at = float(sample.get("at", 0.0))
        streams = sample.get("streams", {})
        alerts: list[Alert] = []
        for stream in list(self._lows):
            if stream not in streams:
                del self._lows[stream]
        for stream, entry in streams.items():
            low = entry.get("low")
            high = entry.get("high")
            if low is None or high is None:
                continue
            previous = self._lows.get(stream)
            if previous is None or low != previous[0]:
                self._lows[stream] = (low, at)
                continue
            stalled = at - previous[1]
            if high - low >= self.min_gap and stalled > self.stall_after:
                alerts.append(Alert(
                    detector=self.name, severity="warning", key=stream,
                    at=at, message=(
                        f"stream {stream}: low watermark stuck at {low} "
                        f"for {stalled:.1f}s while high is {high}"
                    ),
                ))
        return alerts


class QuorumStallDetector:
    """Proposals outstanding, no decide for longer than the bound."""

    name = "quorum_stall"

    def __init__(self, stall_after: float = 2.0):
        self.stall_after = stall_after

    def observe(self, sample: Mapping) -> list[Alert]:
        at = float(sample.get("at", 0.0))
        alerts: list[Alert] = []
        for stream, entry in sample.get("streams", {}).items():
            pending = entry.get("pending")
            age = entry.get("pending_age")
            if not pending or age is None:
                continue
            if age > self.stall_after:
                alerts.append(Alert(
                    detector=self.name, severity="critical", key=stream,
                    at=at, message=(
                        f"stream {stream}: {pending} proposals pending, "
                        f"oldest waiting {age:.1f}s with no coord.decide"
                    ),
                ))
        return alerts


class ClockDriftDetector:
    """A node's clock offset estimate *moved* beyond the drift bound.

    The first estimate per node defines that node's clock domain: a
    large but measured offset (a worker that booted later, an injected
    skew the handshake recovered) is fully compensated by the merge
    plane and is not an anomaly.  Drift is the estimate walking away
    from that baseline mid-run -- a clock running fast or slow, or a
    skew injected after the handshake.
    """

    name = "clock_drift"

    def __init__(self, bound: float = 0.2):
        self.bound = bound
        self._baseline: dict[str, float] = {}

    def observe(self, sample: Mapping) -> list[Alert]:
        at = float(sample.get("at", 0.0))
        alerts: list[Alert] = []
        rtts = sample.get("clock_rtts", {})
        for node, offset in sample.get("clock_offsets", {}).items():
            baseline = self._baseline.setdefault(str(node), offset)
            drift = offset - baseline
            # The handshake is only RTT/2-accurate; widen the bound by
            # the measured round trip before calling it drift.
            rtt = rtts.get(node)
            slack = rtt if rtt is not None and rtt != float("inf") else 0.0
            if abs(drift) > self.bound + slack:
                alerts.append(Alert(
                    detector=self.name, severity="warning", key=str(node),
                    node=str(node), at=at, message=(
                        f"node {node}: clock offset drifted {drift:+.3f}s "
                        f"from its {baseline:+.3f}s baseline, beyond the "
                        f"{self.bound:g}s bound"
                    ),
                ))
        return alerts


class BackpressureDetector:
    """A transport send queue is near its configured capacity."""

    name = "backpressure"

    def __init__(self, high_water: float = 0.8, capacity: int = 1024):
        self.high_water = high_water
        self.capacity = capacity

    def observe(self, sample: Mapping) -> list[Alert]:
        at = float(sample.get("at", 0.0))
        capacity = sample.get("queue_capacity") or self.capacity
        alerts: list[Alert] = []
        for dst, depth in sample.get("queue_depths", {}).items():
            if capacity and depth / capacity >= self.high_water:
                alerts.append(Alert(
                    detector=self.name, severity="warning", key=str(dst),
                    node=sample.get("node"), at=at, message=(
                        f"send queue to {dst} at {depth}/{capacity} "
                        f"({100 * depth / capacity:.0f}% of capacity)"
                    ),
                ))
        return alerts


class DeliveryCollapseDetector:
    """Delivered values/s collapsed vs the trailing window while the
    client keeps submitting -- the datapath died under live load."""

    name = "delivery_collapse"

    def __init__(
        self,
        window: float = 2.0,
        ratio: float = 0.25,
        min_rate: float = 50.0,
    ):
        self.window = window
        self.ratio = ratio
        self.min_rate = min_rate
        self._history: list[tuple[float, int, int]] = []

    def observe(self, sample: Mapping) -> list[Alert]:
        at = float(sample.get("at", 0.0))
        delivered = sample.get("delivered")
        submitted = sample.get("submitted")
        if delivered is None or submitted is None:
            return []
        history = self._history
        history.append((at, int(delivered), int(submitted)))
        horizon = at - 2 * self.window
        while len(history) > 2 and history[1][0] <= horizon:
            history.pop(0)
        # Split the retained history at the window boundary: the
        # previous window's delivery rate vs the current one's.
        boundary = at - self.window
        pivot = None
        for index, (t, _d, _s) in enumerate(history):
            if t <= boundary:
                pivot = index
        if pivot is None or pivot == len(history) - 1:
            return []
        t0, d0, s0 = history[0]
        tp, dp, sp = history[pivot]
        t1, d1, s1 = history[-1]
        span_prev = tp - t0
        span_cur = t1 - tp
        if span_prev <= 0 or span_cur <= 0:
            return []
        rate_prev = (dp - d0) / span_prev
        rate_cur = (d1 - dp) / span_cur
        submit_cur = (s1 - sp) / span_cur
        if (rate_prev >= self.min_rate
                and rate_cur < self.ratio * rate_prev
                and submit_cur >= self.ratio * self.min_rate):
            return [Alert(
                detector=self.name, severity="critical", key="cluster",
                at=at, message=(
                    f"delivery rate collapsed to {rate_cur:.0f}/s from "
                    f"{rate_prev:.0f}/s while submissions continue "
                    f"({submit_cur:.0f}/s)"
                ),
            )]
        return []


class ReconfigStallDetector:
    """A reconfiguration request passed its commit-liveness bound."""

    name = "reconfig_stall"

    def __init__(self, bound: float = 5.0):
        self.bound = bound

    def observe(self, sample: Mapping) -> list[Alert]:
        at = float(sample.get("at", 0.0))
        alerts: list[Alert] = []
        for request_id, age in sample.get("pending_reconfigs", {}).items():
            if age > self.bound:
                alerts.append(Alert(
                    detector=self.name, severity="critical",
                    key=str(request_id), at=at, message=(
                        f"reconfiguration request {request_id} has not "
                        f"committed after {age:.1f}s "
                        f"(bound {self.bound:g}s)"
                    ),
                ))
        return alerts


class UnreachableDetector:
    """A telemetry endpoint stopped answering (endpoints mode)."""

    name = "unreachable"

    def observe(self, sample: Mapping) -> list[Alert]:
        at = float(sample.get("at", 0.0))
        return [
            Alert(
                detector=self.name, severity="critical", key=str(node),
                node=str(node), at=at,
                message=f"node {node}: telemetry endpoint unreachable",
            )
            for node in sample.get("unreachable", ())
        ]


def default_trace_detectors(
    stall_after: float = 2.0,
    clock_bound: float = 0.2,
    reconfig_bound: float = 5.0,
) -> list:
    """The catalogue a trace-directory watch runs (docs/OBSERVABILITY.md)."""
    return [
        WatermarkStallDetector(stall_after=stall_after),
        QuorumStallDetector(stall_after=stall_after),
        ClockDriftDetector(bound=clock_bound),
        DeliveryCollapseDetector(),
        ReconfigStallDetector(bound=reconfig_bound),
    ]


def default_node_detectors(
    stall_after: float = 2.0,
    queue_capacity: int = 1024,
) -> list:
    """Detectors a node can run over its own health snapshots."""
    return [
        WatermarkStallDetector(stall_after=stall_after),
        BackpressureDetector(capacity=queue_capacity),
        DeliveryCollapseDetector(),
    ]


def default_endpoint_detectors(stall_after: float = 2.0) -> list:
    return [
        WatermarkStallDetector(stall_after=stall_after),
        BackpressureDetector(),
        DeliveryCollapseDetector(),
        UnreachableDetector(),
    ]


# -- watchdog ----------------------------------------------------------

class Watchdog:
    """Runs detectors over samples, diffs firing sets into raise/clear
    transitions, keeps the active set, scores health."""

    def __init__(
        self,
        detectors: Iterable,
        tracer: Optional[Any] = None,
    ):
        self.detectors = list(detectors)
        self.tracer = tracer
        self.active: dict[tuple[str, str], Alert] = {}
        self.raised_total = 0
        self.history: list[Alert] = []       # every alert ever raised

    def observe(self, sample: Mapping) -> tuple[list[Alert], list[Alert]]:
        """Feed one sample; returns ``(raised, cleared)`` transitions."""
        firing: dict[tuple[str, str], Alert] = {}
        for detector in self.detectors:
            for alert in detector.observe(sample):
                firing[(alert.detector, alert.key)] = alert
        raised = [
            alert for key, alert in firing.items() if key not in self.active
        ]
        cleared = [
            alert for key, alert in self.active.items() if key not in firing
        ]
        at = float(sample.get("at", 0.0))
        self.active = firing
        self.raised_total += len(raised)
        self.history.extend(raised)
        if self.tracer is not None:
            for alert in raised:
                self.tracer.emit(
                    "alert.raise", alert.at, cat="alert",
                    detector=alert.detector, severity=alert.severity,
                    message=alert.message, key=alert.key,
                )
            for alert in cleared:
                self.tracer.emit(
                    "alert.clear", at, cat="alert",
                    detector=alert.detector, key=alert.key,
                )
        return raised, cleared

    def health_score(self) -> int:
        """100 = clean; each active alert subtracts its severity's
        penalty (floor 0)."""
        penalty = sum(
            _PENALTY.get(alert.severity, 15)
            for alert in self.active.values()
        )
        return max(0, 100 - penalty)

    def active_alerts(self) -> list[dict]:
        return [
            alert.to_json()
            for _key, alert in sorted(self.active.items())
        ]


# -- health-snapshot sampling -----------------------------------------

def sample_from_health(
    snapshot: Mapping,
    node: Optional[str] = None,
    queue_capacity: Optional[int] = None,
) -> dict:
    """Distil one node's ``/health`` snapshot into a watchdog sample.

    The stream high watermark comes from the coordinators this node
    hosts (positions decided); lows from its replicas' per-stream
    delivery positions.  Used both node-side (self-observation on every
    scrape) and by :class:`EndpointsWatch`.
    """
    streams: dict[str, dict] = {}
    for stream, entry in (snapshot.get("streams") or {}).items():
        streams[stream] = {
            "high": int(entry.get("positions_decided", 0)),
            "low": None,
        }
    delivered = 0
    for state in (snapshot.get("replicas") or {}).values():
        delivered += int(state.get("delivered", 0))
        for stream, position in (state.get("positions") or {}).items():
            entry = streams.setdefault(stream, {"high": None, "low": None})
            position = int(position)
            if entry["low"] is None or position < entry["low"]:
                entry["low"] = position
            if entry["high"] is None or position > entry["high"]:
                entry["high"] = position
    transport = snapshot.get("transport") or {}
    sample = {
        "at": float(snapshot.get("now", 0.0)),
        "node": node if node is not None else snapshot.get("node"),
        "streams": streams,
        "delivered": delivered,
        "queue_depths": dict(transport.get("queue_depths") or {}),
    }
    capacity = queue_capacity or transport.get("queue_capacity")
    if capacity:
        sample["queue_capacity"] = int(capacity)
    client = snapshot.get("client")
    if client is not None and client.get("submitted") is not None:
        sample["submitted"] = int(client["submitted"])
    return sample


# -- front ends --------------------------------------------------------

class TraceWatch:
    """Certifier + watchdog over a run directory's trace files.

    ``step()`` polls the tails, feeds the certifier, samples it for the
    watchdog, and appends any transitions to the JSONL alert log.  The
    final :meth:`summary` (also written as a closing ``audit.check``
    record) is what the deploy supervisor embeds in the run manifest.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        paths: Optional[Iterable[str]] = None,
        out: Optional[str] = None,
        detectors: Optional[Iterable] = None,
        stall_after: float = 2.0,
        clock_bound: float = 0.2,
        reconfig_bound: float = 5.0,
        compact_limit: int = 100_000,
        acyclic_every: float = 1.0,
        sample_interval: float = 0.25,
        on_event: Optional[Callable[[dict], None]] = None,
    ):
        self.source = TraceDirectorySource(directory=directory, paths=paths)
        self.certifier = SafetyCertifier(compact_limit=compact_limit)
        self.watchdog = Watchdog(detectors if detectors is not None else
                                 default_trace_detectors(
                                     stall_after=stall_after,
                                     clock_bound=clock_bound,
                                     reconfig_bound=reconfig_bound,
                                 ))
        self.out_path = out
        self.on_event = on_event
        self.acyclic_every = acyclic_every
        self.sample_interval = sample_interval
        self._out = open(out, "w", encoding="utf-8") if out else None
        self._seq = 0
        self._last_acyclic = 0.0
        self._last_sample = 0.0
        self.closed = False

    # alert-log records are themselves schema-valid trace events.
    def _record(self, kind: str, at: float, **fields: Any) -> None:
        event = {
            "ts": at, "seq": self._seq, "kind": kind,
            "cat": kind.split(".", 1)[0], **fields,
        }
        self._seq += 1
        if self._out is not None:
            self._out.write(json.dumps(event, separators=(",", ":")))
            self._out.write("\n")
            self._out.flush()
        if self.on_event is not None:
            self.on_event(event)

    def step(self) -> dict:
        """One tick: returns ``{"events", "violations", "raised",
        "cleared"}`` for this tick.

        The watchdog samples at a fixed *trace-time* cadence
        (``sample_interval``) inside the event loop, not once per poll:
        replaying a finished run post-hoc therefore produces the same
        sample sequence -- and the same staleness alerts -- a live tail
        saw, no matter how the events were batched into polls.
        """
        events = self.source.poll()
        violations: list[AuditViolation] = []
        raised: list[Alert] = []
        cleared: list[Alert] = []
        for event in events:
            violations.extend(self.certifier.observe(event))
            if (self.certifier.now - self._last_sample
                    >= self.sample_interval):
                self._last_sample = self.certifier.now
                tick_raised, tick_cleared = self.watchdog.observe(
                    self.certifier.watch_sample()
                )
                raised.extend(tick_raised)
                cleared.extend(tick_cleared)
        if (self.certifier.now - self._last_acyclic >= self.acyclic_every
                and len(self.certifier.groups) > 0):
            self._last_acyclic = self.certifier.now
            violations.extend(self.certifier.check_acyclic())
        sample = self.certifier.watch_sample()
        tick_raised, tick_cleared = self.watchdog.observe(sample)
        raised.extend(tick_raised)
        cleared.extend(tick_cleared)
        for violation in violations:
            payload = violation.to_json()
            payload.pop("at", None)
            self._record("audit.violation", violation.at, **payload)
        for alert in raised:
            self._record(
                "alert.raise", alert.at, detector=alert.detector,
                severity=alert.severity, message=alert.message,
                key=alert.key,
            )
        for alert in cleared:
            self._record(
                "alert.clear", sample["at"], detector=alert.detector,
                key=alert.key,
            )
        return {
            "events": len(events),
            "violations": violations,
            "raised": raised,
            "cleared": cleared,
        }

    def drain(self, max_rounds: int = 1_000_000) -> None:
        """Step until a poll returns no new events (post-hoc mode)."""
        for _ in range(max_rounds):
            if not self.step()["events"]:
                break

    @property
    def violations(self) -> list[AuditViolation]:
        return self.certifier.violations

    def summary(self) -> dict:
        summary = self.certifier.summary()
        summary["alerts"] = [a.to_json() for a in self.watchdog.history]
        summary["active_alerts"] = self.watchdog.active_alerts()
        summary["health_score"] = self.watchdog.health_score()
        summary["malformed_lines"] = self.source.malformed
        if self.out_path:
            summary["alert_log"] = self.out_path
        return summary

    def close(self) -> dict:
        """Final acyclicity pass, closing ``audit.check`` record, file
        close; returns the summary."""
        if not self.closed:
            self.closed = True
            self.certifier.check_acyclic()
            summary = self.summary()
            self._record(
                "audit.check", self.certifier.now,
                events=summary["events"],
                violations=len(summary["violations"]),
                alerts=len(summary["alerts"]),
                health_score=summary["health_score"],
                ok=summary["ok"],
            )
            if self._out is not None:
                self._out.close()
                self._out = None
            self._summary = summary
        return self._summary


class EndpointsWatch:
    """Watchdog over a live cluster's ``/health`` endpoints.

    No trace files required: each poll scrapes every node (with a
    per-node timeout), builds one sample per node plus the reachability
    set, and feeds the node-level detectors.  Scrapes run on wall time
    (the caller's clock).
    """

    def __init__(
        self,
        endpoints: Mapping[str, tuple[str, int]],
        clock: Callable[[], float],
        fetch: Optional[Callable[..., Optional[dict]]] = None,
        detectors: Optional[Iterable] = None,
        timeout: float = 0.5,
        out: Optional[str] = None,
        on_event: Optional[Callable[[dict], None]] = None,
    ):
        from ..runtime.console import fetch_json

        self.endpoints = dict(endpoints)
        self.clock = clock
        self.fetch = fetch if fetch is not None else fetch_json
        self.timeout = timeout
        self.watchdog = Watchdog(detectors if detectors is not None else
                                 default_endpoint_detectors())
        self.out_path = out
        self._out = open(out, "w", encoding="utf-8") if out else None
        self.on_event = on_event
        self._seq = 0
        self.closed = False

    def _record(self, kind: str, at: float, **fields: Any) -> None:
        event = {
            "ts": at, "seq": self._seq, "kind": kind,
            "cat": kind.split(".", 1)[0], **fields,
        }
        self._seq += 1
        if self._out is not None:
            self._out.write(json.dumps(event, separators=(",", ":")))
            self._out.write("\n")
            self._out.flush()
        if self.on_event is not None:
            self.on_event(event)

    def step(self) -> dict:
        now = self.clock()
        unreachable: list[str] = []
        streams: dict[str, dict] = {}
        queue_depths: dict[str, float] = {}
        delivered = 0
        submitted = None
        for node, (host, port) in sorted(self.endpoints.items()):
            snapshot = self.fetch(host, port, "/health", timeout=self.timeout)
            if snapshot is None:
                unreachable.append(node)
                continue
            sample = sample_from_health(snapshot, node=node)
            delivered += sample.get("delivered", 0)
            if sample.get("submitted") is not None:
                submitted = (submitted or 0) + sample["submitted"]
            for stream, entry in sample["streams"].items():
                merged = streams.setdefault(
                    stream, {"low": None, "high": None}
                )
                low, high = entry.get("low"), entry.get("high")
                if low is not None and (merged["low"] is None
                                        or low < merged["low"]):
                    merged["low"] = low
                if high is not None and (merged["high"] is None
                                         or high > merged["high"]):
                    merged["high"] = high
            for dst, depth in sample.get("queue_depths", {}).items():
                queue_depths[f"{node}:{dst}"] = depth
        sample = {
            "at": now,
            "streams": streams,
            "delivered": delivered,
            "queue_depths": queue_depths,
            "unreachable": tuple(unreachable),
        }
        if submitted is not None:
            sample["submitted"] = submitted
        raised, cleared = self.watchdog.observe(sample)
        for alert in raised:
            self._record(
                "alert.raise", alert.at, detector=alert.detector,
                severity=alert.severity, message=alert.message,
                key=alert.key,
            )
        for alert in cleared:
            self._record(
                "alert.clear", now, detector=alert.detector, key=alert.key,
            )
        return {
            "unreachable": unreachable,
            "raised": raised,
            "cleared": cleared,
        }

    def summary(self) -> dict:
        return {
            "alerts": [a.to_json() for a in self.watchdog.history],
            "active_alerts": self.watchdog.active_alerts(),
            "health_score": self.watchdog.health_score(),
        }

    def close(self) -> dict:
        if not self.closed:
            self.closed = True
            summary = self.summary()
            self._record(
                "audit.check", self.clock(),
                events=self._seq, violations=0,
                alerts=len(summary["alerts"]),
                health_score=summary["health_score"], ok=True,
            )
            if self._out is not None:
                self._out.close()
                self._out = None
            self._summary = summary
        return self._summary
