"""Multi-Paxos substrate: one package per stream role.

A *stream* is one Multi-Paxos sequence (coordinator + acceptors),
the unit Elastic Paxos composes.  See :mod:`repro.multicast` for the
stream/merge layer built on top.
"""

from .acceptor import AcceptorActor, AcceptorCore
from .ballot import ballot_for, next_ballot, owner_of, quorum_size
from .config import StreamConfig
from .coordinator import CoordinatorActor
from .failover import FailoverMonitor
from .learner import LearnerActor, LearnerCore
from .messages import (
    Decision,
    Phase1a,
    Phase1b,
    Phase2a,
    Phase2b,
    Propose,
    RecoverReply,
    RecoverRequest,
    RingAccept,
    Trim,
)
from .skip import DEFAULT_DELTA_T, DEFAULT_LAMBDA, SkipCalculator
from .types import (
    AppValue,
    Batch,
    PrepareMsg,
    SkipToken,
    SubscribeMsg,
    Token,
    UnsubscribeMsg,
)

__all__ = [
    "AcceptorActor",
    "AcceptorCore",
    "AppValue",
    "Batch",
    "CoordinatorActor",
    "Decision",
    "DEFAULT_DELTA_T",
    "DEFAULT_LAMBDA",
    "FailoverMonitor",
    "LearnerActor",
    "LearnerCore",
    "Phase1a",
    "Phase1b",
    "Phase2a",
    "Phase2b",
    "PrepareMsg",
    "Propose",
    "RecoverReply",
    "RecoverRequest",
    "RingAccept",
    "SkipCalculator",
    "SkipToken",
    "StreamConfig",
    "SubscribeMsg",
    "Token",
    "Trim",
    "UnsubscribeMsg",
    "ballot_for",
    "next_ballot",
    "owner_of",
    "quorum_size",
]
