"""Paxos acceptor: sans-io core and simulated actor.

The core (:class:`AcceptorCore`) is a pure state machine -- message in,
list of ``(destination, message)`` effects out -- which keeps the safety
logic unit-testable and lets property-based tests drive adversarial
schedules directly.  :class:`AcceptorActor` binds a core to a simulated
host, paying stable-storage latency before any promise/acceptance is
answered.

Acceptors also serve *recovery*: they remember decided instances (until
trimmed) and answer :class:`RecoverRequest`, which is how an Elastic
Paxos replica catches up on a newly subscribed stream.
"""

from __future__ import annotations

from typing import Optional

from ..net.actor import Actor
from ..runtime.kernel import Kernel, Transport
from ..storage.log import AcceptorLog
from ..storage.stable import StableStore
from .messages import (
    Decision,
    Heartbeat,
    HeartbeatAck,
    Phase1a,
    Phase1b,
    Phase2a,
    Phase2b,
    RecoverReply,
    RecoverRequest,
    RingAccept,
    Trim,
)

__all__ = ["AcceptorCore", "AcceptorActor"]

# Recovery replies are paginated so that one giant reply does not
# monopolise a link; this is also what paces a recovering subscriber.
RECOVERY_PAGE_INSTANCES = 100


class AcceptorCore:
    """Pure Paxos acceptor state machine for one stream."""

    # ``ring`` is a property so the per-message ring lookup (our index,
    # our successor) is computed once per reconfiguration instead of
    # once per RingAccept.
    @property
    def ring(self) -> tuple[str, ...]:
        return self._ring

    @ring.setter
    def ring(self, value) -> None:
        self._ring = tuple(value)
        if self.name in self._ring:
            index = self._ring.index(self.name)
            self._ring_member = True
            self._ring_next = (
                self._ring[index + 1]
                if index + 1 < len(self._ring)
                else None
            )
        else:
            self._ring_member = False
            self._ring_next = None

    def __init__(self, name: str, stream: str, ring: tuple[str, ...] = ()):
        self.name = name
        self.stream = stream
        self.ring = tuple(ring)        # acceptor names in ring order
        self.promised = -1             # highest promised ballot (all instances)
        self.log = AcceptorLog()
        # Scratch effect list reused by the hot accept handlers; every
        # caller (the actor, the unit and property tests) consumes the
        # effects before invoking another handler on this core, so one
        # shared buffer per core is safe and saves a list allocation
        # per accepted message.
        self._effects: list[tuple[str, object]] = []
        # Stream positions covered by trimmed instances: a learner that
        # recovers after a trim seeds its token log at this base so that
        # position arithmetic (the merge's logical clock) stays absolute.
        self.positions_trimmed = 0

    # -- classic phases ---------------------------------------------------

    def on_phase1a(self, msg: Phase1a, src: str) -> list[tuple[str, object]]:
        if msg.ballot <= self.promised:
            return []  # stale ballot: ignore (sender will retry higher)
        self.promised = msg.ballot
        accepted = tuple(
            (instance, entry.vrnd, entry.value)
            for instance, entry in sorted(self._entries_from(msg.from_instance))
            if entry.vrnd >= 0
        )
        reply = Phase1b(
            stream=self.stream,
            ballot=msg.ballot,
            acceptor=self.name,
            accepted=accepted,
        )
        return [(src, reply)]

    def _entries_from(self, from_instance: int):
        for instance in range(from_instance, self.log.highest_instance + 1):
            entry = self.log.get(instance)
            if entry is not None:
                yield instance, entry

    def on_phase2a(self, msg: Phase2a, src: str) -> list[tuple[str, object]]:
        if msg.ballot < self.promised:
            return []
        self.promised = msg.ballot
        self.log.accept(msg.instance, msg.ballot, msg.batch)
        reply = Phase2b(
            stream=self.stream,
            ballot=msg.ballot,
            instance=msg.instance,
            acceptor=self.name,
        )
        effects = self._effects
        effects.clear()
        effects.append((src, reply))
        return effects

    # -- ring dissemination ------------------------------------------------

    def on_ring_accept(self, msg: RingAccept, src: str) -> list[tuple[str, object]]:
        """Accept and forward around the ring.

        The last acceptor in the ring observes that every ring member
        has accepted and emits nothing here -- deciding (and notifying
        learners) is the actor's job because the learner set lives there.
        """
        if msg.ballot < self.promised:
            return []
        self.promised = msg.ballot
        self.log.accept(msg.instance, msg.ballot, msg.batch)
        if not self._ring_member:
            raise ValueError(f"{self.name} is not a ring member")
        forwarded = RingAccept(
            stream=msg.stream,
            ballot=msg.ballot,
            instance=msg.instance,
            batch=msg.batch,
            accepted_by=msg.accepted_by + 1,
        )
        effects = self._effects
        effects.clear()
        ring_next = self._ring_next
        if ring_next is not None:
            effects.append((ring_next, forwarded))
            return effects
        # Ring complete: every acceptor accepted => decided.
        self.log.mark_decided(msg.instance)
        effects.append(("__decided__", forwarded))
        return effects

    # -- learning & recovery -------------------------------------------------

    def on_decision(self, msg: Decision, src: str) -> list[tuple[str, object]]:
        entry = self.log.entry(msg.instance)
        if entry.value is None:
            entry.value = msg.batch
            entry.vrnd = max(entry.vrnd, 0)
        entry.decided = True
        return []

    def on_recover_request(self, msg: RecoverRequest, src: str) -> list[tuple[str, object]]:
        """Answer with one page of decided instances."""
        start = max(msg.from_instance, self.log.trimmed_below)
        stop = self.log.highest_instance + 1
        if msg.to_instance >= 0:
            stop = min(stop, msg.to_instance)
        decided = []
        instance = start
        while instance < stop and len(decided) < RECOVERY_PAGE_INSTANCES:
            if self.log.is_decided(instance):
                decided.append((instance, self.log.decided_value(instance)))
            instance += 1
        highest_decided = -1
        for i in self.log.decided_instances():
            highest_decided = i
        reply = RecoverReply(
            stream=self.stream,
            decided=tuple(decided),
            trimmed_below=self.log.trimmed_below,
            highest_decided=highest_decided,
            base_position=self.positions_trimmed,
        )
        return [(src, reply)]

    def on_trim(self, msg: Trim, src: str) -> list[tuple[str, object]]:
        decided = self.log.decided_instances()
        # Only a decided prefix may go: trimming an undecided instance
        # could lose an accepted value a future quorum needs.
        expected = self.log.trimmed_below
        for instance in decided:
            if instance != expected:
                break
            expected = instance + 1
        safe = min(msg.below, expected)
        if safe > self.log.trimmed_below:
            for instance in range(self.log.trimmed_below, safe):
                if self.log.is_decided(instance):
                    self.positions_trimmed += self.log.decided_value(
                        instance
                    ).positions()
            self.log.trim(safe)
        return []


class AcceptorActor(Actor):
    """An acceptor process on the simulated network."""

    def __init__(
        self,
        env: Kernel,
        network: Transport,
        name: str,
        stream: str,
        ring: tuple[str, ...] = (),
        store: Optional[StableStore] = None,
        recovery_instance_cost: float = 0.0,
    ):
        super().__init__(env, network, name)
        self.core = AcceptorCore(name, stream, ring)
        self.store = store or StableStore(env)
        # Models the cost of reading old instances back for recovery
        # (URingPaxos scans its on-disk log); creates the realistic
        # pause while a new subscriber catches up.
        self.recovery_instance_cost = recovery_instance_cost
        # Set by the deployment: who learns decisions in ring mode.
        self.decision_targets: list[str] = []
        # Bound once; rebuilding this dict per message dominates the
        # dispatch cost on ring-accept-heavy runs.
        self._handler_map = {
            Phase1a: self.core.on_phase1a,
            Phase2a: self.core.on_phase2a,
            RingAccept: self.core.on_ring_accept,
            Decision: self.core.on_decision,
            Trim: self.core.on_trim,
        }
        self._persist_types = frozenset((Phase1a, Phase2a, RingAccept))

    def dispatch(self, payload, src):
        cls = type(payload)
        handler = self._handler_map.get(cls)
        if handler is None:
            if isinstance(payload, RecoverRequest):
                self._serve_recovery(payload, src)
                return
            if isinstance(payload, Heartbeat):
                self.send(src, HeartbeatAck(nonce=payload.nonce))
                return
            raise NotImplementedError(
                f"acceptor {self.name} cannot handle {payload!r}"
            )
        effects = handler(payload, src)
        needs_persist = cls in self._persist_types
        if needs_persist and not self.store.is_instantaneous:
            size = payload.wire_size()
            done = self.store.write(size)
            # Snapshot: ``effects`` may be the core's reused scratch
            # list, clobbered by the next dispatch before this write
            # completes.
            done.callbacks.append(lambda _e, eff=tuple(effects): self._emit(eff))
        else:
            if needs_persist:
                self.store.write_nowait(payload.wire_size())
            self._emit(effects)

    def _emit(self, effects) -> None:
        for dst, message in effects:
            if dst == "__decided__":
                # Last acceptor in the ring: fan the decision out.
                decision = Decision(
                    stream=message.stream,
                    instance=message.instance,
                    batch=message.batch,
                )
                if not self.host.crashed:
                    size = decision.wire_size()
                    net_send = self.network.send
                    name = self.name
                    for target in self.decision_targets:
                        if target != name:
                            net_send(name, target, decision, size)
            else:
                self.send(dst, message)

    def _serve_recovery(self, request: RecoverRequest, src: str) -> None:
        effects = self.core.on_recover_request(request, src)
        (dst, reply) = effects[0]
        cost = self.recovery_instance_cost * max(1, len(reply.decided))
        if cost > 0:
            self.env.call_later(cost, self.send, dst, reply)
        else:
            self.send(dst, reply)
