"""Ballot numbering and quorums.

Ballots are totally ordered integers partitioned among potential
coordinators: coordinator ``k`` of ``n`` owns ballots ``k, k + n,
k + 2n, ...`` so two coordinators can never issue the same ballot.
"""

from __future__ import annotations

__all__ = ["ballot_for", "owner_of", "next_ballot", "quorum_size"]


def ballot_for(coordinator_index: int, attempt: int, n_coordinators: int) -> int:
    """Ballot used by ``coordinator_index`` on its ``attempt``-th try."""
    if not 0 <= coordinator_index < n_coordinators:
        raise ValueError(
            f"coordinator index {coordinator_index} out of range "
            f"[0, {n_coordinators})"
        )
    if attempt < 0:
        raise ValueError("attempt must be >= 0")
    return attempt * n_coordinators + coordinator_index


def owner_of(ballot: int, n_coordinators: int) -> int:
    """Index of the coordinator that owns ``ballot``."""
    if ballot < 0:
        raise ValueError("ballots are non-negative")
    return ballot % n_coordinators


def next_ballot(current: int, coordinator_index: int, n_coordinators: int) -> int:
    """Smallest ballot owned by ``coordinator_index`` greater than ``current``."""
    attempt = current // n_coordinators + 1
    candidate = ballot_for(coordinator_index, attempt, n_coordinators)
    if candidate <= current:
        candidate += n_coordinators
    return candidate


def quorum_size(n_acceptors: int) -> int:
    """Majority quorum size for ``n_acceptors``."""
    if n_acceptors < 1:
        raise ValueError("need at least one acceptor")
    return n_acceptors // 2 + 1
