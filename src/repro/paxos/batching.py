"""Load-adaptive coordinator batching policy.

Ring Paxos reaches NIC-limited throughput by amortising the protocol's
fixed per-instance cost over large batches -- but a large *fixed* batch
trigger is the wrong default: at low load it either ships tiny batches
(no amortisation) or waits for a fill that never comes (latency).  The
policy here adapts the batch target to observed queue pressure:

* **Pressure level** -- a peak-hold of the coordinator's pending-queue
  depth that decays exponentially (time constant ``decay_s``) when the
  queue empties.  Raising instantly and decaying slowly makes the
  policy react to bursts within one batch but not oscillate between
  consecutive pump runs.
* **Batch target** -- ``floor + span * level / (level + half_pressure)``,
  a saturating curve from ``floor`` (the classic ``batch_max_tokens``)
  to ``ceiling``.  It is *monotone* in the pressure level (property
  test: ``tests/paxos/test_adaptive_batching.py``) and halfway between
  floor and ceiling when the level equals ``half_pressure``.
* **Linger** -- at partial pressure the coordinator may briefly hold a
  batch open (up to ``max_linger_s``, scaled by the same saturating
  fraction) so in-flight arrivals join it; an idle stream lingers ~0 s
  and keeps its latency.

The policy is pure protocol-layer state machine -- no clocks of its
own, callers pass ``now`` -- so it is unit-testable in the sim backend
and behaves identically under the live asyncio kernel.  It is **off by
default** (``StreamConfig.adaptive_batching=False``): the sim's golden
digests are pinned byte-identical, and only live mode turns it on
(``python -m repro live``, docs/PERFORMANCE.md).
"""

from __future__ import annotations

import math

__all__ = ["AdaptiveBatchPolicy"]


class AdaptiveBatchPolicy:
    """Peak-hold/decay pressure tracker mapping queue depth to a batch
    target and a linger budget.  Monotone and saturating by
    construction."""

    __slots__ = ("floor", "ceiling", "half_pressure", "decay_s",
                 "max_linger_s", "_level", "_level_at")

    def __init__(
        self,
        floor: int,
        ceiling: int,
        half_pressure: float = 32.0,
        decay_s: float = 0.25,
        max_linger_s: float = 0.002,
    ):
        if floor < 1:
            raise ValueError("floor must be >= 1")
        if ceiling < floor:
            raise ValueError("ceiling must be >= floor")
        if half_pressure <= 0:
            raise ValueError("half_pressure must be positive")
        if decay_s < 0 or max_linger_s < 0:
            raise ValueError("decay_s and max_linger_s must be >= 0")
        self.floor = floor
        self.ceiling = ceiling
        self.half_pressure = half_pressure
        self.decay_s = decay_s
        self.max_linger_s = max_linger_s
        self._level = 0.0
        self._level_at = 0.0

    @classmethod
    def from_config(cls, config) -> "AdaptiveBatchPolicy":
        """Build from a :class:`~repro.paxos.config.StreamConfig`; the
        classic ``batch_max_tokens`` becomes the adaptive floor."""
        return cls(
            floor=config.batch_max_tokens,
            ceiling=config.adaptive_batch_ceiling,
            half_pressure=config.adaptive_half_pressure,
            decay_s=config.adaptive_decay_s,
            max_linger_s=config.adaptive_max_linger_s,
        )

    # -- pressure -----------------------------------------------------

    def observe(self, queue_depth: int, now: float) -> float:
        """Fold one queue-depth sample in at time ``now``; returns the
        smoothed pressure level.  Peak-hold up, exponential decay down:
        a single deep sample raises the level immediately, and the
        level relaxes toward zero while the queue stays shallow."""
        self._decay_to(now)
        if queue_depth > self._level:
            self._level = float(queue_depth)
        return self._level

    def level(self, now: float) -> float:
        """Current (decayed) pressure level without folding a sample."""
        self._decay_to(now)
        return self._level

    def _decay_to(self, now: float) -> None:
        dt = now - self._level_at
        self._level_at = now
        if dt <= 0.0 or self._level == 0.0:
            return
        if self.decay_s == 0.0:
            self._level = 0.0
        else:
            self._level *= math.exp(-dt / self.decay_s)
            if self._level < 1e-9:
                self._level = 0.0

    # -- outputs ------------------------------------------------------

    def _saturation(self) -> float:
        level = self._level
        return level / (level + self.half_pressure)

    def target_tokens(self) -> int:
        """Batch-size target for the current pressure level: ``floor``
        when idle, saturating toward ``ceiling`` under sustained queue
        depth.  Monotone in the level."""
        span = self.ceiling - self.floor
        return self.floor + int(span * self._saturation())

    def linger_s(self) -> float:
        """How long a not-yet-full batch may be held open for arrivals
        to join it.  Zero when idle (latency first), approaching
        ``max_linger_s`` under pressure (throughput first)."""
        return self.max_linger_s * self._saturation()
