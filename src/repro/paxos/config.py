"""Configuration of one Paxos stream (one Multi-Paxos sequence)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .skip import DEFAULT_DELTA_T, DEFAULT_LAMBDA

__all__ = ["StreamConfig"]


@dataclass
class StreamConfig:
    """Everything that defines a stream's behaviour.

    Attributes mirror the knobs of URingPaxos that the paper exercises:
    λ and Δt (§VII-A), batching, ring dissemination, and the throughput
    throttle used in the vertical-scalability experiment ("we limited
    the single stream throughput to 30%").
    """

    name: str
    acceptors: tuple[str, ...]
    coordinator: str = ""
    ring_mode: bool = True
    lam: int = DEFAULT_LAMBDA
    delta_t: float = DEFAULT_DELTA_T
    skip_enabled: bool = True

    # Batching & pipelining.
    batch_max_tokens: int = 16
    batch_max_bytes: int = 256 * 1024
    window: int = 16                      # outstanding instances

    # Load-adaptive batching (repro.paxos.batching).  Off by default:
    # the sim's golden digests are pinned against the fixed trigger;
    # live mode enables it (docs/PERFORMANCE.md, "Live datapath
    # performance").  When on, ``batch_max_tokens`` is the floor and
    # the batch target grows toward ``adaptive_batch_ceiling`` under
    # queue pressure, with up to ``adaptive_max_linger_s`` of linger.
    adaptive_batching: bool = False
    adaptive_batch_ceiling: int = 256
    adaptive_half_pressure: float = 32.0
    adaptive_decay_s: float = 0.25
    adaptive_max_linger_s: float = 0.002

    # Coordinator CPU model (seconds of CPU per unit).
    cpu_cost_per_batch: float = 0.0
    cpu_cost_per_token: float = 0.0
    cpu_cost_per_byte: float = 0.0

    # Optional cap on application-token proposal rate (tokens/second).
    value_rate_limit: Optional[float] = None

    # Loss tolerance: retransmit an undecided instance after this long.
    retransmit_timeout: float = 0.5

    def __post_init__(self):
        if not self.acceptors:
            raise ValueError(f"stream {self.name!r} needs at least one acceptor")
        if not self.coordinator:
            self.coordinator = f"{self.name}/coordinator"
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.batch_max_tokens < 1:
            raise ValueError("batch_max_tokens must be >= 1")
        if self.adaptive_batching:
            if self.adaptive_batch_ceiling < self.batch_max_tokens:
                raise ValueError(
                    "adaptive_batch_ceiling must be >= batch_max_tokens"
                )
            if self.adaptive_half_pressure <= 0:
                raise ValueError("adaptive_half_pressure must be positive")
            if self.adaptive_decay_s < 0 or self.adaptive_max_linger_s < 0:
                raise ValueError(
                    "adaptive_decay_s and adaptive_max_linger_s must be >= 0"
                )
