"""Multi-Paxos coordinator (the per-stream leader).

The coordinator owns a ballot, runs Phase 1 once over an open-ended
instance window, and then decides a pipeline of instances with single
round trips.  It batches client tokens, tops the stream up with skip
tokens every Δt so that the stream sustains the virtual rate λ
(:mod:`repro.paxos.skip`), retransmits undecided instances, and hands
decisions to the registered learners.

Dissemination modes
-------------------
* *ring* (URingPaxos): Phase 2 travels coordinator → a1 → … → an; the
  last acceptor fans the decision out to learners.  One network hop per
  acceptor, high throughput.
* *classic*: Phase 2a is fanned out to all acceptors, the coordinator
  collects a majority of 2b and fans out the decision.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from ..net.actor import Actor
from ..runtime.kernel import Interrupt, Kernel, Transport
from ..runtime.resources import Server
from .ballot import ballot_for, next_ballot, quorum_size
from .batching import AdaptiveBatchPolicy
from .config import StreamConfig
from .messages import (
    Decision,
    Heartbeat,
    HeartbeatAck,
    Phase1a,
    Phase1b,
    Phase2a,
    Phase2b,
    Propose,
    RingAccept,
    Trim,
)
from .types import AppValue, Batch, SkipToken

__all__ = ["CoordinatorActor"]


def _batch_msg_ids(batch: Batch) -> list:
    """Application message ids carried by a batch (skips excluded)."""
    return [
        token.msg_id for token in batch.tokens if isinstance(token, AppValue)
    ]


class CoordinatorActor(Actor):
    """The leader of one Paxos stream."""

    def __init__(
        self,
        env: Kernel,
        network: Transport,
        config: StreamConfig,
        coordinator_index: int = 0,
        n_coordinators: int = 1,
        standby: bool = False,
    ):
        super().__init__(env, network, config.coordinator)
        self.config = config
        self.stream = config.name
        self.coordinator_index = coordinator_index
        self.n_coordinators = n_coordinators
        self.ballot = ballot_for(coordinator_index, 0, n_coordinators)
        self.leading = False
        self.standby = standby

        self.next_instance = 0
        self.pending: deque = deque()          # tokens awaiting proposal
        self.outstanding: dict[int, dict] = {}  # instance -> tracking info
        self.decided_instances: set[int] = set()
        self.learners: list[str] = []
        self._submitted_ids: set = set()       # wire-level submission dedup

        self.positions_decided = 0             # lifetime decided positions
        self.positions_proposed = 0            # lifetime proposed positions

        cpu_needed = (
            config.cpu_cost_per_batch
            or config.cpu_cost_per_token
            or config.cpu_cost_per_byte
        )
        self.cpu: Optional[Server] = (
            Server(env, rate=1.0, name=f"{self.name}:cpu") if cpu_needed else None
        )
        self._value_gate_open = 0.0            # token-bucket time for throttle
        self._throttle_wakeup: Optional[float] = None
        self._proposing = False
        self._processes = []
        # env.tracer / env.metrics are fixed for the environment's
        # lifetime; cache them so each probe is one attribute load.
        self._tracer = env.tracer
        self._metrics = env.metrics
        self._batch_scratch: list = []
        # Parallel deque of enqueue timestamps for ``pending`` (propose
        # appends, _take_batch pops -- the only two mutation sites), so
        # the batch-wait segment of the latency budget is measurable.
        # Only maintained when metrics are on: zero cost untraced.
        self._pending_since: Optional[deque] = (
            deque() if self._metrics is not None else None
        )
        # Load-adaptive batching (repro.paxos.batching): None under the
        # default fixed trigger, so the sim's pinned digests see zero
        # behaviour change.  ``_pending_oldest_at`` approximates the
        # arrival time of the oldest pending token (reset whenever the
        # queue refills from empty) and bounds how long a linger may
        # hold a partial batch open.
        self._batch_policy = (
            AdaptiveBatchPolicy.from_config(config)
            if config.adaptive_batching else None
        )
        self._pending_oldest_at = 0.0
        self._linger_wakeup_at: Optional[float] = None

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        super().start()
        if self.standby:
            return   # answers heartbeats only, until promoted
        self._run_phase1()
        if self.config.skip_enabled:
            self._processes.append(self.env.process(self._skip_loop()))
        self._processes.append(self.env.process(self._retransmit_loop()))

    def promote(self) -> None:
        """Promote a standby to active: claim the stream with a higher
        ballot and start the background loops."""
        if not self.standby:
            raise RuntimeError(f"{self.name} is not a standby")
        self.standby = False
        self.take_over()
        if self.config.skip_enabled:
            self._processes.append(self.env.process(self._skip_loop()))
        self._processes.append(self.env.process(self._retransmit_loop()))
        self._processes.append(self.env.process(self._phase1_retry_loop()))

    def _phase1_retry_loop(self):
        """Escalate the ballot until Phase 1 succeeds (the previous
        leader may have promised acceptors to a higher ballot)."""
        while True:
            try:
                yield self.env.timeout(2 * self.config.retransmit_timeout)
            except Interrupt:
                return
            if self.leading:
                return
            self.take_over()

    def on_heartbeat(self, msg: Heartbeat, src: str) -> None:
        self.send(src, HeartbeatAck(nonce=msg.nonce))

    def stop(self) -> None:
        super().stop()
        for proc in self._processes:
            if proc.is_alive:
                proc.interrupt("stop")
        self._processes = []
        self.leading = False

    # -- learner management -------------------------------------------------

    def add_learner(self, learner: str) -> None:
        """Register a learner for decision dissemination.

        In ring mode the decision fan-out happens at the last acceptor;
        the deployment keeps acceptors' ``decision_targets`` in sync.
        """
        if learner not in self.learners:
            self.learners.append(learner)

    def remove_learner(self, learner: str) -> None:
        if learner in self.learners:
            self.learners.remove(learner)

    # -- phase 1 ------------------------------------------------------------

    def _run_phase1(self) -> None:
        self._phase1_promises: dict[str, Phase1b] = {}
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "coord.phase1", self.env._now, coordinator=self.name,
                stream=self.stream, ballot=self.ballot,
            )
        message = Phase1a(
            stream=self.stream, ballot=self.ballot, from_instance=self.next_instance
        )
        self.send_all(list(self.config.acceptors), message)

    def take_over(self) -> None:
        """Claim leadership with a fresh, higher ballot (failover path)."""
        self.ballot = next_ballot(self.ballot, self.coordinator_index, self.n_coordinators)
        self.leading = False
        self._run_phase1()

    def on_phase1b(self, msg: Phase1b, src: str) -> None:
        if msg.ballot != self.ballot or self.leading:
            return
        self._phase1_promises[msg.acceptor] = msg
        if len(self._phase1_promises) < quorum_size(len(self.config.acceptors)):
            return
        # Quorum reached: adopt the highest accepted value per instance.
        adopted: dict[int, tuple[int, Batch]] = {}
        for promise in self._phase1_promises.values():
            for instance, vrnd, batch in promise.accepted:
                if instance not in adopted or vrnd > adopted[instance][0]:
                    adopted[instance] = (vrnd, batch)
        self.leading = True
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "coord.lead", self.env._now, coordinator=self.name,
                stream=self.stream, ballot=self.ballot,
                adopted=len(adopted),
            )
        for instance in sorted(adopted):
            _vrnd, batch = adopted[instance]
            self.next_instance = max(self.next_instance, instance + 1)
            self._send_phase2(instance, batch)
        self._pump_proposals()

    # -- proposing ------------------------------------------------------------

    def propose(self, token) -> None:
        """Submit one token (value / control message) for ordering."""
        self.positions_proposed += token.positions()
        tracer = self._tracer
        if tracer is not None:
            fields = {
                "coordinator": self.name,
                "stream": self.stream,
                "type": type(token).__name__,
            }
            msg_id = getattr(token, "msg_id", None)
            if msg_id is not None:
                fields["msg_id"] = msg_id
            request_id = getattr(token, "request_id", None)
            if request_id is not None:
                fields["request_id"] = request_id
            tracer.emit("coord.propose", self.env._now, **fields)
        if self._pending_since is not None:
            self._pending_since.append(self.env._now)
        if not self.pending:
            self._pending_oldest_at = self.env._now
        self.pending.append(token)
        self._pump_proposals()

    def on_propose(self, msg: Propose, src: str) -> None:
        if msg.stream != self.stream:
            raise ValueError(
                f"{self.name} leads stream {self.stream!r}, got a proposal "
                f"for {msg.stream!r}"
            )
        # The network may duplicate a Propose (client retransmission or
        # wire-level duplication); ordering the same message twice would
        # break atomic multicast integrity, so dedupe by application id.
        token_id = getattr(msg.token, "msg_id", None)
        if token_id is None:
            token_id = getattr(msg.token, "request_id", None)
        if token_id is not None:
            key = (type(msg.token).__name__, token_id)
            if key in self._submitted_ids:
                return
            self._submitted_ids.add(key)
        self.propose(msg.token)

    def _pump_proposals(self) -> None:
        if self._proposing:
            return
        self._proposing = True
        try:
            while (
                self.leading
                and self.pending
                and len(self.outstanding) < self.config.window
            ):
                max_tokens = None
                policy = self._batch_policy
                if policy is not None:
                    now = self.env._now
                    depth = len(self.pending)
                    policy.observe(depth, now)
                    max_tokens = policy.target_tokens()
                # Burst credit must track the adaptive target: capping
                # credit at the static batch floor would clamp every
                # batch to ``batch_max_tokens`` values and pace the
                # datapath on sub-millisecond throttle wakeups that a
                # real event loop delivers late.
                if not self._admit_by_throttle(max_tokens):
                    break
                if policy is not None:
                    depth = len(self.pending)
                    if (
                        depth < max_tokens
                        and isinstance(self.pending[0], AppValue)
                    ):
                        # Partial batch: hold it open briefly so
                        # in-flight arrivals can join, bounded by the
                        # oldest pending token's linger deadline.
                        # Control/skip tokens never linger -- their
                        # pacing is the protocol's, not the policy's.
                        linger = policy.linger_s()
                        deadline = self._pending_oldest_at + linger
                        if linger > 0.0 and now < deadline:
                            self._schedule_linger(deadline, now)
                            break
                batch = self._take_batch(max_tokens)
                instance = self.next_instance
                self.next_instance += 1
                if self.cpu is not None:
                    cost = (
                        self.config.cpu_cost_per_batch
                        + self.config.cpu_cost_per_token * len(batch.tokens)
                        + self.config.cpu_cost_per_byte * batch.payload_bytes
                    )
                    self.outstanding[instance] = {
                        "batch": batch, "sent_at": None, "pending_cpu": True,
                    }
                    done = self.cpu.request(cost)
                    done.callbacks.append(
                        lambda _e, i=instance, b=batch: self._after_cpu(i, b)
                    )
                else:
                    self.outstanding[instance] = {
                        "batch": batch, "sent_at": self.env._now, "pending_cpu": False,
                    }
                    self._send_phase2(instance, batch)
        finally:
            self._proposing = False

    @property
    def effective_value_limit(self) -> Optional[float]:
        """Admission cap on application values, in values/second.

        λ is the *maximum* virtual throughput of a stream: exceeding it
        would let this stream's positions outrun its siblings' and
        unbalance the deterministic merge, so when skips are enabled λ
        also caps admission.  An explicit ``value_rate_limit`` (the 30%
        throttle of §VII-C) lowers the cap further.
        """
        config = self.config
        limit = config.value_rate_limit
        if config.skip_enabled:
            lam = float(config.lam)
            if limit is None or limit > lam:
                return lam
        return limit

    def _admit_by_throttle(self, burst_tokens: Optional[int] = None) -> bool:
        """Token-bucket throttle on application values (λ and the 30%
        cap of the vertical-scalability experiment).  Control/skip
        tokens are never throttled.

        The bucket holds up to one batch of burst credit so that
        batching still works under a throttle; admission of individual
        values advances the gate inside :meth:`_take_batch`.
        ``burst_tokens`` widens the credit cap to the adaptive batch
        target when adaptive batching is active.
        """
        limit = self.effective_value_limit
        if limit is None or not isinstance(self.pending[0], AppValue):
            return True
        now = self.env._now
        # Idle time accrues credit, capped at one full batch.
        if burst_tokens is None:
            burst_tokens = self.config.batch_max_tokens
        burst = burst_tokens / limit
        if self._value_gate_open < now - burst:
            self._value_gate_open = now - burst
        if self._value_gate_open > now:
            # Not yet admitted: re-pump when the gate opens.  At most
            # one wakeup is kept scheduled -- pump is re-entered from
            # every propose/decide as well, so extra wakeups would
            # accumulate quadratically.
            gate = self._value_gate_open
            if self._throttle_wakeup is None or self._throttle_wakeup > gate:
                self._throttle_wakeup = gate
                self.env.call_later(gate - now, self._throttle_wakeup_fired)
            return False
        return True

    def _throttle_wakeup_fired(self) -> None:
        self._throttle_wakeup = None
        self._pump_proposals()

    def _schedule_linger(self, deadline: float, now: float) -> None:
        """Keep at most one linger wakeup scheduled (pump is re-entered
        from every propose/decide too, mirroring the throttle wakeup)."""
        if self._linger_wakeup_at is None or self._linger_wakeup_at > deadline:
            self._linger_wakeup_at = deadline
            self.env.call_later(deadline - now, self._linger_fired)

    def _linger_fired(self) -> None:
        self._linger_wakeup_at = None
        self._pump_proposals()

    def _take_batch(self, max_tokens: Optional[int] = None) -> Batch:
        # Reused scratch list: ``Batch`` copies into a tuple anyway.
        tokens = self._batch_scratch
        tokens.clear()
        nbytes = 0
        limit = self.effective_value_limit
        now = self.env._now
        pending = self.pending
        config = self.config
        if max_tokens is None:
            max_tokens = config.batch_max_tokens
        max_bytes = config.batch_max_bytes
        while pending and len(tokens) < max_tokens:
            token = pending[0]
            size = getattr(token, "size", 0)
            if tokens and nbytes + size > max_bytes:
                break
            if limit is not None and isinstance(token, AppValue):
                if self._value_gate_open > now:
                    break   # bucket drained: the rest waits for credit
                self._value_gate_open = max(
                    self._value_gate_open, now - max_tokens / limit
                ) + 1.0 / limit
            tokens.append(pending.popleft())
            nbytes += size
        since = self._pending_since
        if since is not None and tokens:
            first = since[0] if since else now
            for _ in range(min(len(tokens), len(since))):
                since.popleft()
            if any(isinstance(t, AppValue) for t in tokens):
                self._metrics.histogram(self.name, "batch_wait_ms").record(
                    1000.0 * (now - first)
                )
        return Batch(tokens=tuple(tokens))

    def _after_cpu(self, instance: int, batch: Batch) -> None:
        info = self.outstanding.get(instance)
        if info is None:
            return
        info["pending_cpu"] = False
        info["sent_at"] = self.env._now
        self._send_phase2(instance, batch)
        self._pump_proposals()

    def _send_phase2(self, instance: int, batch: Batch) -> None:
        if instance not in self.outstanding:
            self.outstanding[instance] = {
                "batch": batch, "sent_at": self.env._now, "pending_cpu": False,
            }
        self.outstanding[instance]["acks"] = set()
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "coord.phase2", self.env._now, coordinator=self.name,
                stream=self.stream, instance=instance,
                msg_ids=_batch_msg_ids(batch), positions=batch.positions(),
            )
        if self.config.ring_mode:
            message = RingAccept(
                stream=self.stream,
                ballot=self.ballot,
                instance=instance,
                batch=batch,
                accepted_by=0,
            )
            self.send(self.config.acceptors[0], message)
        else:
            message = Phase2a(
                stream=self.stream, ballot=self.ballot, instance=instance, batch=batch
            )
            self.send_all(list(self.config.acceptors), message)

    # -- deciding ---------------------------------------------------------------

    def on_phase2b(self, msg: Phase2b, src: str) -> None:
        if msg.ballot != self.ballot:
            return
        info = self.outstanding.get(msg.instance)
        if info is None:
            return
        info.setdefault("acks", set()).add(msg.acceptor)
        if len(info["acks"]) >= quorum_size(len(self.config.acceptors)):
            batch = info["batch"]
            decision = Decision(stream=self.stream, instance=msg.instance, batch=batch)
            targets = list(self.learners) + list(self.config.acceptors)
            self.send_all(targets, decision)
            # msg.acceptor's 2b is the one that closed the quorum: the
            # straggler the latency budget blames quorum_wait on.
            self._mark_decided(msg.instance, batch, closed_by=msg.acceptor)

    def on_decision(self, msg: Decision, src: str) -> None:
        """Ring mode: the last acceptor's decision comes back to us."""
        info = self.outstanding.get(msg.instance)
        batch = info["batch"] if info else msg.batch
        self._mark_decided(msg.instance, batch, closed_by=src)

    def _mark_decided(
        self, instance: int, batch: Batch, closed_by: Optional[str] = None
    ) -> None:
        if instance in self.decided_instances:
            return
        self.decided_instances.add(instance)
        info = self.outstanding.pop(instance, None)
        self.positions_decided += batch.positions()
        metrics = self._metrics
        if metrics is not None and not batch.is_pure_skip():
            # Per-stream *application* progress: skips are pacing, not
            # load, so the elasticity signal plane counts value tokens
            # only (``positions_decided`` grows at ~λ regardless of
            # load and cannot tell a hot stream from an idle one).
            values = sum(
                1 for t in batch.tokens if not isinstance(t, SkipToken)
            )
            metrics.counter(self.name, "values_decided").record(values)
            sent_at = info.get("sent_at") if info is not None else None
            if sent_at is not None:
                metrics.histogram(self.name, "decide_latency_ms").record(
                    1000.0 * (self.env._now - sent_at)
                )
        tracer = self._tracer
        if tracer is not None:
            fields = {
                "coordinator": self.name,
                "stream": self.stream,
                "instance": instance,
                "positions": batch.positions(),
            }
            if closed_by is not None:
                fields["closed_by"] = closed_by
            tracer.emit("coord.decide", self.env._now, **fields)
        self._pump_proposals()

    # -- skips ---------------------------------------------------------------

    def _skip_loop(self):
        """Top the stream up to the virtual rate λ every Δt.

        The target is *absolute*: position λ·now.  Pacing every stream
        against the same virtual position clock (instead of a relative
        λ·Δt increment per interval) keeps all streams of a deployment
        within ~λ·Δt positions of each other no matter when they were
        created -- a stream provisioned mid-run tops itself up to the
        ensemble's position in its first tick, and transient offsets
        heal instead of persisting as permanent merge latency.
        """
        while True:
            try:
                yield self.env.timeout(self.config.delta_t)
            except Interrupt:
                return
            if not self.leading:
                continue
            deficit = int(self.config.lam * self.env._now) - self.positions_proposed
            if deficit > 0:
                tracer = self._tracer
                if tracer is not None:
                    tracer.emit(
                        "coord.skip", self.env._now, coordinator=self.name,
                        stream=self.stream, count=deficit,
                    )
                metrics = self._metrics
                if metrics is not None:
                    metrics.counter(self.name, "skip_positions").record(deficit)
                self.propose(SkipToken(count=deficit))

    # -- retransmission ---------------------------------------------------------

    def _retransmit_loop(self):
        while True:
            try:
                yield self.env.timeout(self.config.retransmit_timeout)
            except Interrupt:
                return
            if not self.leading:
                continue
            deadline = self.env._now - self.config.retransmit_timeout
            for instance, info in sorted(self.outstanding.items()):
                sent_at = info.get("sent_at")
                if sent_at is not None and sent_at <= deadline:
                    tracer = self._tracer
                    if tracer is not None:
                        tracer.emit(
                            "coord.retransmit", self.env._now,
                            coordinator=self.name, stream=self.stream,
                            instance=instance,
                        )
                    metrics = self._metrics
                    if metrics is not None:
                        metrics.counter(self.name, "retransmits").record()
                    self._send_phase2(instance, info["batch"])
                    info["sent_at"] = self.env._now

    # -- log management -----------------------------------------------------------

    def trim(self, below: int) -> None:
        """Ask all acceptors to trim their logs below ``below``."""
        message = Trim(stream=self.stream, below=below)
        self.send_all(list(self.config.acceptors), message)
