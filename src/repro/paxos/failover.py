"""Coordinator failure detection and automatic failover.

The system model (§II) is crash-recovery with partial synchrony: before
GST no timing assumption holds, so a failure detector can only be
unreliable.  :class:`FailoverMonitor` implements the standard
heartbeat detector: it probes the active coordinator every ``interval``
and, after ``misses`` consecutive unanswered probes, promotes the
standby coordinator, which claims the stream with a higher ballot
(Paxos keeps this safe even when the suspicion was wrong -- the two
coordinators merely duel over ballots, they can never decide
conflicting values; see tests/properties/test_paxos_safety.py).
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from ..net.actor import Actor
from ..runtime.kernel import Interrupt, Kernel, Transport
from .coordinator import CoordinatorActor
from .messages import Heartbeat, HeartbeatAck

__all__ = ["FailoverMonitor", "RingWatchdog"]

_nonces = itertools.count(1)


class FailoverMonitor(Actor):
    """Heartbeats the active coordinator; promotes the standby on silence."""

    def __init__(
        self,
        env: Kernel,
        network: Transport,
        name: str,
        active: str,
        standby: CoordinatorActor,
        interval: float = 0.1,
        misses: int = 3,
        on_failover: Optional[Callable[[], None]] = None,
    ):
        super().__init__(env, network, name)
        if misses < 1:
            raise ValueError("misses must be >= 1")
        self.active = active
        self.standby = standby
        self.interval = interval
        self.misses = misses
        self.on_failover = on_failover
        self.failed_over = False
        self.failover_at: Optional[float] = None
        self._outstanding: Optional[int] = None
        self._missed = 0
        self._proc = None

    def start(self) -> None:
        super().start()
        self._proc = self.env.process(self._probe_loop())

    def stop(self) -> None:
        super().stop()
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
        self._proc = None

    def watch(self, active: str, standby: CoordinatorActor) -> None:
        """Re-arm the monitor against a new active/standby pair.

        After a failover the probe loop has exited; chained fault
        scenarios (the promoted coordinator crashing in turn) re-arm the
        monitor once a fresh standby is deployed.
        """
        self.active = active
        self.standby = standby
        self.failed_over = False
        self.failover_at = None
        self._outstanding = None
        self._missed = 0
        if self._proc is None or not self._proc.is_alive:
            self._proc = self.env.process(self._probe_loop())

    def _probe_loop(self):
        while not self.failed_over:
            nonce = next(_nonces)
            self._outstanding = nonce
            self.send(self.active, Heartbeat(nonce=nonce))
            try:
                yield self.env.timeout(self.interval)
            except Interrupt:
                return
            if self._outstanding is None:
                self._missed = 0      # the ack arrived in time
                continue
            self._missed += 1
            if self._missed >= self.misses:
                self._fail_over()
                return

    def on_heartbeat_ack(self, msg: HeartbeatAck, src: str) -> None:
        if msg.nonce == self._outstanding:
            self._outstanding = None

    def _fail_over(self) -> None:
        self.failed_over = True
        self.failover_at = self.env.now
        self.standby.promote()
        if self.on_failover is not None:
            self.on_failover()


class RingWatchdog(Actor):
    """Heartbeats every acceptor of a ring; reports the ones that go
    silent so the deployment can reform the ring around them (the role
    ZooKeeper's ephemeral ring nodes play for URingPaxos)."""

    def __init__(
        self,
        env: Kernel,
        network: Transport,
        name: str,
        targets: list[str],
        on_suspect: Callable[[str], None],
        interval: float = 0.1,
        misses: int = 3,
    ):
        super().__init__(env, network, name)
        if misses < 1:
            raise ValueError("misses must be >= 1")
        self.targets = list(targets)
        self.on_suspect = on_suspect
        self.interval = interval
        self.misses = misses
        self.suspected: set[str] = set()
        self._outstanding: dict[int, str] = {}
        self._missed: dict[str, int] = {t: 0 for t in targets}
        self._proc = None

    def start(self) -> None:
        super().start()
        self._proc = self.env.process(self._probe_loop())

    def stop(self) -> None:
        super().stop()
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("stop")
        self._proc = None

    def forget(self, target: str) -> None:
        """Stop probing a removed ring member."""
        if target in self.targets:
            self.targets.remove(target)
        self._missed.pop(target, None)

    def _probe_loop(self):
        while True:
            self._outstanding.clear()
            for target in self.targets:
                if target in self.suspected:
                    continue
                nonce = next(_nonces)
                self._outstanding[nonce] = target
                self.send(target, Heartbeat(nonce=nonce))
            try:
                yield self.env.timeout(self.interval)
            except Interrupt:
                return
            for _nonce, target in list(self._outstanding.items()):
                if target not in self._missed:
                    continue
                self._missed[target] += 1
                if self._missed[target] >= self.misses:
                    self.suspected.add(target)
                    self.on_suspect(target)

    def on_heartbeat_ack(self, msg: HeartbeatAck, src: str) -> None:
        target = self._outstanding.pop(msg.nonce, None)
        if target is not None and target in self._missed:
            self._missed[target] = 0
