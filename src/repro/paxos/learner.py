"""Paxos learner: in-order delivery of decided instances.

A learner buffers out-of-order decisions, delivers them to its callback
strictly by instance number, and repairs gaps (lost decisions, or a
whole backlog when an Elastic Paxos replica subscribes to an existing
stream) by requesting decided instances from acceptors in pages.

Two packagings of the same logic:

* :class:`LearnerCore` -- transport-agnostic; a replica hosts one core
  per subscribed stream (the "learner tasks" of Algorithm 1) on its own
  network identity;
* :class:`LearnerActor` -- a core with its own host, for deployments
  where the learner is a separate process.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..net.actor import Actor
from ..runtime.kernel import Interrupt, Kernel, Transport
from .config import StreamConfig
from .messages import Decision, RecoverReply, RecoverRequest
from .types import Batch

__all__ = ["LearnerCore", "LearnerActor"]


class LearnerCore:
    """In-order decision delivery for one stream.

    ``on_deliver(instance, batch)`` is invoked exactly once per
    instance, in instance order.  ``send(acceptor_name, message)`` is
    how the core reaches acceptors for recovery.
    """

    def __init__(
        self,
        env: Kernel,
        config: StreamConfig,
        on_deliver: Callable[[int, Batch], None],
        send: Callable[[str, object], None],
        gap_timeout: float = 0.2,
        on_rebase: Optional[Callable[[int, int], None]] = None,
        start_instance: int = 0,
        owner: str = "",
    ):
        self.env = env
        # Fixed at environment construction; cached for the hot probes.
        self._tracer = env.tracer
        self._metrics = env.metrics
        self.config = config
        self.stream = config.name
        self.on_deliver = on_deliver
        self.send = send
        self.gap_timeout = gap_timeout
        # Trace/metrics identity of the replica hosting this learner task.
        self.owner = owner or f"learner:{config.name}"
        # Called as on_rebase(first_instance, base_position) when the
        # acceptors' logs were trimmed below our start: the token log
        # must be seeded at the trimmed prefix's position.
        self.on_rebase = on_rebase

        self.next_instance = start_instance
        self.buffer: dict[int, Batch] = {}
        self.delivered_instances = 0
        self.catching_up = False
        self._recover_acceptor_rr = 0
        self._gap_since: Optional[float] = None
        self._recovery_requested_at: Optional[float] = None
        self._recovery_page_start: Optional[int] = None
        self._gap_proc = None

    def start(self) -> None:
        if self._gap_proc is None or not self._gap_proc.is_alive:
            self._gap_proc = self.env.process(self._gap_repair_loop())

    def stop(self) -> None:
        if self._gap_proc is not None and self._gap_proc.is_alive:
            self._gap_proc.interrupt("stop")
        self._gap_proc = None

    # -- live decisions ----------------------------------------------------

    def on_decision(self, msg: Decision, src: str) -> None:
        self._ingest(msg.instance, msg.batch)

    def _ingest(self, instance: int, batch: Batch) -> None:
        if instance < self.next_instance or instance in self.buffer:
            return  # duplicate (retransmission or recovery overlap)
        self.buffer[instance] = batch
        self._drain()

    def _drain(self) -> None:
        while self.next_instance in self.buffer:
            batch = self.buffer.pop(self.next_instance)
            instance = self.next_instance
            self.next_instance += 1
            self.delivered_instances += 1
            self.on_deliver(instance, batch)
        if not self.buffer:
            self._gap_since = None
        elif self._gap_since is None:
            # Start the gap clock only when the gap first appears: live
            # decisions keep arriving while we are stuck, and refreshing
            # the clock on every ingest would starve the repair forever.
            self._gap_since = self.env._now

    # -- recovery -----------------------------------------------------------

    def start_recovery(self) -> None:
        """Catch up on everything decided so far (new subscriber path)."""
        self.catching_up = True
        self._recovery_requested_at = self.env._now
        self._request_recovery(self.next_instance, -1)

    def _request_recovery(self, from_instance: int, to_instance: int) -> None:
        acceptor = self.config.acceptors[
            self._recover_acceptor_rr % len(self.config.acceptors)
        ]
        self._recover_acceptor_rr += 1
        self._recovery_requested_at = self.env._now
        self._recovery_page_start = from_instance
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "learner.recover.request", self.env._now, owner=self.owner,
                stream=self.stream, from_instance=from_instance,
                to_instance=to_instance, acceptor=acceptor,
            )
        metrics = self._metrics
        if metrics is not None:
            metrics.counter(self.owner, "catch_up_pages").record()
        self.send(
            acceptor,
            RecoverRequest(
                stream=self.stream,
                from_instance=from_instance,
                to_instance=to_instance,
            ),
        )

    def on_recover_reply(self, msg: RecoverReply, src: str) -> None:
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "learner.recover.reply", self.env._now, owner=self.owner,
                stream=self.stream, decided=len(msg.decided),
                trimmed_below=msg.trimmed_below,
            )
        if msg.trimmed_below > self.next_instance:
            if self.delivered_instances > 0:
                raise RuntimeError(
                    f"learner of {self.stream} lost instances "
                    f"[{self.next_instance}, {msg.trimmed_below}): acceptor "
                    "logs were trimmed past an active consumer"
                )
            # Fresh learner: start from the trim horizon; the trimmed
            # prefix's positions are accounted for via the base.
            self.next_instance = msg.trimmed_below
            if self.on_rebase is not None:
                self.on_rebase(msg.trimmed_below, msg.base_position)
        for instance, batch in msg.decided:
            self._ingest(instance, batch)
        if self.catching_up:
            if msg.highest_decided >= self.next_instance and msg.decided:
                # More history remains: fetch the next page -- but only
                # if this reply advanced us past the page we last asked
                # for.  A duplicated reply (the network may duplicate
                # datagrams) must not fork the paging loop: each extra
                # request would draw an extra reply, amplifying
                # exponentially.  Lost replies are retried by the
                # gap-repair loop, so pacing costs no liveness.
                if (
                    self._recovery_page_start is None
                    or self.next_instance > self._recovery_page_start
                ):
                    self._request_recovery(self.next_instance, -1)
            else:
                self.catching_up = False

    # -- gap repair -----------------------------------------------------------

    def _gap_repair_loop(self):
        """Repair holes left by lost decision messages.

        If delivery has been stuck behind a gap for longer than
        ``gap_timeout`` while later instances sit in the buffer, fetch
        the missing range from an acceptor.
        """
        while True:
            try:
                yield self.env.timeout(self.gap_timeout)
            except Interrupt:
                return
            if self.catching_up:
                # The catch-up request (or its reply) may have been lost
                # in a partition: retry towards another acceptor.
                if (
                    self._recovery_requested_at is not None
                    and self.env._now - self._recovery_requested_at
                    >= 2 * self.gap_timeout
                ):
                    self._request_recovery(self.next_instance, -1)
                continue
            if not self.buffer:
                continue
            if (
                self._gap_since is not None
                and self.env._now - self._gap_since >= self.gap_timeout
            ):
                gap_end = min(self.buffer)
                tracer = self._tracer
                if tracer is not None:
                    tracer.emit(
                        "learner.gap_repair", self.env._now, owner=self.owner,
                        stream=self.stream, from_instance=self.next_instance,
                        to_instance=gap_end,
                    )
                metrics = self._metrics
                if metrics is not None:
                    metrics.counter(self.owner, "gap_repairs").record()
                self._request_recovery(self.next_instance, gap_end)
                self._gap_since = self.env._now


class LearnerActor(Actor):
    """A standalone learner process (its own host) for one stream."""

    def __init__(
        self,
        env: Kernel,
        network: Transport,
        name: str,
        config: StreamConfig,
        on_deliver: Callable[[int, Batch], None],
        gap_timeout: float = 0.2,
    ):
        super().__init__(env, network, name)
        self.core = LearnerCore(
            env, config, on_deliver, send=self.send, gap_timeout=gap_timeout
        )

    def start(self) -> None:
        super().start()
        self.core.start()

    def stop(self) -> None:
        super().stop()
        self.core.stop()

    def start_recovery(self) -> None:
        self.core.start_recovery()

    @property
    def next_instance(self) -> int:
        return self.core.next_instance

    @property
    def delivered_instances(self) -> int:
        return self.core.delivered_instances

    def on_decision(self, msg: Decision, src: str) -> None:
        self.core.on_decision(msg, src)

    def on_recover_reply(self, msg: RecoverReply, src: str) -> None:
        self.core.on_recover_reply(msg, src)
