"""Paxos protocol messages.

Classic message flow (one stream):

* clients hand values to the coordinator with :class:`Propose`;
* the coordinator runs Phase 1 once per ballot over an open-ended
  instance window (:class:`Phase1a` / :class:`Phase1b`);
* each instance is then decided with a single round trip
  (:class:`Phase2a` / :class:`Phase2b`) to a quorum of acceptors;
* :class:`Decision` carries the decided batch to the learners.

Ring dissemination replaces the 2a/2b fan-out: the coordinator sends
:class:`RingAccept` to the first acceptor, each acceptor accepts and
forwards, and the last acceptor emits the :class:`Decision`.

Recovery (:class:`RecoverRequest` / :class:`RecoverReply`) lets a
learner fetch decided instances from acceptors -- this is the mechanism
a newly-subscribing Elastic Paxos replica uses to catch up on a stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.messages import FastMessage, Message, WIRE_HEADER_BYTES
from .types import Batch

__all__ = [
    "Decision",
    "Phase1a",
    "Phase1b",
    "Phase2a",
    "Phase2b",
    "Propose",
    "RecoverRequest",
    "RecoverReply",
    "RingAccept",
    "Trim",
]


def _batch_wire_size(batch: Optional[Batch]) -> int:
    if batch is None:
        return 1
    # ``payload_bytes`` is precomputed at Batch construction.
    return 16 + 16 * len(batch.tokens) + batch.payload_bytes


class Propose(FastMessage):
    """A client (or the multicast layer) submits one token for ordering."""

    __slots__ = ("stream", "token")
    _FIELDS = ("stream", "token")

    def __init__(self, stream: str, token: object):
        self.stream = stream
        self.token = token   # a Token; opaque to Paxos

    def wire_size(self) -> int:
        return WIRE_HEADER_BYTES + getattr(self.token, "size", 16)


@dataclass(frozen=True, slots=True)
class Phase1a(Message):
    """Coordinator asks acceptors to promise ballot ``ballot`` for all
    instances >= ``from_instance``."""

    stream: str
    ballot: int
    from_instance: int


@dataclass(frozen=True, slots=True)
class Phase1b(Message):
    """Acceptor's promise, reporting previously accepted values."""

    stream: str
    ballot: int
    acceptor: str
    # {instance: (vrnd, batch)} for instances >= from_instance
    accepted: tuple  # tuple of (instance, vrnd, Batch)

    def wire_size(self) -> int:
        return WIRE_HEADER_BYTES + sum(
            24 + _batch_wire_size(b) for (_i, _r, b) in self.accepted
        )


class Phase2a(FastMessage):
    """Coordinator proposes ``batch`` for ``instance`` at ``ballot``."""

    __slots__ = ("stream", "ballot", "instance", "batch")
    _FIELDS = ("stream", "ballot", "instance", "batch")

    def __init__(self, stream: str, ballot: int, instance: int, batch: Batch):
        self.stream = stream
        self.ballot = ballot
        self.instance = instance
        self.batch = batch

    def wire_size(self) -> int:
        return WIRE_HEADER_BYTES + 16 + _batch_wire_size(self.batch)


class Phase2b(FastMessage):
    """Acceptor's acceptance of (ballot, instance)."""

    __slots__ = ("stream", "ballot", "instance", "acceptor")
    _FIELDS = ("stream", "ballot", "instance", "acceptor")

    def __init__(self, stream: str, ballot: int, instance: int, acceptor: str):
        self.stream = stream
        self.ballot = ballot
        self.instance = instance
        self.acceptor = acceptor

    def wire_size(self) -> int:
        # Generic estimate, flattened: header + two ints + two strings.
        return WIRE_HEADER_BYTES + 16 + len(self.stream) + len(self.acceptor)


class RingAccept(FastMessage):
    """Phase 2 around the ring: accept and forward.

    ``accepted_by`` counts acceptors that have already accepted; when it
    reaches the ring size the value is decided.
    """

    __slots__ = ("stream", "ballot", "instance", "batch", "accepted_by")
    _FIELDS = ("stream", "ballot", "instance", "batch", "accepted_by")

    def __init__(
        self, stream: str, ballot: int, instance: int, batch: Batch,
        accepted_by: int,
    ):
        self.stream = stream
        self.ballot = ballot
        self.instance = instance
        self.batch = batch
        self.accepted_by = accepted_by

    def wire_size(self) -> int:
        batch = self.batch   # never None on the ring path
        return (
            WIRE_HEADER_BYTES + 36 + 16 * len(batch.tokens)
            + batch.payload_bytes
        )


class Decision(FastMessage):
    """A decided instance, disseminated to learners."""

    __slots__ = ("stream", "instance", "batch")
    _FIELDS = ("stream", "instance", "batch")

    def __init__(self, stream: str, instance: int, batch: Batch):
        self.stream = stream
        self.instance = instance
        self.batch = batch

    def wire_size(self) -> int:
        batch = self.batch   # never None in a decision
        return (
            WIRE_HEADER_BYTES + 24 + 16 * len(batch.tokens)
            + batch.payload_bytes
        )


@dataclass(frozen=True, slots=True)
class RecoverRequest(Message):
    """Learner asks an acceptor for decided instances in
    ``[from_instance, to_instance)`` (``to_instance`` = -1 means "all
    decided so far")."""

    stream: str
    from_instance: int
    to_instance: int = -1


@dataclass(frozen=True, slots=True)
class RecoverReply(Message):
    """Acceptor's reply: decided ``(instance, Batch)`` pairs plus the
    acceptor's trim horizon and highest decided instance."""

    stream: str
    decided: tuple  # tuple of (instance, Batch)
    trimmed_below: int
    highest_decided: int
    # Stream positions covered by the trimmed prefix; a fresh learner
    # seeds its token log here so positions stay absolute.
    base_position: int = 0

    def wire_size(self) -> int:
        return WIRE_HEADER_BYTES + sum(
            12 + _batch_wire_size(b) for (_i, b) in self.decided
        )


@dataclass(frozen=True, slots=True)
class Trim(Message):
    """Instruct an acceptor to drop decided instances below ``below``."""

    stream: str
    below: int


@dataclass(frozen=True, slots=True)
class Heartbeat(Message):
    """Failure-detector probe."""

    nonce: int


@dataclass(frozen=True, slots=True)
class HeartbeatAck(Message):
    """Reply to a :class:`Heartbeat`."""

    nonce: int
