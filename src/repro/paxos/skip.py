"""The λ/Δt skip mechanism of Multi-Ring Paxos (§III-B, §VII-A).

Replicas subscribed to several streams merge them round-robin, so the
merged delivery rate is gated by the *slowest* stream.  To stop an idle
stream from stalling the merge, its coordinator periodically tops the
stream up with skip tokens so that every stream advances at the same
virtual rate λ (stream positions per second), sampled every Δt.

The paper runs all experiments with λ = 4000 and Δt = 100 ms.

Two pacing policies exist:

* **relative** (this module's :class:`SkipCalculator`): each interval
  is topped up to λ·Δt positions.  This is the textbook Multi-Ring
  Paxos formulation, kept as the reference implementation;
* **absolute** (what :class:`repro.paxos.coordinator.CoordinatorActor`
  uses): the stream is topped up to position λ·now, pinning every
  stream of a deployment to one global virtual position clock, so
  streams created mid-run self-align and transient offsets heal rather
  than persisting as merge latency.
"""

from __future__ import annotations

__all__ = ["SkipCalculator", "DEFAULT_LAMBDA", "DEFAULT_DELTA_T"]

DEFAULT_LAMBDA = 4000      # stream positions per second
DEFAULT_DELTA_T = 0.100    # sampling interval in seconds


class SkipCalculator:
    """Tracks positions generated per sampling interval and computes the
    skip top-up needed to sustain the virtual rate λ.

    The calculator is deliberately stateful-but-pure (no simulation
    dependencies): the coordinator feeds it ``positions_generated`` and
    asks :meth:`skip_needed` once per Δt tick.
    """

    def __init__(self, lam: int = DEFAULT_LAMBDA, delta_t: float = DEFAULT_DELTA_T):
        if lam <= 0:
            raise ValueError("lambda must be positive")
        if delta_t <= 0:
            raise ValueError("delta_t must be positive")
        self.lam = lam
        self.delta_t = delta_t
        self._generated_this_interval = 0
        # Fractional positions carried between intervals so that λ·Δt
        # not being an integer never drifts the virtual rate.
        self._carry = 0.0

    @property
    def target_per_interval(self) -> float:
        return self.lam * self.delta_t

    def record_positions(self, count: int) -> None:
        """Report ``count`` stream positions proposed (values or skips)."""
        if count < 0:
            raise ValueError("count must be >= 0")
        self._generated_this_interval += count

    def skip_needed(self) -> int:
        """Close the current interval and return the skip top-up size.

        Returns 0 when the stream generated at least λ·Δt positions by
        itself (a loaded stream never skips).
        """
        target = self.target_per_interval + self._carry
        deficit = target - self._generated_this_interval
        self._generated_this_interval = 0
        if deficit <= 0:
            self._carry = 0.0
            return 0
        whole = int(deficit)
        self._carry = deficit - whole
        return whole
