"""Value types ordered by a Paxos stream.

A consensus instance decides a :class:`Batch`: either a batch of
application *tokens* or a skip.  Tokens are what the deterministic
merger of Elastic Paxos consumes; each token occupies one *stream
position*:

* :class:`AppValue` -- one application message (a multicast payload);
* :class:`SkipToken` -- ``count`` empty positions, proposed by the
  coordinator so an under-loaded stream still advances at the virtual
  rate λ (Multi-Ring Paxos);
* :class:`SubscribeMsg` / :class:`UnsubscribeMsg` -- Elastic Paxos
  control messages, ordered inside the streams themselves so that their
  stream position is the "timestamp" the merge point is computed from;
* :class:`PrepareMsg` -- the optimization hint of §V-C; delivered like
  an app message but carrying no application payload.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Union

__all__ = [
    "AppValue",
    "Batch",
    "PrepareMsg",
    "SkipToken",
    "SubscribeMsg",
    "Token",
    "UnsubscribeMsg",
    "fresh_value_id",
    "token_positions",
]

_ids = itertools.count(1)


def fresh_value_id() -> int:
    """Globally unique id for values created in this process."""
    return next(_ids)


class AppValue:
    """One application message multicast to a stream.

    Hand-written (not a dataclass): values are minted on every client
    multicast and the frozen-dataclass construction protocol is
    measurable at that rate.  Immutable by convention.
    """

    __slots__ = ("payload", "size", "msg_id", "sender")

    def __init__(
        self,
        payload: Any,
        size: int = 128,                 # application payload bytes
        msg_id: Optional[int] = None,
        sender: str = "",
    ):
        self.payload = payload
        self.size = size
        self.msg_id = fresh_value_id() if msg_id is None else msg_id
        self.sender = sender

    def positions(self) -> int:
        return 1

    def __repr__(self) -> str:
        return (
            f"AppValue(payload={self.payload!r}, size={self.size!r}, "
            f"msg_id={self.msg_id!r}, sender={self.sender!r})"
        )

    def __eq__(self, other: Any) -> Any:
        if other.__class__ is not AppValue:
            return NotImplemented
        return (
            self.payload == other.payload
            and self.size == other.size
            and self.msg_id == other.msg_id
            and self.sender == other.sender
        )

    def __hash__(self) -> int:
        return hash((self.payload, self.size, self.msg_id, self.sender))


@dataclass(frozen=True, slots=True)
class SkipToken:
    """``count`` skipped stream positions (never delivered)."""

    count: int

    def positions(self) -> int:
        return self.count


@dataclass(frozen=True, slots=True)
class SubscribeMsg:
    """Request that replication group ``group`` subscribe to ``stream``.

    Ordered in both the new stream and one currently subscribed stream;
    ``request_id`` identifies the two copies as the same request.
    """

    group: str
    stream: str
    request_id: int = field(default_factory=fresh_value_id)

    def positions(self) -> int:
        return 1


@dataclass(frozen=True, slots=True)
class UnsubscribeMsg:
    """Request that ``group`` unsubscribe from ``stream``."""

    group: str
    stream: str
    request_id: int = field(default_factory=fresh_value_id)

    def positions(self) -> int:
        return 1


@dataclass(frozen=True, slots=True)
class PrepareMsg:
    """Hint (§V-C): ``group`` will soon subscribe to ``stream``;
    replicas should start recovering it in the background."""

    group: str
    stream: str
    request_id: int = field(default_factory=fresh_value_id)

    def positions(self) -> int:
        return 1


Token = Union[AppValue, SkipToken, SubscribeMsg, UnsubscribeMsg, PrepareMsg]


class Batch:
    """The value decided by one consensus instance.

    Hand-written for construction speed; ``payload_bytes`` is derived
    from ``tokens`` once here instead of being re-summed on every
    wire-size computation.  Immutable by convention; equality, hash and
    repr go by ``tokens`` alone.
    """

    __slots__ = ("tokens", "payload_bytes")

    def __init__(self, tokens: tuple = (), payload_bytes: int = -1):
        self.tokens = tokens
        if payload_bytes < 0:
            payload_bytes = sum(
                t.size for t in tokens if isinstance(t, AppValue)
            )
        self.payload_bytes = payload_bytes

    def positions(self) -> int:
        return token_positions(self.tokens)

    def is_pure_skip(self) -> bool:
        return all(isinstance(t, SkipToken) for t in self.tokens)

    def __repr__(self) -> str:
        return f"Batch(tokens={self.tokens!r})"

    def __eq__(self, other: Any) -> Any:
        if other.__class__ is not Batch:
            return NotImplemented
        return self.tokens == other.tokens

    def __hash__(self) -> int:
        return hash(self.tokens)


def token_positions(tokens) -> int:
    """Total stream positions occupied by ``tokens``."""
    return sum(t.positions() for t in tokens)
