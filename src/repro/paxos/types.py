"""Value types ordered by a Paxos stream.

A consensus instance decides a :class:`Batch`: either a batch of
application *tokens* or a skip.  Tokens are what the deterministic
merger of Elastic Paxos consumes; each token occupies one *stream
position*:

* :class:`AppValue` -- one application message (a multicast payload);
* :class:`SkipToken` -- ``count`` empty positions, proposed by the
  coordinator so an under-loaded stream still advances at the virtual
  rate λ (Multi-Ring Paxos);
* :class:`SubscribeMsg` / :class:`UnsubscribeMsg` -- Elastic Paxos
  control messages, ordered inside the streams themselves so that their
  stream position is the "timestamp" the merge point is computed from;
* :class:`PrepareMsg` -- the optimization hint of §V-C; delivered like
  an app message but carrying no application payload.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Union

__all__ = [
    "AppValue",
    "Batch",
    "PrepareMsg",
    "SkipToken",
    "SubscribeMsg",
    "Token",
    "UnsubscribeMsg",
    "fresh_value_id",
    "token_positions",
]

_ids = itertools.count(1)


def fresh_value_id() -> int:
    """Globally unique id for values created in this process."""
    return next(_ids)


@dataclass(frozen=True)
class AppValue:
    """One application message multicast to a stream."""

    payload: Any
    size: int = 128                 # application payload bytes
    msg_id: int = field(default_factory=fresh_value_id)
    sender: str = ""

    def positions(self) -> int:
        return 1


@dataclass(frozen=True)
class SkipToken:
    """``count`` skipped stream positions (never delivered)."""

    count: int

    def positions(self) -> int:
        return self.count


@dataclass(frozen=True)
class SubscribeMsg:
    """Request that replication group ``group`` subscribe to ``stream``.

    Ordered in both the new stream and one currently subscribed stream;
    ``request_id`` identifies the two copies as the same request.
    """

    group: str
    stream: str
    request_id: int = field(default_factory=fresh_value_id)

    def positions(self) -> int:
        return 1


@dataclass(frozen=True)
class UnsubscribeMsg:
    """Request that ``group`` unsubscribe from ``stream``."""

    group: str
    stream: str
    request_id: int = field(default_factory=fresh_value_id)

    def positions(self) -> int:
        return 1


@dataclass(frozen=True)
class PrepareMsg:
    """Hint (§V-C): ``group`` will soon subscribe to ``stream``;
    replicas should start recovering it in the background."""

    group: str
    stream: str
    request_id: int = field(default_factory=fresh_value_id)

    def positions(self) -> int:
        return 1


Token = Union[AppValue, SkipToken, SubscribeMsg, UnsubscribeMsg, PrepareMsg]


@dataclass(frozen=True)
class Batch:
    """The value decided by one consensus instance."""

    tokens: tuple = ()

    def positions(self) -> int:
        return token_positions(self.tokens)

    @property
    def payload_bytes(self) -> int:
        return sum(t.size for t in self.tokens if isinstance(t, AppValue))

    def is_pure_skip(self) -> bool:
        return all(isinstance(t, SkipToken) for t in self.tokens)


def token_positions(tokens) -> int:
    """Total stream positions occupied by ``tokens``."""
    return sum(t.positions() for t in tokens)
