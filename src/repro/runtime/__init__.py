"""Execution backends for the Elastic Paxos protocol actors.

``repro.runtime`` owns the :class:`~repro.runtime.kernel.Kernel` /
:class:`~repro.runtime.kernel.Transport` interfaces the protocol layer
codes against, and the *live* implementation that runs the unchanged
actors over real asyncio TCP sockets on localhost:

* :mod:`repro.runtime.kernel` -- the interfaces (plus the shared
  :class:`Interrupt` / :class:`Envelope` types);
* :mod:`repro.runtime.resources` -- kernel-generic capacity models
  (:class:`Server`);
* :mod:`repro.runtime.codec` -- versioned binary wire codec for every
  registered message class;
* :mod:`repro.runtime.asyncio_kernel` -- :class:`AsyncioKernel`, the
  event-loop implementation of the kernel interface;
* :mod:`repro.runtime.transport` -- :class:`TcpTransport`,
  length-prefixed TCP with per-peer reconnect and backpressure;
* :mod:`repro.runtime.supervisor` -- :class:`LiveCluster` and
  :func:`run_live`, the ``python -m repro live`` entry point;
* :mod:`repro.runtime.telemetry` -- per-node tracer/metrics/HTTP
  endpoint assembly (:class:`NodeTelemetry`) for the live telemetry
  plane;
* :mod:`repro.runtime.console` -- the ``python -m repro top``
  dashboard over those endpoints;
* :mod:`repro.runtime.profiling` -- the always-on stack sampler and
  event-loop-lag probe (``repro live --profile-dir``, ``/profile``).

Only the interface module is imported eagerly: the simulator kernel
imports :mod:`repro.runtime.kernel` for the shared types, so this
package ``__init__`` must never (transitively) import ``repro.sim``.
The live backend is loaded lazily via ``__getattr__``.
"""

from __future__ import annotations

from .kernel import Envelope, Interrupt, Kernel, Transport

__all__ = [
    "AsyncioKernel",
    "Envelope",
    "NodeTelemetry",
    "TelemetryServer",
    "decode",
    "decode_with_context",
    "encode",
    "Interrupt",
    "Kernel",
    "LiveCluster",
    "LiveConfig",
    "LiveNode",
    "LiveReport",
    "LoopLagProbe",
    "StackSampler",
    "TcpTransport",
    "Transport",
    "prometheus_text",
    "run_live",
    "run_top",
]

_LAZY = {
    "encode": ("repro.runtime.codec", "encode"),
    "decode": ("repro.runtime.codec", "decode"),
    "decode_with_context": ("repro.runtime.codec", "decode_with_context"),
    "AsyncioKernel": ("repro.runtime.asyncio_kernel", "AsyncioKernel"),
    "TcpTransport": ("repro.runtime.transport", "TcpTransport"),
    "LiveCluster": ("repro.runtime.supervisor", "LiveCluster"),
    "LiveConfig": ("repro.runtime.supervisor", "LiveConfig"),
    "LiveNode": ("repro.runtime.supervisor", "LiveNode"),
    "LiveReport": ("repro.runtime.supervisor", "LiveReport"),
    "run_live": ("repro.runtime.supervisor", "run_live"),
    "NodeTelemetry": ("repro.runtime.telemetry", "NodeTelemetry"),
    "TelemetryServer": ("repro.runtime.telemetry", "TelemetryServer"),
    "prometheus_text": ("repro.runtime.telemetry", "prometheus_text"),
    "run_top": ("repro.runtime.console", "run_top"),
    "StackSampler": ("repro.runtime.profiling", "StackSampler"),
    "LoopLagProbe": ("repro.runtime.profiling", "LoopLagProbe"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)
