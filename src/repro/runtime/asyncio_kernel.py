"""Asyncio implementation of the :class:`repro.runtime.kernel.Kernel`.

The protocol actors are generator processes that yield events; the
simulator drives them from a virtual-time calendar.  This module drives
the *same* generators from a real asyncio event loop: events are
processed via ``loop.call_soon``, timeouts via ``loop.call_later``, and
the clock is wall seconds since kernel construction.

The event/process semantics deliberately mirror ``repro.sim.core``
(callback list becomes ``None`` once processed, failures must be
defused by a waiter, interrupts detach from wait targets) so protocol
code cannot tell which backend it is running on.  What does *not* carry
over is determinism: the OS scheduler orders ready callbacks, so two
live runs are never bit-identical -- golden digests apply to the sim
backend only.

Unconsumed process failures cannot usefully propagate out of a running
event loop, so the kernel collects them in :attr:`AsyncioKernel.failures`
and fires :attr:`AsyncioKernel.on_failure`; the supervisor checks both.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from ..obs.trace import current_metrics, current_tracer
from .kernel import Interrupt

__all__ = [
    "AsyncioKernel",
    "LiveEvent",
    "LiveProcess",
    "LiveStore",
    "QueueFull",
]

_PENDING = object()


class QueueFull(Exception):
    """Raised on a non-blocking put into a full bounded store."""


class LiveEvent:
    """Event with sim-compatible callback semantics on the asyncio loop."""

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "AsyncioKernel"):
        self.env = env
        self.callbacks: Optional[list] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if self._ok is None:
            raise RuntimeError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise RuntimeError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "LiveEvent":
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._loop.call_soon(self.env._process_event, self)
        return self

    def fail(self, exception: BaseException) -> "LiveEvent":
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise RuntimeError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._loop.call_soon(self.env._process_event, self)
        return self

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class LiveTimeout(LiveEvent):
    """Born-triggered event processed after a wall-clock delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "AsyncioKernel", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._loop.call_later(delay, env._process_event, self)


class LiveProcess(LiveEvent):
    """A generator process driven by the asyncio loop.

    The advance/interrupt/stale-wakeup logic is a line-for-line mirror
    of :class:`repro.sim.core.Process`.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "AsyncioKernel", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[LiveEvent] = None
        env._loop.call_soon(self._advance_checked, True, None)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        if self.triggered:
            raise RuntimeError("cannot interrupt a terminated process")
        self._detach_from_target()
        self.env._loop.call_soon(self._deliver_interrupt, Interrupt(cause))

    def _detach_from_target(self) -> None:
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    def _deliver_interrupt(self, exc: Interrupt) -> None:
        if self.triggered:
            return
        self._detach_from_target()
        self._advance(False, exc, None)

    def _resume(self, event: LiveEvent) -> None:
        if self._value is not _PENDING:
            if not event._ok:
                event._defused = True
            return
        self._target = None
        if event._ok:
            self._advance(True, event._value, None)
        else:
            self._advance(False, event._value, event)

    def _advance_checked(self, ok: bool, value: Any) -> None:
        if self.triggered:
            return
        self._target = None
        self._advance(ok, value, None)

    def _advance(
        self, ok: bool, value: Any, failed_event: Optional[LiveEvent]
    ) -> None:
        try:
            if ok:
                next_event = self._generator.send(value)
            else:
                if failed_event is not None:
                    failed_event._defused = True
                next_event = self._generator.throw(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            self.fail(exc)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(next_event, LiveEvent):
            self._generator.close()
            self.fail(RuntimeError(f"process yielded a non-event: {next_event!r}"))
            return
        if next_event.callbacks is None:
            self.env._loop.call_soon(
                self._advance_checked, next_event._ok, next_event._value
            )
        else:
            self._target = next_event
            next_event.callbacks.append(self._resume)


class _LiveCondition(LiveEvent):
    __slots__ = ("_events", "_done")

    def __init__(self, env: "AsyncioKernel", events: Iterable[LiveEvent]):
        super().__init__(env)
        self._events = list(events)
        self._done = 0
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {
            event: event._value
            for event in self._events
            if event.processed and event._ok
        }

    def _check(self, event: LiveEvent) -> None:
        raise NotImplementedError


class LiveAnyOf(_LiveCondition):
    __slots__ = ()

    def _check(self, event: LiveEvent) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class LiveAllOf(_LiveCondition):
    __slots__ = ()

    def _check(self, event: LiveEvent) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self._events):
            self.succeed(self._collect())


class LiveStore:
    """FIFO store with the same API as :class:`repro.sim.queues.Store`."""

    __slots__ = ("env", "capacity", "_items", "_getters", "_putters")

    def __init__(self, env: "AsyncioKernel", capacity: Optional[int] = None):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.env = env
        self.capacity = capacity
        self._items: deque = deque()
        self._getters: deque = deque()
        self._putters: deque = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        return tuple(self._items)

    def put(self, item: Any) -> LiveEvent:
        event = LiveEvent(self.env)
        if self._getters:
            self._getters.popleft().succeed(item)
            event.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def put_nowait(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
            return
        if self.capacity is not None and len(self._items) >= self.capacity:
            raise QueueFull(f"store at capacity {self.capacity}")
        self._items.append(item)

    def get(self) -> LiveEvent:
        event = LiveEvent(self.env)
        if self._items:
            event.succeed(self._items.popleft())
            if self._putters:
                self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def _admit_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            putter, item = self._putters.popleft()
            self._items.append(item)
            putter.succeed()


class AsyncioKernel:
    """Kernel implementation over a real asyncio event loop.

    Construct inside a running loop (or pass one explicitly).  The
    clock starts at 0 at construction so protocol timing constants
    (``delta_t``, retransmit timeouts) mean the same thing as in the
    simulator: seconds.
    """

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        tracer: Any = _PENDING,
        metrics: Any = _PENDING,
        clock_offset: float = 0.0,
    ):
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        # ``clock_offset`` shifts this kernel's clock ahead of the loop
        # epoch: each node of a multi-node live deployment owns its own
        # kernel, and distinct offsets model the distinct wall-clock
        # domains real machines have (the trace-merge tool re-aligns
        # them; a nonzero offset also exercises that path in tests).
        self._t0 = self._loop.time() - clock_offset
        # Undefused process/event failures land here; the supervisor
        # treats a non-empty list as a failed run.
        self.failures: list[BaseException] = []
        self.on_failure: Optional[Callable[[BaseException], None]] = None
        # Observability: same adoption protocol as the sim Environment
        # by default; a multi-node supervisor passes per-node overrides
        # (each node streams to its own trace file and registry).
        self.tracer = current_tracer() if tracer is _PENDING else tracer
        self.metrics = current_metrics() if metrics is _PENDING else metrics
        if self.metrics is not None:
            self.metrics.bind(self)

    # -- clock --------------------------------------------------------

    @property
    def now(self) -> float:
        return self._loop.time() - self._t0

    @property
    def _now(self) -> float:
        return self._loop.time() - self._t0

    # -- event processing ---------------------------------------------

    def _process_event(self, event: LiveEvent) -> None:
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            exc = event._value
            self.failures.append(exc)
            if self.on_failure is not None:
                self.on_failure(exc)

    # -- kernel interface ---------------------------------------------

    def event(self) -> LiveEvent:
        return LiveEvent(self)

    def timeout(self, delay: float, value: Any = None) -> LiveTimeout:
        return LiveTimeout(self, delay, value)

    def process(self, generator: Generator) -> LiveProcess:
        tracer = self.tracer
        if tracer is not None and tracer.wants_sim:
            tracer.emit(
                "live.process",
                self._now,
                name=getattr(generator, "__name__", repr(generator)),
            )
        return LiveProcess(self, generator)

    def any_of(self, events: Iterable[LiveEvent]) -> LiveAnyOf:
        return LiveAnyOf(self, events)

    def all_of(self, events: Iterable[LiveEvent]) -> LiveAllOf:
        return LiveAllOf(self, events)

    def call_later(self, delay: float, fn: Callable, *args: Any) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._loop.call_later(delay, fn, *args)

    def call_at(self, when: float, fn: Callable, *args: Any) -> None:
        now = self._now
        if when < now:
            raise ValueError(f"when ({when}) lies in the past (now={now})")
        self._loop.call_later(when - now, fn, *args)

    def store(self, capacity: Optional[int] = None) -> LiveStore:
        return LiveStore(self, capacity)
