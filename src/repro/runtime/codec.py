"""Versioned binary wire codec for protocol messages.

The simulator passes message *objects* between actors, so slotted
hot-path messages never needed serialization; the live TCP backend
does.  This module gives every registered ``Message`` / ``FastMessage``
class (and the token/command types they carry) a stable binary form.

Frame layout (the transport adds its own outer length prefix)::

    version 1:  [1 u8][type_id u16][body_len u32]  <body>  <zero padding>
    version 2:  [2 u8][type_id u16][body_len u32]  <body>
                [ctx_len u32] <trace context>  <zero padding>

* ``version`` selects the frame generation.  Version 1 is the original
  format; version 2 appends a *trace context* -- a small dict carrying
  ``origin`` node id, the sender's node-clock timestamp and (when the
  payload has one) ``msg_id`` -- after the body, so a message's
  lifecycle can be followed across nodes (see ``docs/OBSERVABILITY.md``,
  "Live mode").  Encoding without a context still emits a version-1
  frame, byte-identical to the pre-context codec, and the decoder
  accepts every version in :data:`SUPPORTED_WIRE_VERSIONS`; version
  negotiation is therefore backward compatible in both directions for
  untraced traffic, and an old decoder rejects (never misparses) a
  context-bearing frame.
* ``type_id`` is the registered id of the top-level message class --
  ids are assigned explicitly (never ``enumerate`` over a dict) so the
  wire format does not silently change when a class is added.
* ``body_len`` delimits the body so the trace context and trailing
  padding can be located / skipped.

The body is a tagged, recursive value encoding (none/bool/int/float/
str/bytes/tuple/list/dict/frozenset plus registered objects by id with
their fields in declaration order).

Padding: each message models its own wire size (``wire_size()``) and
the simulator's bandwidth accounting is calibrated against it.  When
the compact encoding comes out *smaller* than the modeled size, the
frame is zero-padded up to ``wire_size()`` so live byte counts match
the model the figures were reproduced with; when it is larger (huge
batches), the frame is just its natural length.

Zero-copy contract (docs/PERFORMANCE.md, "Live datapath performance"):

* :func:`encode_into` appends a frame to a caller-owned ``bytearray``
  scratch instead of allocating per message; the transport keeps one
  scratch per link and snapshots the written region to immutable
  ``bytes`` before handing it to asyncio (an event loop -- uvloop in
  particular -- may hold a reference to a written buffer until the
  write completes, so mutable scratch must never be queued directly).
* :func:`decode` / :func:`decode_with_context` accept any bytes-like
  object including ``memoryview``, so the transport can decode straight
  out of its receive buffer without copying the body first.  Decoded
  messages never alias the input buffer: ``str``/``bytes`` leaves are
  materialised as owned objects, so the caller may recycle the buffer
  as soon as decode returns.
* Malformed input -- truncation at any byte offset, corrupt tags,
  unknown ids, garbage field values -- raises :class:`CodecError`,
  never a bare ``struct.error`` / ``IndexError`` / ``UnicodeDecodeError``.
"""

from __future__ import annotations

import dataclasses
import struct
from typing import Any, Callable, Optional

__all__ = [
    "CodecError",
    "CONTEXT_WIRE_VERSION",
    "SUPPORTED_WIRE_VERSIONS",
    "WIRE_VERSION",
    "decode",
    "decode_with_context",
    "encode",
    "encode_into",
    "register",
    "registered_classes",
]

WIRE_VERSION = 1                  # base format (no trace context)
CONTEXT_WIRE_VERSION = 2          # base + appended trace context
SUPPORTED_WIRE_VERSIONS = frozenset({WIRE_VERSION, CONTEXT_WIRE_VERSION})

_HEADER = struct.Struct("!BHI")   # version, type_id, body_len

# -- value tags -------------------------------------------------------

_T_NONE = 0
_T_FALSE = 1
_T_TRUE = 2
_T_INT64 = 3
_T_FLOAT = 4
_T_STR = 5
_T_BYTES = 6
_T_TUPLE = 7
_T_LIST = 8
_T_DICT = 9
_T_OBJ = 10
_T_FROZENSET = 11
_T_BIGINT = 12

_I64 = struct.Struct("!q")
_F64 = struct.Struct("!d")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


class CodecError(Exception):
    """Malformed frame, unknown type id, or unregistered class."""


class _Spec:
    __slots__ = ("cls", "type_id", "fields", "construct")

    def __init__(
        self,
        cls: type,
        type_id: int,
        fields: tuple[str, ...],
        construct: Optional[Callable[..., Any]] = None,
    ):
        self.cls = cls
        self.type_id = type_id
        self.fields = fields
        self.construct = construct or (lambda **kw: cls(**kw))


_BY_CLASS: dict[type, _Spec] = {}
_BY_ID: dict[int, _Spec] = {}


def register(
    cls: type,
    type_id: int,
    fields: Optional[tuple[str, ...]] = None,
    construct: Optional[Callable[..., Any]] = None,
) -> type:
    """Register ``cls`` under the stable wire id ``type_id``.

    ``fields`` defaults to the dataclass fields or the ``_FIELDS``
    tuple of a ``FastMessage``.  ``construct`` overrides decoding
    (called with the fields as keywords) for classes whose ``__init__``
    does not mirror their fields.
    """
    if not 0 < type_id <= 0xFFFF:
        raise ValueError(f"type_id {type_id} out of range")
    if type_id in _BY_ID:
        raise ValueError(
            f"type_id {type_id} already taken by {_BY_ID[type_id].cls.__name__}"
        )
    if cls in _BY_CLASS:
        raise ValueError(f"{cls.__name__} already registered")
    if fields is None:
        # _FIELDS first: FastMessage subclasses are dataclasses by
        # inheritance but carry no dataclass fields of their own.
        if getattr(cls, "_FIELDS", None):
            fields = tuple(cls._FIELDS)
        elif dataclasses.is_dataclass(cls):
            fields = tuple(f.name for f in dataclasses.fields(cls))
        else:
            raise ValueError(
                f"{cls.__name__}: cannot infer fields; pass them explicitly"
            )
    spec = _Spec(cls, type_id, fields, construct)
    _BY_CLASS[cls] = spec
    _BY_ID[type_id] = spec
    return cls


def registered_classes() -> list[type]:
    """All registered classes, in type-id order (for exhaustive tests)."""
    return [_BY_ID[i].cls for i in sorted(_BY_ID)]


# -- encoding ---------------------------------------------------------

def _encode_value(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_T_NONE)
        return
    cls = value.__class__
    if cls is bool:
        out.append(_T_TRUE if value else _T_FALSE)
        return
    if cls is int:
        if _I64_MIN <= value <= _I64_MAX:
            out.append(_T_INT64)
            out += _I64.pack(value)
        else:
            raw = value.to_bytes(
                (value.bit_length() + 8) // 8, "big", signed=True
            )
            out.append(_T_BIGINT)
            out += _U32.pack(len(raw))
            out += raw
        return
    if cls is float:
        out.append(_T_FLOAT)
        out += _F64.pack(value)
        return
    if cls is str:
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += _U32.pack(len(raw))
        out += raw
        return
    if cls is bytes:
        out.append(_T_BYTES)
        out += _U32.pack(len(value))
        out += value
        return
    if cls is tuple or cls is list:
        out.append(_T_TUPLE if cls is tuple else _T_LIST)
        out += _U32.pack(len(value))
        for item in value:
            _encode_value(item, out)
        return
    if cls is frozenset:
        out.append(_T_FROZENSET)
        out += _U32.pack(len(value))
        # Canonical order so equal sets encode identically.
        for item in sorted(value, key=repr):
            _encode_value(item, out)
        return
    if cls is dict:
        out.append(_T_DICT)
        out += _U32.pack(len(value))
        for key, val in value.items():
            _encode_value(key, out)
            _encode_value(val, out)
        return
    spec = _BY_CLASS.get(cls)
    if spec is None:
        raise CodecError(f"cannot encode unregistered type {cls.__name__}")
    out.append(_T_OBJ)
    out += _U16.pack(spec.type_id)
    for name in spec.fields:
        _encode_value(getattr(value, name), out)


_HEADER_PLACEHOLDER = bytes(_HEADER.size)
_U32_PLACEHOLDER = bytes(_U32.size)


def encode_into(
    message: Any, out: bytearray, trace_context: Optional[dict] = None
) -> int:
    """Append one encoded frame to ``out``; returns the frame's length.

    The zero-copy encode path: the caller owns ``out`` (typically a
    reused per-link scratch) and no intermediate body/frame bytearrays
    are allocated.  The header is written as a placeholder and patched
    once the body length is known, so the byte stream is identical to
    :func:`encode`'s.
    """
    spec = _BY_CLASS.get(message.__class__)
    if spec is None:
        raise CodecError(
            f"cannot encode unregistered type {message.__class__.__name__}"
        )
    start = len(out)
    out += _HEADER_PLACEHOLDER
    for name in spec.fields:
        _encode_value(getattr(message, name), out)
    body_len = len(out) - start - _HEADER.size
    if trace_context is None:
        _HEADER.pack_into(out, start, WIRE_VERSION, spec.type_id, body_len)
    else:
        _HEADER.pack_into(
            out, start, CONTEXT_WIRE_VERSION, spec.type_id, body_len
        )
        ctx_start = len(out)
        out += _U32_PLACEHOLDER
        _encode_value(dict(trace_context), out)
        _U32.pack_into(out, ctx_start, len(out) - ctx_start - _U32.size)
    modeled = getattr(message, "wire_size", None)
    if modeled is not None:
        target = modeled()
        written = len(out) - start
        if written < target:
            out += bytes(target - written)
    return len(out) - start


def encode(message: Any, trace_context: Optional[dict] = None) -> bytes:
    """Encode a registered message into one padded, versioned frame.

    With ``trace_context`` (a small JSON-able dict: ``origin`` node,
    sender timestamp, ``msg_id``...) the frame is emitted as version
    :data:`CONTEXT_WIRE_VERSION` with the context appended after the
    body; without it the frame is byte-identical to the pre-context
    version-1 codec.  The padding up to the modeled ``wire_size`` is
    applied after the context, so bandwidth accounting is unchanged.
    """
    out = bytearray()
    encode_into(message, out, trace_context)
    return bytes(out)


# -- decoding ---------------------------------------------------------

_Buffer = Any  # bytes | bytearray | memoryview


def _decode_value(buf: _Buffer, pos: int) -> tuple[Any, int]:
    tag = buf[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_INT64:
        return _I64.unpack_from(buf, pos)[0], pos + 8
    if tag == _T_FLOAT:
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if tag == _T_STR:
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        # str(bytes-like, encoding) also accepts memoryview slices.
        return str(buf[pos:pos + n], "utf-8"), pos + n
    if tag == _T_BYTES:
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        return bytes(buf[pos:pos + n]), pos + n
    if tag == _T_TUPLE or tag == _T_LIST or tag == _T_FROZENSET:
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        items = []
        for _ in range(n):
            item, pos = _decode_value(buf, pos)
            items.append(item)
        if tag == _T_TUPLE:
            return tuple(items), pos
        if tag == _T_LIST:
            return items, pos
        return frozenset(items), pos
    if tag == _T_DICT:
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        out = {}
        for _ in range(n):
            key, pos = _decode_value(buf, pos)
            val, pos = _decode_value(buf, pos)
            out[key] = val
        return out, pos
    if tag == _T_OBJ:
        (type_id,) = _U16.unpack_from(buf, pos)
        pos += 2
        spec = _BY_ID.get(type_id)
        if spec is None:
            raise CodecError(f"unknown type id {type_id}")
        kwargs = {}
        for name in spec.fields:
            kwargs[name], pos = _decode_value(buf, pos)
        return spec.construct(**kwargs), pos
    if tag == _T_BIGINT:
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        return int.from_bytes(buf[pos:pos + n], "big", signed=True), pos + n
    raise CodecError(f"unknown value tag {tag}")


def decode_with_context(frame: _Buffer) -> tuple[Any, Optional[dict]]:
    """Decode one frame; returns ``(message, trace_context_or_None)``.

    Accepts every version in :data:`SUPPORTED_WIRE_VERSIONS`: version-1
    frames (no context section) decode with a ``None`` context, so a
    context-aware node interoperates with peers speaking the old
    format.

    ``frame`` may be any bytes-like object -- the live transport passes
    a ``memoryview`` into its receive buffer, so the body is parsed in
    place with no copy.  Any malformed input raises :class:`CodecError`.
    """
    try:
        return _decode_frame(frame)
    except CodecError:
        raise
    except (struct.error, IndexError, ValueError, TypeError,
            OverflowError) as exc:
        # struct.error / IndexError: truncation mid-field; ValueError
        # covers UnicodeDecodeError from corrupt string bytes and a
        # registered class's own constructor validation rejecting
        # garbage field values.  All of it is one condition to the
        # caller: a frame that cannot be trusted.
        raise CodecError(f"corrupt frame: {exc!r}") from exc


def _decode_frame(frame: _Buffer) -> tuple[Any, Optional[dict]]:
    if len(frame) < _HEADER.size:
        raise CodecError(f"frame too short ({len(frame)} bytes)")
    version, type_id, body_len = _HEADER.unpack_from(frame, 0)
    if version not in SUPPORTED_WIRE_VERSIONS:
        raise CodecError(
            f"wire version mismatch: got {version}, "
            f"expected one of {sorted(SUPPORTED_WIRE_VERSIONS)}"
        )
    spec = _BY_ID.get(type_id)
    if spec is None:
        raise CodecError(f"unknown type id {type_id}")
    end = _HEADER.size + body_len
    if end > len(frame):
        raise CodecError("truncated frame body")
    pos = _HEADER.size
    kwargs = {}
    for name in spec.fields:
        kwargs[name], pos = _decode_value(frame, pos)
    if pos != end:
        raise CodecError(
            f"frame body length mismatch: consumed {pos - _HEADER.size}, "
            f"declared {body_len}"
        )
    context: Optional[dict] = None
    if version == CONTEXT_WIRE_VERSION:
        if len(frame) < end + 4:
            raise CodecError("truncated trace-context length")
        (ctx_len,) = _U32.unpack_from(frame, end)
        ctx_end = end + 4 + ctx_len
        if ctx_end > len(frame):
            raise CodecError("truncated trace context")
        value, consumed = _decode_value(frame, end + 4)
        if consumed != ctx_end:
            raise CodecError(
                f"trace-context length mismatch: consumed "
                f"{consumed - end - 4}, declared {ctx_len}"
            )
        if not isinstance(value, dict):
            raise CodecError(
                f"trace context is not a dict: {type(value).__name__}"
            )
        context = value
    return spec.construct(**kwargs), context


def decode(frame: _Buffer) -> Any:
    """Decode one frame produced by :func:`encode` (context discarded)."""
    return decode_with_context(frame)[0]


# -- registry ---------------------------------------------------------
#
# Ids are part of the wire format: never renumber, never reuse.  New
# classes take fresh ids at the end of their block.

def _register_all() -> None:
    from ..coordination import registry as reg
    from ..kvstore import commands as kvc
    from ..kvstore.partitioning import Partition, PartitionMap
    from ..paxos import messages as pm
    from ..paxos import types as pt

    # Paxos protocol messages: 1-19
    register(pm.Propose, 1)
    register(pm.Phase1a, 2)
    register(pm.Phase1b, 3)
    register(pm.Phase2a, 4)
    register(pm.Phase2b, 5)
    register(pm.RingAccept, 6)
    register(pm.Decision, 7)
    register(pm.RecoverRequest, 8)
    register(pm.RecoverReply, 9)
    register(pm.Trim, 10)
    register(pm.Heartbeat, 11)
    register(pm.HeartbeatAck, 12)

    # Tokens and batches: 20-29
    register(pt.AppValue, 20, fields=("payload", "size", "msg_id", "sender"))
    register(pt.SkipToken, 21)
    register(pt.SubscribeMsg, 22)
    register(pt.UnsubscribeMsg, 23)
    register(pt.PrepareMsg, 24)
    register(pt.Batch, 25, fields=("tokens", "payload_bytes"))

    # Key/value store commands and replies: 30-44
    register(kvc.PutCmd, 30)
    register(kvc.GetCmd, 31)
    register(kvc.DeleteCmd, 32)
    register(kvc.RangeCmd, 33)
    register(kvc.TxnCmd, 34)
    register(kvc.MapChangeCmd, 35)
    register(kvc.CommandReply, 36)
    register(kvc.SignalMsg, 37)
    register(kvc.StateTransferRequest, 38)
    register(kvc.StateTransferReply, 39)

    # Partition maps: 45-49
    register(Partition, 45)
    register(PartitionMap, 46)

    # Coordination registry: 50-59
    register(reg.RegistryGet, 50)
    register(reg.RegistryGetReply, 51)
    register(reg.RegistrySet, 52)
    register(reg.RegistrySetReply, 53)
    register(reg.RegistryWatch, 54)
    register(reg.WatchEvent, 55)

    # Deployment control plane: 60-69 (repro.deploy.wire is a leaf
    # module -- importing it does not pull the deployment plane in).
    from ..deploy import wire as dw

    register(dw.JoinLearner, 60)
    register(dw.JoinAck, 61)


_register_all()
