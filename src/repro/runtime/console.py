"""``python -m repro top``: live console over the telemetry endpoints.

Reads the ``endpoints.json`` a live supervisor writes into its
``--telemetry-dir``, then polls every node's ``/health`` and
``/metrics.json`` endpoints and renders a terminal dashboard:
per-stream decide throughput, replica subscription/merge state, client
latency quantiles, and transport backpressure.  Runs in a *separate*
process from the cluster (plain blocking ``urllib`` -- no shared loop),
so it observes the run exactly the way an operator's Prometheus would.

:func:`render` is pure (snapshots in, text out) so tests can assert on
the dashboard without sockets; :func:`run_top` is the polling loop.

Scrapes are concurrent with a short per-node timeout: one kill -9'd
node must cost at most ``timeout`` per frame, never ``N x timeout``
serial stalls -- the dead node renders as ``(unreachable)`` while the
survivors keep updating.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, TextIO

__all__ = [
    "ANSI_CLEAR", "fetch_all", "fetch_json", "load_endpoints", "render",
    "run_top",
]

ANSI_CLEAR = "\x1b[2J\x1b[H"


def load_endpoints(path: str) -> dict[str, tuple[str, int]]:
    """Parse ``endpoints.json`` into ``{node: (host, port)}``."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    nodes = data.get("nodes", {})
    if not nodes:
        raise ValueError(f"{path}: no nodes listed")
    return {
        name: (info["host"], int(info["port"]))
        for name, info in sorted(nodes.items())
    }


def fetch_json(
    host: str, port: int, path: str, timeout: float = 2.0
) -> Optional[dict]:
    """GET a JSON endpoint; ``None`` if the node is unreachable."""
    url = f"http://{host}:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return json.loads(response.read().decode("utf-8"))
    except Exception:
        return None


def fetch_all(
    endpoints: dict[str, tuple[str, int]],
    path: str,
    timeout: float = 0.5,
) -> dict[str, Optional[dict]]:
    """Scrape one path from every node concurrently.

    A dead endpoint contributes ``None`` after at most ``timeout``
    seconds; it cannot stall the other nodes' scrapes (each node gets
    its own worker thread).
    """
    if not endpoints:
        return {}
    with ThreadPoolExecutor(max_workers=len(endpoints)) as pool:
        futures = {
            node: pool.submit(fetch_json, host, port, path, timeout)
            for node, (host, port) in endpoints.items()
        }
        return {node: future.result() for node, future in futures.items()}


# Stage-level histograms of the latency-attribution plane
# (docs/OBSERVABILITY.md): rendered as a per-stage breakdown panel when
# any node reports them.
_STAGE_METRICS = {
    "batch_wait_ms": "batch wait",
    "decide_latency_ms": "quorum wait",
    "queue_wait_ms": "transport queue",
    "merge_hol_wait_ms": "merge head-of-line",
    "loop_lag_ms": "event-loop lag",
}


def _stage_rows(
    metrics: dict[str, Optional[dict]],
) -> list[tuple[str, str, str, int, float, float]]:
    rows: list[tuple[str, str, str, int, float, float]] = []
    for node in sorted(metrics):
        dump = metrics[node]
        if not dump:
            continue
        for entry in dump.get("histograms", ()):
            label = _STAGE_METRICS.get(entry.get("name", ""))
            if label is None or not entry.get("n") or entry.get("p50") is None:
                continue
            rows.append((
                node, entry.get("actor", "-"), label,
                entry["n"], entry["p50"], entry["p95"],
            ))
    return rows


def _client_latency(metrics: dict[str, Optional[dict]]) -> Optional[dict]:
    for dump in metrics.values():
        if not dump:
            continue
        for entry in dump.get("histograms", ()):
            if entry.get("name") == "latency_ms" and entry.get("n"):
                return entry
    return None


def _format_byte_rate(value: float) -> str:
    if value >= 1 << 20:
        return f"{value / (1 << 20):.1f}M"
    if value >= 1 << 10:
        return f"{value / (1 << 10):.1f}K"
    return f"{value:.0f}"


def render(
    health: dict[str, Optional[dict]],
    metrics: dict[str, Optional[dict]],
    previous: Optional[dict[str, dict]] = None,
    interval: float = 1.0,
) -> str:
    """Render one dashboard frame from per-node snapshots.

    ``previous`` holds the prior tick's health snapshots; stream decide
    rates are the ``positions_decided`` delta over ``interval``.
    """
    previous = previous or {}
    lines: list[str] = []
    up = sum(1 for snapshot in health.values() if snapshot is not None)
    lines.append(
        f"repro top | {up}/{len(health)} nodes up | "
        f"refresh {interval:g}s | Ctrl-C to quit"
    )

    lines.append("")
    lines.append(
        f"{'NODE':<6}{'STREAM':<8}{'DECIDED':>9}{'RATE/S':>9}  LEADING"
    )
    for node in sorted(health):
        snapshot = health[node]
        if snapshot is None:
            lines.append(f"{node:<6}(unreachable)")
            continue
        streams = snapshot.get("streams", {})
        for stream in sorted(streams):
            entry = streams[stream]
            decided = entry.get("positions_decided", 0)
            prior = (previous.get(node) or {}).get("streams", {}).get(stream)
            if prior is not None and interval > 0:
                delta = max(0, decided - prior.get("positions_decided", 0))
                rate = f"{delta / interval:.1f}"
            else:
                rate = "-"
            leading = "yes" if entry.get("leading") else "no"
            lines.append(
                f"{node:<6}{stream:<8}{decided:>9}{rate:>9}  {leading}"
            )

    lines.append("")
    lines.append(
        f"{'NODE':<6}{'REPLICA':<9}{'DELIVERED':>10}  "
        f"{'SUBSCRIPTIONS':<18}MERGE"
    )
    for node in sorted(health):
        snapshot = health[node]
        if snapshot is None:
            continue
        replicas = snapshot.get("replicas", {})
        for name in sorted(replicas):
            entry = replicas[name]
            subs = ",".join(entry.get("subscriptions", ())) or "-"
            merge = (
                "switching" if entry.get("pending_subscription") else "steady"
            )
            lines.append(
                f"{node:<6}{name:<9}{entry.get('delivered', 0):>10}  "
                f"{subs:<18}{merge}"
            )

    lines.append("")
    lines.append(
        f"{'NODE':<6}{'SENT':>8}{'DELIVERED':>11}{'DROPPED':>9}"
        f"{'RECONNECTS':>12}{'PEAKQ':>7}  QUEUES"
    )
    for node in sorted(health):
        snapshot = health[node]
        if snapshot is None:
            continue
        transport = snapshot.get("transport", {})
        counters = transport.get("counters", {})
        depths = transport.get("queue_depths", {})
        busiest = sorted(
            depths.items(), key=lambda item: item[1], reverse=True
        )[:3]
        queues = (
            " ".join(f"{dst}:{depth}" for dst, depth in busiest if depth)
            or "idle"
        )
        lines.append(
            f"{node:<6}"
            f"{counters.get('messages_sent', 0):>8}"
            f"{counters.get('messages_delivered', 0):>11}"
            f"{counters.get('messages_dropped', 0):>9}"
            f"{counters.get('reconnect_attempts', 0):>12}"
            f"{counters.get('peak_send_queue', 0):>7}  {queues}"
        )

    # Writer-coalescing panel: how well the transport is amortising
    # syscalls (frames per flush) and the resulting wire throughput.
    lines.append("")
    lines.append(
        f"{'NODE':<6}{'FLUSHES':>9}{'COALESCED':>11}{'FR/FLUSH':>10}"
        f"{'BYTES/S':>10}"
    )
    for node in sorted(health):
        snapshot = health[node]
        if snapshot is None:
            continue
        counters = snapshot.get("transport", {}).get("counters", {})
        flushes = counters.get("writer_flushes", 0)
        coalesced = counters.get("frames_coalesced", 0)
        per_flush = f"{coalesced / flushes:.1f}" if flushes else "-"
        prior = (
            (previous.get(node) or {}).get("transport", {}).get("counters", {})
        )
        if prior and interval > 0:
            delta = max(
                0,
                counters.get("bytes_written", 0)
                - prior.get("bytes_written", 0),
            )
            rate = _format_byte_rate(delta / interval)
        else:
            rate = "-"
        lines.append(
            f"{node:<6}{flushes:>9}{coalesced:>11}{per_flush:>10}{rate:>10}"
        )

    # Watchdog panel (docs/OBSERVABILITY.md, "Online audit"): health
    # score + active alerts from each node's self-observing watchdog;
    # unreachable nodes are themselves rendered as a critical condition.
    alert_rows: list[tuple[str, str, str]] = []
    scores: list[str] = []
    for node in sorted(health):
        snapshot = health[node]
        if snapshot is None:
            alert_rows.append((node, "critical", "telemetry unreachable"))
            scores.append(f"{node}=?")
            continue
        score = snapshot.get("health_score")
        if score is not None:
            scores.append(f"{node}={score}")
        for alert in snapshot.get("alerts", ()):
            alert_rows.append((
                node,
                alert.get("severity", "warning"),
                f"{alert.get('detector', '?')}: "
                f"{alert.get('message', '')}",
            ))
    if alert_rows or scores:
        lines.append("")
        lines.append(
            f"health {' '.join(scores) if scores else '-'}"
        )
        if alert_rows:
            lines.append(f"{'NODE':<6}{'SEV':<10}ALERT")
            for node, severity, text in alert_rows:
                lines.append(f"{node:<6}{severity:<10}{text}")
        else:
            lines.append("alerts: none")

    stage_rows = _stage_rows(metrics)
    if stage_rows:
        lines.append("")
        lines.append(
            f"{'NODE':<6}{'ACTOR':<14}{'STAGE':<20}{'N':>7}"
            f"{'P50MS':>9}{'P95MS':>9}"
        )
        for node, actor, label, n, p50, p95 in stage_rows:
            lines.append(
                f"{node:<6}{actor:<14}{label:<20}{n:>7}{p50:>9.2f}{p95:>9.2f}"
            )

    lines.append("")
    submitted = None
    for snapshot in health.values():
        if snapshot and "client" in snapshot:
            submitted = snapshot["client"].get("submitted")
    latency = _client_latency(metrics)
    if latency is not None and latency.get("p50") is not None:
        latency_text = (
            f"latency p50 {latency['p50']:.1f} ms "
            f"p99 {latency['p99']:.1f} ms "
            f"({latency['n']} samples)"
        )
    else:
        latency_text = "latency n/a"
    lines.append(
        f"client: submitted {submitted if submitted is not None else '?'}"
        f" | {latency_text}"
    )
    return "\n".join(lines) + "\n"


def run_top(
    endpoints_path: str,
    interval: float = 1.0,
    iterations: Optional[int] = None,
    clear: bool = True,
    stream: Optional[TextIO] = None,
    timeout: float = 0.5,
) -> int:
    """Poll the cluster's endpoints and redraw until interrupted.

    ``iterations`` bounds the number of frames (None = forever); tests
    and one-shot inspection pass ``iterations=1, clear=False``.
    ``timeout`` bounds each node's scrape: a kill -9'd worker marks its
    panels ``(unreachable)`` instead of freezing the whole console.
    """
    out = stream if stream is not None else sys.stdout
    endpoints = load_endpoints(endpoints_path)
    previous: dict[str, dict] = {}
    frames = 0
    try:
        while True:
            health = fetch_all(endpoints, "/health", timeout)
            metrics = fetch_all(endpoints, "/metrics.json", timeout)
            frame = render(health, metrics, previous, interval)
            if clear:
                out.write(ANSI_CLEAR)
            out.write(frame)
            out.flush()
            previous = {
                node: snapshot
                for node, snapshot in health.items()
                if snapshot is not None
            }
            frames += 1
            if iterations is not None and frames >= iterations:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0
