"""Kernel/Transport: the execution interfaces the protocol codes against.

The protocol layer (``repro.net``, ``repro.paxos``, ``repro.multicast``,
``repro.kvstore``) is written as *sans-backend* actors: generator-based
processes that yield events, plus fire-and-forget message sends.  This
module pins down the two interfaces those actors are allowed to assume:

* :class:`Kernel` -- a clock, process spawning, timeouts/events and
  deferred calls.  The discrete-event simulator
  (:class:`repro.sim.core.Environment`) is one implementation; the live
  asyncio backend (:class:`repro.runtime.asyncio_kernel.AsyncioKernel`)
  is another.
* :class:`Transport` -- named hosts with inboxes and a datagram-style
  ``send``.  Implemented by the simulated
  :class:`repro.sim.network.Network` and by the real TCP transport
  (:class:`repro.runtime.transport.TcpTransport`).

These are :class:`typing.Protocol` classes: implementations satisfy
them structurally, no inheritance required, so the simulator's
hand-optimised hot paths stay exactly as they are.

Two concrete types live here rather than in ``repro.sim`` because both
backends share them:

* :class:`Interrupt` -- the exception delivered into a process by
  ``ProcessHandle.interrupt`` (crash injection, actor stop).  It must
  be one class across backends so ``except Interrupt:`` in protocol
  code works everywhere.
* :class:`Envelope` -- the received-message record actors drain from
  their host inbox.

``repro.sim.core`` / ``repro.sim.network`` re-export both, so existing
imports keep working.

Contract notes
--------------
* ``Kernel.now`` is seconds -- virtual seconds in the simulator, wall
  seconds since kernel start in live mode.  ``_now`` is the same value
  exposed as a cheap attribute/property for hot paths.
* Determinism (bit-identical seeded runs, golden digests) is a property
  of the *sim* backend only.  The live backend inherits the OS
  scheduler's nondeterminism; protocol safety may not depend on timing.
* ``Transport.send`` is fire-and-forget and may drop (crashed hosts,
  partitions, a saturated live send queue).  Loss is repaired by the
  protocol (retransmission, gap repair), never by the transport.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Generator,
    Iterable,
    NamedTuple,
    Optional,
    Protocol,
    runtime_checkable,
)

__all__ = [
    "Envelope",
    "EventLike",
    "HostLike",
    "InboxLike",
    "Interrupt",
    "Kernel",
    "ProcessHandle",
    "Transport",
]


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    ``ProcessHandle.interrupt``.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Envelope(NamedTuple):
    """A message in flight, as seen by the receiving actor.

    A ``NamedTuple`` rather than a frozen dataclass: one is built per
    network send, and tuple construction happens in C while the frozen
    dataclass protocol pays a guarded ``object.__setattr__`` per field.
    """

    src: str
    dst: str
    payload: Any
    size: int                  # wire size in bytes, for bandwidth accounting
    sent_at: float
    delivered_at: float
    dst_incarnation: int = 0   # receiver reboot count at send time
    duplicated: bool = False   # injected duplicate copy


@runtime_checkable
class EventLike(Protocol):
    """An event a process can yield on, with attachable callbacks.

    ``callbacks`` is a list until the event is processed, then ``None``
    (the simulator's convention; the live kernel mirrors it).
    """

    callbacks: Optional[list]

    @property
    def triggered(self) -> bool: ...

    def succeed(self, value: Any = None) -> Any: ...

    def fail(self, exception: BaseException) -> Any: ...


@runtime_checkable
class ProcessHandle(Protocol):
    """A spawned process: alive until its generator returns."""

    @property
    def is_alive(self) -> bool: ...

    def interrupt(self, cause: Any = None) -> None: ...


@runtime_checkable
class Kernel(Protocol):
    """Clock + scheduling: what every protocol actor needs to run.

    ``tracer`` / ``metrics`` are the observability slots adopted from
    :mod:`repro.obs.trace` at kernel construction; both are ``None``
    unless installed, and probe sites guard with one ``is None`` test.
    """

    tracer: Any
    metrics: Any

    @property
    def now(self) -> float: ...

    # Hot paths read the clock as ``env._now``; both backends expose it.
    @property
    def _now(self) -> float: ...

    def process(self, generator: Generator) -> Any: ...

    def timeout(self, delay: float, value: Any = None) -> Any: ...

    def event(self) -> Any: ...

    def any_of(self, events: Iterable[Any]) -> Any: ...

    def all_of(self, events: Iterable[Any]) -> Any: ...

    def call_later(self, delay: float, fn: Callable, *args: Any) -> None: ...

    def call_at(self, when: float, fn: Callable, *args: Any) -> None: ...


@runtime_checkable
class InboxLike(Protocol):
    """FIFO inbox a host's actor drains: ``yield inbox.get()``."""

    def get(self) -> Any: ...

    def put_nowait(self, item: Any) -> None: ...

    def __len__(self) -> int: ...


@runtime_checkable
class HostLike(Protocol):
    """A named node with an inbox, a crash flag and a reboot counter."""

    name: str
    inbox: Any
    crashed: bool
    incarnation: int
    actor: Any

    def crash(self) -> None: ...

    def recover(self) -> None: ...


@runtime_checkable
class Transport(Protocol):
    """Named hosts plus datagram-style, fire-and-forget delivery."""

    def add_host(self, name: str) -> Any: ...

    def host(self, name: str) -> Any: ...

    def hosts(self) -> list[str]: ...

    def send(self, src: str, dst: str, payload: Any, size: int = 128) -> None: ...

    def broadcast(
        self, src: str, dsts: list[str], payload: Any, size: int = 128
    ) -> None: ...
