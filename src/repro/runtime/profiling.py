"""Always-on profiling for the live runtime.

Two probes, both cheap enough to leave running (docs/OBSERVABILITY.md,
"Latency attribution & profiling"):

- :class:`StackSampler` -- a background thread that samples *every*
  thread's Python stack at a fixed interval and aggregates them into
  flamegraph-compatible collapsed stacks (``thread;frame;... count``
  lines, directly consumable by ``flamegraph.pl`` / speedscope).  The
  live supervisor writes one ``<node>.stacks.txt`` per node with
  ``repro live --profile-dir``, and each node's telemetry server
  exposes ``/profile`` to toggle/fetch it at runtime.
- :class:`LoopLagProbe` -- measures asyncio event-loop scheduling lag
  on an :class:`~repro.runtime.asyncio_kernel.AsyncioKernel` by timing
  how late a repeating ``call_later`` callback fires, exported as a
  *windowed* ``loop_lag_ms`` histogram in the metrics registry (so
  ``/metrics`` quantiles reflect the recent window, not the whole run).

Stdlib-only on purpose: ``repro.runtime`` must not import ``repro.sim``
at module scope (tests/runtime/test_layering.py), and the bench-side
:func:`repro.bench.profiler.sample_profile` builds on the sampler too.
"""

from __future__ import annotations

import collections
import sys
import threading
import time
from typing import Any, Optional

__all__ = ["LoopLagProbe", "StackSampler"]


class StackSampler:
    """Samples every live thread's Python stack from a daemon thread.

    ``samples`` maps ``(thread_name, frames)`` -- frames root-first as
    ``file.py:function`` strings -- to the number of times that exact
    stack was observed.  The sampler never samples its own thread.
    """

    def __init__(self, interval: float = 0.02, depth: int = 48):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if depth <= 0:
            raise ValueError("depth must be positive")
        self.interval = interval
        self.depth = depth
        self.samples: collections.Counter = collections.Counter()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # file.py:function strings cached per code object: formatting is
        # the hot part of a sample, and the working set of code objects
        # is small and stable.
        self._frame_names: dict[Any, str] = {}

    @property
    def running(self) -> bool:
        thread = self._thread
        return thread is not None and thread.is_alive()

    @property
    def total(self) -> int:
        """Total number of stacks observed (across all threads)."""
        return sum(self.samples.values())

    def start(self) -> None:
        if self.running:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> int:
        """Stop sampling (idempotent); returns the total sample count."""
        thread = self._thread
        if thread is not None:
            self._stop.set()
            thread.join()
            self._thread = None
        return self.total

    def sample_once(self) -> None:
        """Take one sample of every thread except the calling one."""
        names = {t.ident: t.name for t in threading.enumerate()}
        me = threading.get_ident()
        frame_names = self._frame_names
        for ident, frame in sys._current_frames().items():
            if ident == me:
                continue
            frames = []
            current: Any = frame
            while current is not None and len(frames) < self.depth:
                code = current.f_code
                name = frame_names.get(code)
                if name is None:
                    name = (
                        f"{code.co_filename.rsplit('/', 1)[-1]}"
                        f":{code.co_name}"
                    )
                    frame_names[code] = name
                frames.append(name)
                current = current.f_back
            frames.reverse()   # root-first: collapsed-stack order
            thread = names.get(ident, f"thread-{ident}")
            self.samples[(thread, tuple(frames))] += 1

    def _run(self) -> None:
        while not self._stop.is_set():
            self.sample_once()
            time.sleep(self.interval)

    def collapsed(self) -> str:
        """Flamegraph-collapsed stacks: ``thread;frame;... count`` per
        line, heaviest first (ties broken lexically, so output is
        deterministic for a given sample set)."""
        ordered = sorted(self.samples.items(), key=lambda kv: (-kv[1], kv[0]))
        lines = [
            ";".join((thread,) + frames) + f" {count}"
            for (thread, frames), count in ordered
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def write_collapsed(self, path: str) -> int:
        """Write :meth:`collapsed` to ``path``; returns distinct stacks."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.collapsed())
        return len(self.samples)


class LoopLagProbe:
    """Windowed event-loop scheduling-lag histogram for a live kernel.

    Re-arms itself with ``kernel.call_later(interval, ...)`` and records
    how late each callback fired (milliseconds, clamped at zero) into
    ``(actor, "loop_lag_ms")``.  Sustained lag means the loop is CPU- or
    IO-bound enough to delay every timer and send on the node -- the
    first thing to check when the latency budget blames a live segment.
    """

    METRIC = "loop_lag_ms"

    def __init__(
        self,
        kernel: Any,
        registry: Any,
        actor: str = "loop",
        interval: float = 0.1,
        window: float = 30.0,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.kernel = kernel
        self.actor = actor
        self.interval = interval
        self.ticks = 0
        self._histogram = registry.windowed_histogram(
            actor, self.METRIC, window=window
        )
        self._running = False
        self._expected = 0.0

    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._expected = self.kernel._now + self.interval
        self.kernel.call_later(self.interval, self._tick)

    def stop(self) -> None:
        self._running = False   # the armed callback sees this and stops

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.kernel._now
        lag = now - self._expected
        self._histogram.record(1000.0 * (lag if lag > 0.0 else 0.0))
        self.ticks += 1
        self._expected = now + self.interval
        self.kernel.call_later(self.interval, self._tick)
