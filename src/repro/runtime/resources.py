"""Kernel-generic capacity models.

:class:`Server` models a single-threaded CPU (or a disk): work items
queue FIFO and are served one at a time for a deterministic service
time.  This is what makes coordinators and replicas saturate in the
reproduction exactly as the paper's 2-vCPU VMs do -- the figure shapes
(3.62x at four streams in Fig. 3, the CPU drop after the split in
Fig. 4) all emerge from these servers reaching or leaving saturation.

The class is written against the :class:`repro.runtime.kernel.Kernel`
interface (``event()``, ``call_later``, the ``_now`` clock) so the same
model runs on the simulator and on the live asyncio kernel.  On the
simulator the scheduling path is identical to the historical
``repro.sim.resources`` implementation, so seeded runs stay
bit-identical.
"""

from __future__ import annotations

from typing import Any

from .kernel import Kernel

__all__ = ["Server"]


class Server:
    """A FIFO single-server queue with utilisation accounting.

    ``rate`` is expressed in work-units per second; a request of
    ``cost`` work-units occupies the server for ``cost / rate`` seconds.
    The common idiom is ``cost=1`` with ``rate`` = operations/second.
    """

    def __init__(self, env: Kernel, rate: float, name: str = ""):
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.env = env
        self.rate = rate
        self.name = name
        # Deferred import: the probe lives with the measurement
        # primitives, which the kernel interface must not depend on at
        # import time (repro.sim.monitor imports the sim kernel).
        from ..sim.monitor import UtilisationProbe

        self.probe = UtilisationProbe(env, name)
        self._free_at = 0.0
        self.completed = 0

    @property
    def backlog_seconds(self) -> float:
        """Seconds of queued work ahead of a request issued now."""
        return max(0.0, self._free_at - self.env._now)

    def request(self, cost: float = 1.0) -> Any:
        """Enqueue ``cost`` units of work; event fires when done."""
        if cost < 0:
            raise ValueError("cost must be non-negative")
        now = self.env._now
        start = max(now, self._free_at)
        service = cost / self.rate
        done_at = start + service
        self._free_at = done_at
        self.probe.busy()
        event = self.env.event()
        self.env.call_later(done_at - now, self._finish, event)
        return event

    def _finish(self, event: Any) -> None:
        self.completed += 1
        if self.env._now >= self._free_at:
            self.probe.idle()
        event.succeed()

    def utilisation_between(self, start: float, end: float) -> float:
        return self.probe.utilisation_between(start, end)
