"""Process supervisor: boot a live Elastic Paxos cluster and drive it.

``python -m repro live`` lands here.  :func:`run_live` boots a
multi-stream, multi-replica cluster on the :class:`AsyncioKernel` over
real localhost TCP sockets (:class:`TcpTransport`), drives a client
workload against it, performs a *runtime* ``subscribe_msg`` while
traffic flows, and verifies the paper's guarantees on the live
backend:

* every replica delivers the identical (non-empty) sequence;
* the dynamic subscription completes on all replicas;
* the always-on invariant suite (:mod:`repro.faults.invariants`)
  reports zero violations.

All actors run as in-process tasks on one asyncio loop, but every
protocol message is codec-serialized and travels through the OS TCP
stack -- there is no in-process delivery shortcut.

Unlike the simulator, live runs are *not* deterministic: the OS
scheduler and real sockets order events.  Golden digests therefore
apply to the sim backend only; the live acceptance criterion is
replica agreement, not a particular sequence.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Optional

from ..faults.invariants import InvariantSuite, InvariantViolation
from ..multicast.api import MulticastClient
from ..multicast.replica import MulticastReplica
from ..multicast.stream import StreamDeployment
from ..paxos.config import StreamConfig
from .asyncio_kernel import AsyncioKernel
from .transport import TcpTransport

__all__ = ["LiveCluster", "LiveConfig", "LiveReport", "run_live"]


def _percentile(values: list, pct: float) -> float:
    """Nearest-rank percentile (mirrors ``repro.sim.monitor.percentile``
    without importing the sim package into the runtime layer)."""
    if not values:
        raise ValueError("no samples")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(pct / 100 * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class LiveConfig:
    """Knobs of a live run (defaults match the CI smoke test scale)."""

    streams: int = 2
    replicas: int = 3
    acceptors_per_stream: int = 3
    duration: float = 5.0           # workload wall seconds
    rate: float = 200.0             # client multicasts per second
    payload_size: int = 64          # modeled payload bytes per value
    subscribe_after: float = 0.3    # runtime subscribe at this fraction
    drain_timeout: float = 10.0     # wall seconds to reach agreement
    metrics_out: Optional[str] = None

    def __post_init__(self):
        if self.streams < 1:
            raise ValueError("need at least one stream")
        if self.replicas < 1:
            raise ValueError("need at least one replica")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not 0.0 < self.subscribe_after < 1.0:
            raise ValueError("subscribe_after must be a fraction in (0, 1)")


@dataclass
class LiveReport:
    """What a live run observed; ``ok`` is the acceptance verdict."""

    streams: int
    replicas: int
    duration: float
    submitted: int
    delivered_per_replica: dict[str, int]
    sequences_identical: bool
    subscribes_completed: int
    subscribes_requested: int
    invariant_checks: int
    violations: list[str]
    kernel_failures: list[str]
    throughput: float               # deliveries/s at one replica
    latency_p50_ms: Optional[float]
    latency_p99_ms: Optional[float]
    transport_counters: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (
            self.sequences_identical
            and min(self.delivered_per_replica.values(), default=0) > 0
            and self.subscribes_completed == self.subscribes_requested
            and not self.violations
            and not self.kernel_failures
        )

    def summary(self) -> str:
        if self.latency_p50_ms is None:
            latency = "latency n/a"
        else:
            latency = (
                f"p50 {self.latency_p50_ms:.1f} ms "
                f"p99 {self.latency_p99_ms:.1f} ms"
            )
        delivered = min(self.delivered_per_replica.values(), default=0)
        return (
            f"live: {'OK' if self.ok else 'FAILED'} | "
            f"{self.streams} streams x {self.replicas} replicas | "
            f"{delivered} delivered/replica "
            f"({'identical' if self.sequences_identical else 'DIVERGENT'} "
            f"order) | "
            f"subscribes {self.subscribes_completed}/"
            f"{self.subscribes_requested} | "
            f"violations {len(self.violations)} | "
            f"{self.throughput:.0f} msgs/s | {latency}"
        )


class LiveCluster:
    """One in-process live deployment: kernel, transport, streams,
    replicas, client -- plus the taps the report is built from."""

    def __init__(self, config: LiveConfig):
        self.config = config
        self.kernel = AsyncioKernel()
        self.transport = TcpTransport(self.kernel)
        self.directory: dict[str, StreamDeployment] = {}
        for index in range(config.streams):
            name = f"s{index + 1}"
            stream_config = StreamConfig(
                name=name,
                acceptors=tuple(
                    f"{name}/acceptor-{j + 1}"
                    for j in range(config.acceptors_per_stream)
                ),
            )
            self.directory[name] = StreamDeployment(
                self.kernel, self.transport, stream_config
            )
        self.replicas: dict[str, MulticastReplica] = {}
        self._submit_at: dict[int, float] = {}
        self.latencies_ms: list[float] = []
        for index in range(config.replicas):
            name = f"r{index + 1}"
            replica = MulticastReplica(
                self.kernel, self.transport, name, group="g1",
                directory=self.directory,
            )
            replica.add_delivery_observer(self._latency_tap)
            self.replicas[name] = replica
        self.invariants = InvariantSuite(self.replicas)
        self.client = MulticastClient(
            self.kernel, self.transport, "client", self.directory
        )
        self.submitted = 0

    def _latency_tap(self, value, stream, position) -> None:
        sent = self._submit_at.get(value.msg_id)
        if sent is not None:
            self.latencies_ms.append(1000.0 * (self.kernel._now - sent))

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        await self.transport.start()
        for deployment in self.directory.values():
            deployment.start()
        for replica in self.replicas.values():
            replica.bootstrap(["s1"])
        self.client.start()

    async def stop(self) -> None:
        self.client.stop()
        for replica in self.replicas.values():
            for core in list(replica.learners.values()):
                core.stop()
            replica.stop()
        for deployment in self.directory.values():
            deployment.stop()
        await asyncio.sleep(0)      # let interrupted tasks unwind
        await self.transport.stop()

    # -- workload -----------------------------------------------------

    def multicast(self, stream: str, sequence: int) -> None:
        value = self.client.multicast(
            stream, payload=f"m{sequence}", size=self.config.payload_size
        )
        self._submit_at[value.msg_id] = self.kernel._now
        self.submitted += 1

    async def subscribe(self, new_stream: str, timeout: float) -> bool:
        """Runtime-subscribe the group to ``new_stream``; True once
        every replica's dMerge has switched."""
        self.client.subscribe_msg("g1", new_stream, via_stream="s1")
        deadline = self.kernel._loop.time() + timeout
        while self.kernel._loop.time() < deadline:
            if all(
                new_stream in replica.subscriptions
                for replica in self.replicas.values()
            ):
                return True
            await asyncio.sleep(0.02)
        return False

    # -- observation --------------------------------------------------

    def sequences(self) -> dict[str, list]:
        return {
            name: self.invariants.logs[name].sequence()
            for name in self.replicas
        }

    async def drain(self, timeout: float) -> bool:
        """Wait until every replica delivered the identical non-empty
        sequence (retransmission heals stragglers)."""
        deadline = self.kernel._loop.time() + timeout
        while self.kernel._loop.time() < deadline:
            sequences = list(self.sequences().values())
            first = sequences[0]
            if first and all(sequence == first for sequence in sequences):
                return True
            await asyncio.sleep(0.1)
        sequences = list(self.sequences().values())
        return bool(sequences[0]) and all(
            sequence == sequences[0] for sequence in sequences
        )


async def _run(config: LiveConfig) -> LiveReport:
    cluster = LiveCluster(config)
    kernel = cluster.kernel
    loop = kernel._loop
    try:
        await cluster.start()

        subscribes_requested = config.streams - 1
        subscribes_completed = 0
        active_streams = ["s1"]
        interval = 1.0 / config.rate if config.rate > 0 else config.duration
        subscribe_at = loop.time() + config.subscribe_after * config.duration
        workload_end = loop.time() + config.duration
        sequence = 0
        subscribed = subscribes_requested == 0
        while loop.time() < workload_end:
            cluster.multicast(
                active_streams[sequence % len(active_streams)], sequence
            )
            sequence += 1
            if not subscribed and loop.time() >= subscribe_at:
                # Subscribe to every further stream while the workload
                # keeps flowing on s1 (the paper's online reconfig).
                subscribed = True
                for index in range(1, config.streams):
                    done = await cluster.subscribe(
                        f"s{index + 1}", timeout=config.drain_timeout
                    )
                    if done:
                        subscribes_completed += 1
                        active_streams.append(f"s{index + 1}")
            await asyncio.sleep(interval)

        agreed = await cluster.drain(config.drain_timeout)

        violations: list[str] = []
        try:
            cluster.invariants.check()
        except InvariantViolation as violation:
            violations.append(str(violation))

        delivered = {
            name: len(sequence_)
            for name, sequence_ in cluster.sequences().items()
        }
        latencies = cluster.latencies_ms
        report = LiveReport(
            streams=config.streams,
            replicas=config.replicas,
            duration=config.duration,
            submitted=cluster.submitted,
            delivered_per_replica=delivered,
            sequences_identical=agreed,
            subscribes_completed=subscribes_completed,
            subscribes_requested=subscribes_requested,
            invariant_checks=cluster.invariants.checks_run,
            violations=violations,
            kernel_failures=[repr(f) for f in kernel.failures],
            throughput=min(delivered.values(), default=0) / config.duration,
            latency_p50_ms=(
                _percentile(latencies, 50) if latencies else None
            ),
            latency_p99_ms=(
                _percentile(latencies, 99) if latencies else None
            ),
            transport_counters={
                "messages_sent": cluster.transport.messages_sent,
                "messages_delivered": cluster.transport.messages_delivered,
                "messages_dropped": cluster.transport.messages_dropped,
                "bytes_delivered": cluster.transport.bytes_delivered,
            },
        )
        if config.metrics_out and kernel.metrics is not None:
            with open(config.metrics_out, "w") as fh:
                json.dump(kernel.metrics.dump(), fh, indent=2, sort_keys=True)
                fh.write("\n")
        return report
    finally:
        await cluster.stop()


def run_live(config: LiveConfig) -> LiveReport:
    """Boot, drive and tear down a live cluster; returns the report."""
    return asyncio.run(_run(config))
