"""Process supervisor: boot a live Elastic Paxos cluster and drive it.

``python -m repro live`` lands here.  :func:`run_live` boots a
multi-stream, multi-replica cluster on real localhost TCP sockets,
drives a client workload against it, performs a *runtime*
``subscribe_msg`` while traffic flows, and verifies the paper's
guarantees on the live backend:

* every replica delivers the identical (non-empty) sequence;
* the dynamic subscription completes on all replicas;
* the always-on invariant suite (:mod:`repro.faults.invariants`)
  reports zero violations.

Nodes
-----
With ``nodes > 1`` the cluster is partitioned into that many *nodes*:
each node owns its own :class:`AsyncioKernel` (its own clock domain)
and :class:`TcpTransport` (its own listener socket), and stream
deployments / replicas are placed round-robin across them.  All nodes
still run on one asyncio loop in this process, but every cross-node
message is codec-serialized and travels socket-to-socket between two
different listeners -- the same failure surface as two processes,
minus the fork.

Telemetry
---------
With ``telemetry_dir`` set, every node gets a
:class:`~repro.runtime.telemetry.NodeTelemetry`: a node-stamped tracer
streaming JSONL to ``<dir>/<node>.trace.jsonl``, a metrics registry,
and an HTTP endpoint (``/metrics``, ``/metrics.json``, ``/health``,
``/clock``) whose addresses land in ``<dir>/endpoints.json`` for
``python -m repro top``.  The supervisor estimates each node's clock
offset against node 1 with NTP-style ``/clock`` round trips and writes
``meta.clock`` events into the traces, which is what ``python -m repro
trace-merge`` uses to align the per-node timelines
(:mod:`repro.obs.merge`).  A :class:`FlightRecorder` rides on every
tracer -- telemetry or not -- so a live invariant violation dumps the
causal ring buffer next to ``--metrics-out`` exactly as the sim fault
runner does.

Unlike the simulator, live runs are *not* deterministic: the OS
scheduler and real sockets order events.  Golden digests therefore
apply to the sim backend only; the live acceptance criterion is
replica agreement, not a particular sequence.
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import dataclass, field
from typing import Optional

from ..faults.invariants import InvariantSuite, InvariantViolation
from ..multicast.api import MulticastClient
from ..multicast.replica import MulticastReplica
from ..multicast.stream import StreamDeployment
from ..obs.recorder import FlightRecorder
from ..obs.trace import Tracer, current_tracer
from ..paxos.config import StreamConfig
from ..paxos.skip import DEFAULT_LAMBDA
from .asyncio_kernel import AsyncioKernel
from .profiling import LoopLagProbe, StackSampler
from .telemetry import NodeTelemetry, aggregate_dumps, estimate_offset, http_get_json
from .transport import TcpTransport

__all__ = ["LiveCluster", "LiveConfig", "LiveNode", "LiveReport", "run_live"]


def _percentile(values: list, pct: float) -> float:
    """Nearest-rank percentile (mirrors ``repro.sim.monitor.percentile``
    without importing the sim package into the runtime layer)."""
    if not values:
        raise ValueError("no samples")
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(pct / 100 * len(ordered)) - 1))
    return ordered[rank]


@dataclass
class LiveConfig:
    """Knobs of a live run (defaults match the CI smoke test scale)."""

    streams: int = 2
    replicas: int = 3
    acceptors_per_stream: int = 3
    duration: float = 5.0           # workload wall seconds
    rate: float = 200.0             # client multicasts per second
    payload_size: int = 64          # modeled payload bytes per value
    subscribe_after: float = 0.3    # runtime subscribe at this fraction
    drain_timeout: float = 10.0     # wall seconds to reach agreement
    metrics_out: Optional[str] = None
    nodes: int = 1                  # clock/transport domains to partition into
    telemetry_dir: Optional[str] = None   # per-node traces + HTTP endpoints
    clock_skew: float = 0.0         # artificial skew between node clocks (s)
    scrape_interval: float = 0.5    # supervisor /health polling period
    clock_sync_samples: int = 5     # /clock round trips per node
    # Closed-loop elasticity (docs/ELASTICITY.md, "Live mode"): instead
    # of the scripted subscribe at ``subscribe_after``, an autoscaler
    # task polls the telemetry plane and runtime-subscribes the spare
    # streams when the decide-rate ceiling is breached.
    autoscale: bool = False
    rate_ramp: Optional[float] = None     # ramp client rate to this value
    autoscale_ceiling: float = 150.0      # decided values/s per stream
    autoscale_interval: float = 0.25      # controller polling period (s)
    autoscale_sustain: int = 2            # consecutive breaches to fire
    autoscale_cooldown: float = 1.5       # seconds between reconfigs
    # Always-on profiling (docs/OBSERVABILITY.md): with profile_dir set,
    # every node runs a background stack sampler for the whole run and
    # writes flamegraph-collapsed stacks to DIR/<node>.stacks.txt.
    profile_dir: Optional[str] = None
    profile_interval: float = 0.02        # sampler period (s)
    # Live datapath (docs/PERFORMANCE.md, "Live datapath performance").
    dissemination: str = "ring"     # phase-2 path: "ring" | "classic"
    adaptive_batching: bool = True  # load-adaptive coordinator batching
    lam: Optional[int] = None       # per-stream λ; None = scale to rate
    burst: int = 1                  # client submissions per workload tick
    uvloop: bool = False            # prefer uvloop's event loop if present

    def effective_lam(self) -> int:
        """λ for each stream's skip pacing.  The sim default (4000
        positions/s) silently caps live admission when the offered rate
        approaches it, so unless pinned explicitly λ scales to twice
        the peak offered rate."""
        if self.lam is not None:
            return self.lam
        peak = max(self.rate, self.rate_ramp or 0.0)
        return max(DEFAULT_LAMBDA, int(2 * peak))

    def __post_init__(self):
        if self.profile_interval <= 0:
            raise ValueError("profile_interval must be positive")
        if self.streams < 1:
            raise ValueError("need at least one stream")
        if self.replicas < 1:
            raise ValueError("need at least one replica")
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not 0.0 < self.subscribe_after < 1.0:
            raise ValueError("subscribe_after must be a fraction in (0, 1)")
        if self.nodes < 1:
            raise ValueError("need at least one node")
        if self.clock_skew < 0:
            raise ValueError("clock_skew must be non-negative")
        if self.rate_ramp is not None and self.rate_ramp <= 0:
            raise ValueError("rate_ramp must be positive")
        if self.autoscale_ceiling <= 0:
            raise ValueError("autoscale_ceiling must be positive")
        if self.autoscale_interval <= 0:
            raise ValueError("autoscale_interval must be positive")
        if self.dissemination not in ("ring", "classic"):
            raise ValueError(
                f"dissemination must be 'ring' or 'classic', "
                f"got {self.dissemination!r}"
            )
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.lam is not None and self.lam < 1:
            raise ValueError("lam must be >= 1")


@dataclass
class LiveReport:
    """What a live run observed; ``ok`` is the acceptance verdict."""

    streams: int
    replicas: int
    duration: float
    submitted: int
    delivered_per_replica: dict[str, int]
    sequences_identical: bool
    subscribes_completed: int
    subscribes_requested: int
    invariant_checks: int
    violations: list[str]
    kernel_failures: list[str]
    throughput: float               # deliveries/s at one replica
    latency_p50_ms: Optional[float]
    latency_p99_ms: Optional[float]
    transport_counters: dict[str, int] = field(default_factory=dict)
    nodes: int = 1
    node_traces: dict[str, str] = field(default_factory=dict)
    endpoints: dict[str, str] = field(default_factory=dict)
    clock_offsets: dict[str, float] = field(default_factory=dict)
    flight_dumps: list[str] = field(default_factory=list)
    scrapes: int = 0
    autoscale: bool = False
    autoscale_events: list[str] = field(default_factory=list)
    profile_files: dict[str, str] = field(default_factory=dict)
    dissemination: str = "ring"
    event_loop: str = "asyncio"     # actual loop class driving the run

    @property
    def ok(self) -> bool:
        return (
            self.sequences_identical
            and min(self.delivered_per_replica.values(), default=0) > 0
            and self.subscribes_completed == self.subscribes_requested
            and not self.violations
            and not self.kernel_failures
        )

    def summary(self) -> str:
        if self.latency_p50_ms is None:
            latency = "latency n/a"
        else:
            latency = (
                f"p50 {self.latency_p50_ms:.1f} ms "
                f"p99 {self.latency_p99_ms:.1f} ms"
            )
        delivered = min(self.delivered_per_replica.values(), default=0)
        return (
            f"live: {'OK' if self.ok else 'FAILED'} | "
            f"{'autoscale | ' if self.autoscale else ''}"
            f"{self.streams} streams x {self.replicas} replicas "
            f"on {self.nodes} node{'s' if self.nodes != 1 else ''} | "
            f"{delivered} delivered/replica "
            f"({'identical' if self.sequences_identical else 'DIVERGENT'} "
            f"order) | "
            f"subscribes {self.subscribes_completed}/"
            f"{self.subscribes_requested} | "
            f"violations {len(self.violations)} | "
            f"{self.throughput:.0f} msgs/s | {latency}"
        )


class LiveNode:
    """One clock/transport domain: kernel + transport (+ telemetry)."""

    def __init__(
        self,
        name: str,
        kernel: AsyncioKernel,
        transport: TcpTransport,
        telemetry: Optional[NodeTelemetry] = None,
        profiler: Optional[StackSampler] = None,
    ):
        self.name = name
        self.kernel = kernel
        self.transport = transport
        self.telemetry = telemetry
        # The node's stack sampler: the telemetry plane's when there is
        # one (shared with the /profile routes), standalone otherwise.
        self.profiler = profiler
        self.endpoint: Optional[tuple[str, int]] = None

    def __repr__(self) -> str:
        return f"<LiveNode {self.name}>"


class LiveCluster:
    """One in-process live deployment: nodes, streams, replicas, client
    -- plus the telemetry plane and the taps the report is built from."""

    def __init__(self, config: LiveConfig):
        self.config = config
        self.telemetry_enabled = config.telemetry_dir is not None
        self.profile_enabled = config.profile_dir is not None
        if self.profile_enabled:
            os.makedirs(config.profile_dir, exist_ok=True)
        self.nodes: list[LiveNode] = []
        self.recorder: Optional[FlightRecorder] = None
        shared_tracer: Optional[Tracer] = None
        if self.telemetry_enabled:
            os.makedirs(config.telemetry_dir, exist_ok=True)
        else:
            # No telemetry dir: still keep a causal ring buffer so a
            # live invariant violation ships its history (the sim fault
            # runner's contract).  Ride on an externally installed
            # tracer when there is one.
            self.recorder = FlightRecorder()
            external = current_tracer()
            if external is not None:
                external.add_sink(self.recorder)
                shared_tracer = external
            else:
                shared_tracer = Tracer(sinks=[self.recorder])
        for index in range(config.nodes):
            name = f"n{index + 1}"
            skew = index * config.clock_skew
            profiler: Optional[StackSampler] = None
            if self.telemetry_enabled:
                telemetry = NodeTelemetry(
                    name,
                    trace_path=os.path.join(
                        config.telemetry_dir, f"{name}.trace.jsonl"
                    ),
                    profile_interval=config.profile_interval,
                )
                kernel = AsyncioKernel(
                    tracer=telemetry.tracer,
                    metrics=telemetry.registry,
                    clock_offset=skew,
                )
                profiler = telemetry.profiler
                if self.profile_enabled:
                    telemetry.profile_path = self._profile_path(name)
            else:
                telemetry = None
                kernel = AsyncioKernel(tracer=shared_tracer, clock_offset=skew)
                if self.profile_enabled:
                    profiler = StackSampler(interval=config.profile_interval)
            transport = TcpTransport(kernel, node=name)
            self.nodes.append(
                LiveNode(name, kernel, transport, telemetry, profiler)
            )
        self._lag_probes: list[LoopLagProbe] = []
        self.kernel = self.nodes[0].kernel       # reference clock domain
        self._loop = self.kernel._loop
        self.node_of: dict[str, str] = {}        # actor/stream -> node name

        def node_for(index: int) -> LiveNode:
            return self.nodes[index % len(self.nodes)]

        self.directory: dict[str, StreamDeployment] = {}
        for index in range(config.streams):
            node = node_for(index)
            name = f"s{index + 1}"
            stream_config = StreamConfig(
                name=name,
                acceptors=tuple(
                    f"{name}/acceptor-{j + 1}"
                    for j in range(config.acceptors_per_stream)
                ),
                ring_mode=(config.dissemination == "ring"),
                adaptive_batching=config.adaptive_batching,
                lam=config.effective_lam(),
            )
            self.directory[name] = StreamDeployment(
                node.kernel, node.transport, stream_config
            )
            self.node_of[name] = node.name
        self.replicas: dict[str, MulticastReplica] = {}
        self._submit_at: dict[int, float] = {}
        self.latencies_ms: list[float] = []
        for index in range(config.replicas):
            node = node_for(index)
            name = f"r{index + 1}"
            replica = MulticastReplica(
                node.kernel, node.transport, name, group="g1",
                directory=self.directory,
            )
            replica.add_delivery_observer(self._latency_tap)
            self.replicas[name] = replica
            self.node_of[name] = node.name
        self.invariants = InvariantSuite(self.replicas)
        client_node = self.nodes[0]
        self.client = MulticastClient(
            client_node.kernel, client_node.transport, "client", self.directory
        )
        self.node_of["client"] = client_node.name
        self.submitted = 0
        self.clock_offsets: dict[str, float] = {}
        self.scrape_count = 0
        self.last_health: dict[str, dict] = {}
        self._scrape_task: Optional[asyncio.Task] = None
        self.last_subscribe_request_id: Optional[int] = None
        self._signal_totals: dict[str, float] = {}
        self._signal_at: Optional[float] = None

    def _latency_tap(self, value, stream, position) -> None:
        sent = self._submit_at.get(value.msg_id)
        if sent is not None:
            latency_ms = 1000.0 * (self._loop.time() - sent)
            self.latencies_ms.append(latency_ms)
            metrics = self.kernel.metrics
            if metrics is not None:
                metrics.histogram("client", "latency_ms").record(latency_ms)

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        for node in self.nodes:
            await node.transport.start()
        # Every node learns where every other node's hosts listen, so a
        # cross-node send dials the owning node's socket.
        for a in self.nodes:
            for b in self.nodes:
                if a is b:
                    continue
                for hostname in b.transport.hosts():
                    a.transport.register_address(hostname, b.transport.address)
        if self.telemetry_enabled:
            for node in self.nodes:
                node.telemetry.bind(node.kernel, self._health_fn(node))
                node.endpoint = await node.telemetry.start_server()
            self._write_endpoints_file()
            await self._sync_clocks()
            self._scrape_task = asyncio.ensure_future(self._scrape_loop())
        if self.profile_enabled:
            for node in self.nodes:
                if node.profiler is not None:
                    node.profiler.start()
        # Event-loop-lag probes ride on whatever registry each kernel
        # has (per-node with telemetry, the process-wide one otherwise);
        # without any registry there is nowhere to export, so skip.
        for node in self.nodes:
            if node.kernel.metrics is not None:
                probe = LoopLagProbe(
                    node.kernel, node.kernel.metrics, actor=node.name
                )
                probe.start()
                self._lag_probes.append(probe)
        for deployment in self.directory.values():
            deployment.start()
        for replica in self.replicas.values():
            replica.bootstrap(["s1"])
        self.client.start()

    def _profile_path(self, node_name: str) -> str:
        return os.path.join(self.config.profile_dir, f"{node_name}.stacks.txt")

    def profile_paths(self) -> dict[str, str]:
        """node -> collapsed-stacks file (empty unless profiling is on)."""
        if not self.profile_enabled:
            return {}
        return {node.name: self._profile_path(node.name) for node in self.nodes}

    async def stop(self) -> None:
        for probe in self._lag_probes:
            probe.stop()
        self._lag_probes = []
        for node in self.nodes:
            if node.profiler is not None and node.profiler.running:
                node.profiler.stop()
        if self.profile_enabled:
            # Telemetry nodes write their stacks in NodeTelemetry.stop()
            # (profile_path is set); bare nodes are written here.
            for node in self.nodes:
                if node.telemetry is None and node.profiler is not None:
                    node.profiler.write_collapsed(self._profile_path(node.name))
        if self._scrape_task is not None:
            self._scrape_task.cancel()
            try:
                await self._scrape_task
            except asyncio.CancelledError:
                pass
            self._scrape_task = None
        self.client.stop()
        for replica in self.replicas.values():
            for core in list(replica.learners.values()):
                core.stop()
            replica.stop()
        for deployment in self.directory.values():
            deployment.stop()
        await asyncio.sleep(0)      # let interrupted tasks unwind
        for node in self.nodes:
            await node.transport.stop()
        for node in self.nodes:
            if node.telemetry is not None:
                await node.telemetry.stop()

    # -- telemetry plane ----------------------------------------------

    def _health_fn(self, node: LiveNode):
        def snapshot() -> dict:
            health: dict = {
                "node": node.name,
                "now": node.kernel._now,
                "streams": {},
                "replicas": {},
                "transport": {
                    "queue_depths": node.transport.queue_depths(),
                    "counters": node.transport.counters(),
                },
            }
            for stream, deployment in self.directory.items():
                if self.node_of[stream] != node.name:
                    continue
                coordinator = deployment.coordinator
                health["streams"][stream] = {
                    "next_instance": coordinator.next_instance,
                    "positions_decided": coordinator.positions_decided,
                    "leading": coordinator.leading,
                }
            for name, replica in self.replicas.items():
                if self.node_of[name] != node.name:
                    continue
                log = self.invariants.logs.get(name)
                health["replicas"][name] = {
                    "subscriptions": list(replica.subscriptions),
                    "positions": dict(replica.merger.positions()),
                    "delivered": len(log.records) if log is not None else 0,
                    "pending_subscription": (
                        replica.merger.pending_subscription is not None
                    ),
                }
            if self.node_of.get("client") == node.name:
                health["client"] = {"submitted": self.submitted}
            return health

        return snapshot

    def _write_endpoints_file(self) -> None:
        path = os.path.join(self.config.telemetry_dir, "endpoints.json")
        payload = {
            "nodes": {
                node.name: {
                    "host": node.endpoint[0],
                    "port": node.endpoint[1],
                    "trace": (
                        node.telemetry.trace_path
                        if node.telemetry is not None else None
                    ),
                }
                for node in self.nodes
            }
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    async def _sync_clocks(self) -> None:
        """Estimate each node's clock offset against node 1 and record
        it as a ``meta.clock`` event in that node's trace (the merge
        tool's alignment input)."""
        reference = self.nodes[0]
        self.clock_offsets[reference.name] = 0.0
        reference.telemetry.tracer.emit(
            "meta.clock", reference.kernel._now, cat="meta",
            ref=reference.name, offset=0.0, rtt=0.0,
        )
        for node in self.nodes[1:]:
            samples = []
            try:
                for _ in range(max(1, self.config.clock_sync_samples)):
                    t0 = reference.kernel._now
                    data = await http_get_json(*node.endpoint, "/clock")
                    t3 = reference.kernel._now
                    samples.append((t0, float(data["now"]), t3))
                offset, rtt = estimate_offset(samples)
            except Exception:
                offset, rtt = 0.0, float("inf")
            self.clock_offsets[node.name] = offset
            node.telemetry.tracer.emit(
                "meta.clock", node.kernel._now, cat="meta",
                ref=reference.name, offset=offset, rtt=rtt,
            )

    async def _scrape_loop(self) -> None:
        """Poll every node's /health endpoint; the latest snapshot per
        node is kept for the report and surfaced to `repro top`."""
        while True:
            for node in self.nodes:
                if node.endpoint is None:
                    continue
                try:
                    self.last_health[node.name] = await http_get_json(
                        *node.endpoint, "/health"
                    )
                    self.scrape_count += 1
                except Exception:
                    pass       # endpoint briefly busy; next tick retries
            await asyncio.sleep(self.config.scrape_interval)

    async def collect_metrics_dump(self) -> Optional[dict]:
        """The cluster-wide ``repro-metrics/1`` dump.

        With telemetry on, scrapes every node's ``/metrics.json``
        endpoint (falling back to the in-process registry if a scrape
        fails) and aggregates with node-prefixed actors; otherwise
        returns the process-wide registry's dump, as before.
        """
        if self.telemetry_enabled:
            dumps: dict[str, dict] = {}
            for node in self.nodes:
                try:
                    dumps[node.name] = await http_get_json(
                        *node.endpoint, "/metrics.json"
                    )
                except Exception:
                    dumps[node.name] = node.telemetry.registry.dump()
            return aggregate_dumps(dumps)
        if self.kernel.metrics is not None:
            return self.kernel.metrics.dump()
        return None

    def dump_flight_recordings(self, message: str) -> list[str]:
        """Dump every causal ring buffer next to ``--metrics-out``."""
        if self.config.metrics_out:
            directory = os.path.dirname(self.config.metrics_out) or "."
        elif self.config.telemetry_dir:
            directory = self.config.telemetry_dir
        else:
            directory = "."
        os.makedirs(directory, exist_ok=True)
        paths: list[str] = []
        header = {"message": message, "ts": self.kernel._now}
        if self.telemetry_enabled:
            for node in self.nodes:
                path = os.path.join(
                    directory, f"live-flight-{node.name}.jsonl"
                )
                node.telemetry.dump_flight(path, header=header)
                paths.append(path)
        elif self.recorder is not None:
            path = os.path.join(directory, "live-flight.jsonl")
            self.recorder.dump(path, header=header)
            paths.append(path)
        return paths

    # -- workload -----------------------------------------------------

    def multicast(self, stream: str, sequence: int) -> None:
        value = self.client.multicast(
            stream, payload=f"m{sequence}", size=self.config.payload_size
        )
        self._submit_at[value.msg_id] = self._loop.time()
        self.submitted += 1

    async def subscribe(self, new_stream: str, timeout: float) -> bool:
        """Runtime-subscribe the group to ``new_stream``; True once
        every replica's dMerge has switched."""
        self.last_subscribe_request_id = self.client.subscribe_msg(
            "g1", new_stream, via_stream="s1"
        )
        deadline = self._loop.time() + timeout
        while self._loop.time() < deadline:
            if all(
                new_stream in replica.subscriptions
                for replica in self.replicas.values()
            ):
                return True
            await asyncio.sleep(0.02)
        return False

    # -- observation --------------------------------------------------

    def introspect_snapshot(self):
        """A signal snapshot from in-process state -- the autoscaler's
        fallback when no telemetry endpoints are being served."""
        from ..elasticity.signals import SignalSnapshot

        now = self._loop.time()
        dt = None if self._signal_at is None else now - self._signal_at
        self._signal_at = now
        # Nodes may share one process-wide registry (no-telemetry runs):
        # dedupe by identity before summing per-stream counters.
        registries = {
            id(node.kernel.metrics): node.kernel.metrics
            for node in self.nodes
            if node.kernel.metrics is not None
        }
        totals: dict[str, float] = {}
        for registry in registries.values():
            for (actor, name), counter in registry.counters().items():
                if name == "values_decided" and "/" in actor:
                    stream = actor.split("/", 1)[0]
                    totals[stream] = totals.get(stream, 0.0) + counter.total
        decide_rate: dict[str, float] = {}
        for stream, total in totals.items():
            last = self._signal_totals.get(stream, total)
            self._signal_totals[stream] = total
            if dt is not None and dt > 0:
                decide_rate[stream] = (total - last) / dt
        replicas = list(self.replicas.values())
        committed = tuple(
            s for s in replicas[0].subscriptions
            if all(s in r.subscriptions for r in replicas[1:])
        ) if replicas else ()
        return SignalSnapshot(
            at=now,
            streams=committed,
            provisioned=tuple(sorted(self.directory)),
            pending_subscription=any(
                r.merger.pending_subscription is not None for r in replicas
            ),
            decide_rate=decide_rate,
        )

    def sequences(self) -> dict[str, list]:
        return {
            name: self.invariants.logs[name].sequence()
            for name in self.replicas
        }

    def kernel_failures(self) -> list[str]:
        return [
            repr(failure)
            for node in self.nodes
            for failure in node.kernel.failures
        ]

    async def drain(self, timeout: float) -> bool:
        """Wait until every replica delivered the identical non-empty
        sequence (retransmission heals stragglers)."""
        deadline = self._loop.time() + timeout
        while self._loop.time() < deadline:
            sequences = list(self.sequences().values())
            first = sequences[0]
            if first and all(sequence == first for sequence in sequences):
                return True
            await asyncio.sleep(0.1)
        sequences = list(self.sequences().values())
        return bool(sequences[0]) and all(
            sequence == sequences[0] for sequence in sequences
        )


async def _autoscale_loop(
    cluster: LiveCluster,
    config: LiveConfig,
    active_streams: list[str],
    state: dict,
    until: float,
) -> None:
    """The live closed loop: poll the telemetry plane, evaluate the
    decide-rate policy, and runtime-subscribe spare streams while the
    workload keeps flowing (docs/ELASTICITY.md, "Live mode").

    Signals come from the per-node HTTP endpoints when telemetry is on
    (the production shape), falling back to in-process introspection
    otherwise.  Imports stay inside the function: the runtime layer
    must not pull the simulator in at module scope.
    """
    from ..elasticity.policy import DecideRateCeiling, PolicyEngine
    from ..elasticity.signals import HttpSignalSource

    loop = cluster._loop
    start = loop.time()
    # No max_streams cap: live runs pre-provision their spare streams
    # (the engine's provisioned-count cap would see them all deployed
    # from t=0); running out of spares ends the loop below instead.
    engine = PolicyEngine(
        (DecideRateCeiling(ceiling=config.autoscale_ceiling),),
        sustain=config.autoscale_sustain,
        cooldown=config.autoscale_cooldown,
    )
    state["engine"] = engine
    source = (
        HttpSignalSource(
            {node.name: node.endpoint for node in cluster.nodes},
            clock=loop.time,
        )
        if cluster.telemetry_enabled else None
    )
    tracer = cluster.kernel.tracer
    while loop.time() < until:
        await asyncio.sleep(config.autoscale_interval)
        if source is not None:
            snapshot = await source.sample()
        else:
            snapshot = cluster.introspect_snapshot()
        if tracer is not None:
            tracer.emit(
                "elastic.poll", cluster.kernel._now, controller="autoscaler",
                streams=list(snapshot.streams),
                total_rate=round(snapshot.total_rate, 3),
                pending=snapshot.pending_subscription,
            )
        for proposal in engine.observe(snapshot):
            spare = [
                s for s in sorted(cluster.directory)
                if s not in active_streams
            ]
            if not spare:
                return
            target = spare[0]
            state["requested"] += 1
            state["events"].append(
                f"t+{loop.time() - start:.2f}s subscribe {target}: "
                f"{proposal.reason}"
            )
            if tracer is not None:
                tracer.emit(
                    "elastic.decision", cluster.kernel._now,
                    controller="autoscaler", rule=proposal.rule,
                    action=proposal.kind, mode="enforce",
                    reason=proposal.reason,
                )
            done = await cluster.subscribe(
                target, timeout=config.drain_timeout
            )
            if tracer is not None:
                tracer.emit(
                    "elastic.action", cluster.kernel._now,
                    controller="autoscaler", action=proposal.kind,
                    stream=target,
                    request_id=cluster.last_subscribe_request_id,
                )
            if done:
                state["completed"] += 1
                active_streams.append(target)


async def _run(config: LiveConfig) -> LiveReport:
    cluster = LiveCluster(config)
    loop = cluster._loop
    try:
        await cluster.start()

        subscribes_requested = config.streams - 1
        subscribes_completed = 0
        active_streams = ["s1"]
        # Submissions go out ``burst`` at a time: above a few thousand
        # values/s one sleep per message can't keep up (timer
        # granularity), so the sleep cost is amortised over the burst.
        interval = (
            config.burst / config.rate if config.rate > 0 else config.duration
        )
        subscribe_at = loop.time() + config.subscribe_after * config.duration
        workload_end = loop.time() + config.duration
        sequence = 0
        subscribed = subscribes_requested == 0
        autoscale_state: dict = {"requested": 0, "completed": 0, "events": []}
        autoscaler: Optional[asyncio.Task] = None
        if config.autoscale:
            # The controller owns reconfiguration: the scripted
            # subscribe is disabled, subscriptions happen only when the
            # policy engine decides they should.
            subscribed = True
            autoscaler = asyncio.ensure_future(
                _autoscale_loop(
                    cluster, config, active_streams, autoscale_state,
                    workload_end,
                )
            )
        while loop.time() < workload_end:
            for _ in range(config.burst):
                cluster.multicast(
                    active_streams[sequence % len(active_streams)], sequence
                )
                sequence += 1
            if not subscribed and loop.time() >= subscribe_at:
                # Subscribe to every further stream while the workload
                # keeps flowing on s1 (the paper's online reconfig).
                subscribed = True
                for index in range(1, config.streams):
                    done = await cluster.subscribe(
                        f"s{index + 1}", timeout=config.drain_timeout
                    )
                    if done:
                        subscribes_completed += 1
                        active_streams.append(f"s{index + 1}")
            if config.rate_ramp is not None:
                frac = min(1.0, max(
                    0.0,
                    1.0 - (workload_end - loop.time()) / config.duration,
                ))
                rate = config.rate + frac * (config.rate_ramp - config.rate)
                interval = (
                    config.burst / rate if rate > 0 else config.duration
                )
            await asyncio.sleep(interval)
        if autoscaler is not None:
            autoscaler.cancel()
            try:
                await autoscaler
            except asyncio.CancelledError:
                pass
            subscribes_requested = autoscale_state["requested"]
            subscribes_completed = autoscale_state["completed"]

        agreed = await cluster.drain(config.drain_timeout)

        violations: list[str] = []
        try:
            cluster.invariants.check()
        except InvariantViolation as violation:
            violations.append(str(violation))

        flight_dumps: list[str] = []
        if violations:
            flight_dumps = cluster.dump_flight_recordings(violations[0])

        delivered = {
            name: len(sequence_)
            for name, sequence_ in cluster.sequences().items()
        }
        latencies = cluster.latencies_ms
        transport_counters: dict[str, int] = {}
        for node in cluster.nodes:
            for name, value in node.transport.counters().items():
                if name == "peak_send_queue":
                    transport_counters[name] = max(
                        transport_counters.get(name, 0), value
                    )
                else:
                    transport_counters[name] = (
                        transport_counters.get(name, 0) + value
                    )
        report = LiveReport(
            streams=config.streams,
            replicas=config.replicas,
            duration=config.duration,
            submitted=cluster.submitted,
            delivered_per_replica=delivered,
            sequences_identical=agreed,
            subscribes_completed=subscribes_completed,
            subscribes_requested=subscribes_requested,
            invariant_checks=cluster.invariants.checks_run,
            violations=violations,
            kernel_failures=cluster.kernel_failures(),
            throughput=min(delivered.values(), default=0) / config.duration,
            latency_p50_ms=(
                _percentile(latencies, 50) if latencies else None
            ),
            latency_p99_ms=(
                _percentile(latencies, 99) if latencies else None
            ),
            transport_counters=transport_counters,
            nodes=config.nodes,
            node_traces={
                node.name: node.telemetry.trace_path
                for node in cluster.nodes
                if node.telemetry is not None
                and node.telemetry.trace_path is not None
            },
            endpoints={
                node.name: f"{node.endpoint[0]}:{node.endpoint[1]}"
                for node in cluster.nodes
                if node.endpoint is not None
            },
            clock_offsets=dict(cluster.clock_offsets),
            flight_dumps=flight_dumps,
            scrapes=cluster.scrape_count,
            autoscale=config.autoscale,
            autoscale_events=list(autoscale_state["events"]),
            profile_files=cluster.profile_paths(),
            dissemination=config.dissemination,
            event_loop=(
                f"{type(loop).__module__}.{type(loop).__name__}"
            ),
        )
        if config.metrics_out:
            dump = await cluster.collect_metrics_dump()
            if dump is not None:
                with open(config.metrics_out, "w") as fh:
                    json.dump(dump, fh, indent=2, sort_keys=True)
                    fh.write("\n")
        return report
    finally:
        await cluster.stop()


def run_live(config: LiveConfig) -> LiveReport:
    """Boot, drive and tear down a live cluster; returns the report.

    With ``config.uvloop`` the cluster runs on uvloop's event loop when
    the package is importable; uvloop is a *soft* dependency, so when
    it is absent the run falls back to the stdlib loop (the report's
    ``event_loop`` field records which one actually drove the run).
    """
    if config.uvloop:
        try:
            import uvloop  # soft dependency: not in the base install
        except ImportError:
            uvloop = None  # type: ignore[assignment]
        if uvloop is not None:
            previous = asyncio.get_event_loop_policy()
            asyncio.set_event_loop_policy(uvloop.EventLoopPolicy())
            try:
                return asyncio.run(_run(config))
            finally:
                asyncio.set_event_loop_policy(previous)
    return asyncio.run(_run(config))
