"""Per-node telemetry plane for the live runtime.

Every node of a live deployment (``python -m repro live --nodes N
--telemetry-dir DIR``) owns one :class:`NodeTelemetry`:

* a node-stamped :class:`~repro.obs.trace.Tracer` streaming JSONL to
  ``DIR/<node>.trace.jsonl`` (plus a :class:`FlightRecorder` ring
  buffer, dumped on invariant violations);
* a :class:`~repro.obs.metrics.MetricsRegistry` bound to the node's
  kernel clock;
* a tiny HTTP/1.0 endpoint (:class:`TelemetryServer`) serving

  ========================  ==========================================
  ``GET /metrics``          Prometheus text exposition
  ``GET /metrics.json``     the ``repro-metrics/1`` registry dump
  ``GET /health``           heartbeat: last-delivered position per
                            stream, subscription state, transport
                            queue depths and counters, plus the
                            watchdog's health score + active alerts
  ``GET /alerts``           the watchdog alone: health score, active
                            alerts, total raised
  ``GET /clock``            ``{"node": ..., "now": ...}`` -- the
                            handshake target for clock alignment
  ``GET /profile``          flamegraph-collapsed stacks sampled so far
  ``GET /profile/start``    start the node's background stack sampler
  ``GET /profile/stop``     stop it (samples are kept for ``/profile``)
  ========================  ==========================================

The supervisor scrapes these endpoints to aggregate a cluster-wide
metrics dump, estimates each node's clock offset against the reference
node with NTP-style ``/clock`` round trips (:func:`estimate_offset`),
and ``python -m repro top`` renders the same endpoints as a live
console.

Layering note: :mod:`repro.obs.metrics` builds on the sim monitor
primitives, so it is imported lazily inside the functions that need a
registry -- importing this module never drags ``repro.sim`` in (see
``tests/runtime/test_layering.py``).
"""

from __future__ import annotations

import asyncio
import json
import re
from typing import Any, Awaitable, Callable, Optional

from ..obs.recorder import FlightRecorder
from ..obs.trace import DEFAULT_CATEGORIES, JsonlSink, Tracer
from ..obs.watch import Watchdog, default_node_detectors, sample_from_health
from .profiling import StackSampler

__all__ = [
    "NodeTelemetry",
    "TelemetryServer",
    "aggregate_dumps",
    "estimate_offset",
    "http_get_json",
    "prometheus_text",
]

_UNSAFE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return _UNSAFE.sub("_", name.strip()).lower()


def _prom_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def prometheus_text(dump: dict, node: Optional[str] = None) -> str:
    """Render a ``repro-metrics/1`` dump as Prometheus text exposition.

    Counters become ``repro_<name>_total``, gauges ``repro_<name>``
    (last sample) plus ``repro_<name>_peak``, histograms quantile
    series ``repro_<name>{quantile=...}`` with ``_count``; every series
    carries an ``actor`` label (and ``node`` when given).  Instruments
    with no samples are skipped -- Prometheus has no null -- but stay
    present in the JSON dump.
    """
    lines: list[str] = []

    def labels(actor: str, extra: str = "") -> str:
        parts = [f'actor="{_prom_label(actor)}"']
        if node is not None:
            parts.append(f'node="{_prom_label(node)}"')
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}"

    for entry in dump.get("counters", ()):
        metric = f"repro_{_prom_name(entry['name'])}_total"
        lines.append(f"{metric}{labels(entry['actor'])} {entry['total']:g}")
    for entry in dump.get("gauges", ()):
        if entry.get("last") is None:
            continue
        metric = f"repro_{_prom_name(entry['name'])}"
        lines.append(f"{metric}{labels(entry['actor'])} {entry['last']:g}")
        lines.append(
            f"{metric}_peak{labels(entry['actor'])} {entry['peak']:g}"
        )
    for entry in dump.get("histograms", ()):
        metric = f"repro_{_prom_name(entry['name'])}"
        lines.append(f"{metric}_count{labels(entry['actor'])} {entry['n']:g}")
        if entry.get("mean") is None:
            continue
        lines.append(f"{metric}_mean{labels(entry['actor'])} {entry['mean']:g}")
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
            value = entry.get(key)
            if value is not None:
                extra = 'quantile="%s"' % quantile
                lines.append(
                    f"{metric}{labels(entry['actor'], extra)} {value:g}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def estimate_offset(
    samples: list[tuple[float, float, float]],
) -> tuple[float, float]:
    """NTP-style offset from ``(t0, server_now, t3)`` round trips.

    ``t0``/``t3`` are reference-clock reads around the request,
    ``server_now`` the target node's clock read in between.  Picks the
    minimum-RTT sample (least queueing noise) and returns
    ``(offset, rtt)`` where ``offset`` is the target clock minus the
    reference clock.
    """
    if not samples:
        raise ValueError("no handshake samples")
    best_offset, best_rtt = 0.0, float("inf")
    for t0, server_now, t3 in samples:
        rtt = t3 - t0
        if rtt < best_rtt:
            best_rtt = rtt
            best_offset = server_now - (t0 + t3) / 2.0
    return best_offset, best_rtt


# -- minimal HTTP ------------------------------------------------------

_RESPONSE = (
    "HTTP/1.0 {status} {reason}\r\n"
    "Content-Type: {content_type}\r\n"
    "Content-Length: {length}\r\n"
    "Connection: close\r\n"
    "\r\n"
)

Route = Callable[[], "tuple[str, str]"]      # -> (content_type, body)


class TelemetryServer:
    """A deliberately tiny HTTP/1.0 endpoint (stdlib-only, in-loop).

    Routes are sync callables returning ``(content_type, body)``;
    unknown paths get 404.  One request per connection -- scrapers and
    the `top` console poll, they do not stream.
    """

    def __init__(
        self,
        routes: dict[str, Route],
        bind_host: str = "127.0.0.1",
        bind_port: int = 0,
    ):
        self.routes = dict(routes)
        self._bind_host = bind_host
        self._bind_port = bind_port
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[tuple[str, int]] = None
        self.requests_served = 0

    async def start(self) -> tuple[str, int]:
        if self._server is not None:
            raise RuntimeError("telemetry server already started")
        self._server = await asyncio.start_server(
            self._serve, self._bind_host, self._bind_port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await reader.readline()
            parts = request.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else "/"
            # Drain (and ignore) the request headers.
            while True:
                line = await reader.readline()
                if line in (b"", b"\r\n", b"\n"):
                    break
            route = self.routes.get(path.partition("?")[0])
            if route is None:
                status, reason = 404, "Not Found"
                content_type, body = "text/plain; charset=utf-8", "not found\n"
            else:
                status, reason = 200, "OK"
                try:
                    content_type, body = route()
                except Exception as exc:   # surface, don't kill the loop
                    status, reason = 500, "Internal Server Error"
                    content_type = "text/plain; charset=utf-8"
                    body = f"error: {exc!r}\n"
            raw = body.encode("utf-8")
            writer.write(_RESPONSE.format(
                status=status, reason=reason, content_type=content_type,
                length=len(raw),
            ).encode("latin-1"))
            writer.write(raw)
            await writer.drain()
            self.requests_served += 1
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
            except RuntimeError:
                pass


async def http_get_json(
    host: str, port: int, path: str, timeout: float = 2.0
) -> Any:
    """In-loop GET returning the parsed JSON body (raises on non-200)."""

    async def _fetch() -> Any:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            writer.write(
                f"GET {path} HTTP/1.0\r\nHost: {host}\r\n\r\n".encode("latin-1")
            )
            await writer.drain()
            raw = await reader.read()
        finally:
            writer.close()
        head, _, body = raw.partition(b"\r\n\r\n")
        status_line = head.split(b"\r\n", 1)[0].decode("latin-1", "replace")
        parts = status_line.split()
        if len(parts) < 2 or parts[1] != "200":
            raise RuntimeError(f"GET {path}: {status_line!r}")
        return json.loads(body.decode("utf-8"))

    return await asyncio.wait_for(_fetch(), timeout)


def aggregate_dumps(dumps: dict[str, dict]) -> dict:
    """Merge per-node ``repro-metrics/1`` dumps into one cluster dump.

    Actor names are prefixed ``<node>/`` so the same actor name on two
    nodes (e.g. each node's transport) stays distinguishable; the
    result is itself a valid ``repro-metrics/1`` dump.
    """
    merged: dict[str, Any] = {
        "format": "repro-metrics/1",
        "counters": [], "gauges": [], "histograms": [],
    }
    for node in sorted(dumps):
        dump = dumps[node]
        for kind in ("counters", "gauges", "histograms"):
            for entry in dump.get(kind, ()):
                entry = dict(entry)
                entry["actor"] = f"{node}/{entry['actor']}"
                merged[kind].append(entry)
    for kind in ("counters", "gauges", "histograms"):
        merged[kind].sort(key=lambda e: (e["actor"], e["name"]))
    return merged


# -- per-node assembly -------------------------------------------------

class NodeTelemetry:
    """One node's tracer, registry, flight recorder and HTTP endpoint.

    Construct *before* the node's kernel; pass :attr:`tracer` /
    :attr:`registry` into ``AsyncioKernel(tracer=..., metrics=...)`` so
    the node's actors adopt them.  ``health`` is a callable the
    supervisor provides returning the node's health snapshot dict.
    """

    def __init__(
        self,
        node: str,
        trace_path: Optional[str] = None,
        categories: Optional[frozenset] = None,
        flight_capacity: int = 100_000,
        bind_host: str = "127.0.0.1",
        profile_interval: float = 0.02,
    ):
        from ..obs.metrics import MetricsRegistry   # deferred: pulls in sim

        self.node = node
        self.trace_path = trace_path
        self.recorder = FlightRecorder(capacity=flight_capacity)
        sinks: list[Any] = [self.recorder]
        self._jsonl: Optional[JsonlSink] = None
        if trace_path is not None:
            self._jsonl = JsonlSink(trace_path)
            sinks.append(self._jsonl)
        self.tracer = Tracer(
            sinks=sinks,
            categories=categories if categories is not None else DEFAULT_CATEGORIES,
            node=node,
            clock="wall",
        )
        self.registry = MetricsRegistry()
        self.kernel: Any = None          # bound via bind()
        self.server: Optional[TelemetryServer] = None
        self._bind_host = bind_host
        self._health: Callable[[], dict] = lambda: {"node": node}
        # Continuous profiling: toggled via /profile/start|stop or run
        # for the whole deployment by `repro live --profile-dir` (the
        # supervisor sets profile_path; stop() writes the stacks there).
        self.profiler = StackSampler(interval=profile_interval)
        self.profile_path: Optional[str] = None
        # Self-observing watchdog (docs/OBSERVABILITY.md, "Online
        # audit"): evaluated only when /health or /alerts is scraped,
        # so it costs the datapath nothing between scrapes.  Raise /
        # clear transitions go through the tracer into the JSONL trace
        # and the flight-recorder ring (causal context on any dump).
        self.watchdog = Watchdog(
            default_node_detectors(), tracer=self.tracer
        )

    def bind(self, kernel: Any, health: Callable[[], dict]) -> None:
        """Adopt the node's kernel clock and the health snapshot hook,
        then write the trace's ``meta.node`` header."""
        self.kernel = kernel
        self._health = health
        self.tracer.emit(
            "meta.node", kernel._now, cat="meta",
            clock=self.tracer.clock,
        )

    def flush_trace(self) -> None:
        """Flush the JSONL trace to disk (for live tails: the online
        certifier drains the traces before this process exits)."""
        if self._jsonl is not None:
            self._jsonl.flush()

    # -- endpoint -----------------------------------------------------

    def _route_metrics(self) -> tuple[str, str]:
        return (
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus_text(self.registry.dump(), node=self.node),
        )

    def _route_metrics_json(self) -> tuple[str, str]:
        return ("application/json", json.dumps(self.registry.dump()))

    def _observe_health(self, snapshot: dict) -> None:
        self.watchdog.observe(sample_from_health(snapshot, node=self.node))

    def _route_health(self) -> tuple[str, str]:
        snapshot = self._health()
        self._observe_health(snapshot)
        snapshot["health_score"] = self.watchdog.health_score()
        snapshot["alerts"] = self.watchdog.active_alerts()
        return ("application/json", json.dumps(snapshot))

    def _route_alerts(self) -> tuple[str, str]:
        self._observe_health(self._health())
        return ("application/json", json.dumps({
            "node": self.node,
            "health_score": self.watchdog.health_score(),
            "active": self.watchdog.active_alerts(),
            "raised_total": self.watchdog.raised_total,
        }))

    def _route_clock(self) -> tuple[str, str]:
        now = self.kernel._now if self.kernel is not None else 0.0
        return ("application/json", json.dumps({"node": self.node, "now": now}))

    def _route_profile(self) -> tuple[str, str]:
        return ("text/plain; charset=utf-8", self.profiler.collapsed())

    def _profile_status(self) -> tuple[str, str]:
        return (
            "application/json",
            json.dumps({
                "node": self.node,
                "running": self.profiler.running,
                "samples": self.profiler.total,
                "interval": self.profiler.interval,
            }),
        )

    def _route_profile_start(self) -> tuple[str, str]:
        self.profiler.start()
        return self._profile_status()

    def _route_profile_stop(self) -> tuple[str, str]:
        self.profiler.stop()
        return self._profile_status()

    async def start_server(self) -> tuple[str, int]:
        self.server = TelemetryServer(
            {
                "/metrics": self._route_metrics,
                "/metrics.json": self._route_metrics_json,
                "/health": self._route_health,
                "/alerts": self._route_alerts,
                "/clock": self._route_clock,
                "/profile": self._route_profile,
                "/profile/start": self._route_profile_start,
                "/profile/stop": self._route_profile_stop,
            },
            bind_host=self._bind_host,
        )
        return await self.server.start()

    async def stop(self) -> None:
        if self.server is not None:
            await self.server.stop()
            self.server = None
        if self.profiler.running:
            self.profiler.stop()
        if self.profile_path is not None:
            self.profiler.write_collapsed(self.profile_path)
        self.tracer.close()

    def dump_flight(self, path: str, header: Optional[dict] = None) -> int:
        """Dump this node's causal ring buffer to ``path`` (JSONL)."""
        return self.recorder.dump(path, header=header)
