"""Length-prefixed TCP transport for the live runtime.

Implements the :class:`repro.runtime.kernel.Transport` interface over
real localhost sockets.  Hosts are in-process (their actors run on the
same :class:`~repro.runtime.asyncio_kernel.AsyncioKernel`), but every
``send`` is serialized with the wire codec and travels through the OS
TCP stack -- there is no in-process shortcut, so the live smoke test
exercises real framing, flow control and socket teardown.

Wire framing (outer; the codec frame has its own versioned header)::

    [u32 frame_len] [f64 sent_at] [u16 src_len][src] [u16 dst_len][dst]
    [codec frame]

``frame_len`` counts everything after itself.

Per-peer connection management: one :class:`_PeerLink` per destination
name, with

* a bounded send queue -- ``send`` is fire-and-forget; when the queue
  is full the message is *dropped* (and counted), exactly like a
  saturated kernel socket buffer under a fire-and-forget datagram
  model.  Loss is repaired by the protocol's retransmission, never by
  the transport;
* a writer task that *coalesces*: it drains the backlog into a burst
  (capped by ``_MAX_BURST_FRAMES`` / ``_MAX_BURST_BYTES``), joins the
  frames into one immutable ``bytes`` and pays a single
  ``writer.write()`` + ``writer.drain()`` for the whole burst -- one
  syscall and one backpressure round-trip amortised over up to 128
  frames instead of each frame paying its own.  The join is a fresh
  ``bytes`` object every attempt because the event loop (uvloop in
  particular) may keep a reference to a written buffer until the write
  completes -- a reused mutable scratch must never be handed to
  ``write()``;
* reconnect-with-backoff (50 ms doubling to 1 s) when the peer is not
  yet listening or the connection drops; the burst being written when
  a connection dies is retried on the next connection *in full* -- the
  unsent tail is kept, not just the first frame;
* a *reachability cap*: after ``unreachable_after`` consecutive failed
  connect attempts to a known address, the link parks as unreachable
  instead of retrying forever -- its backlog is dropped (counted as
  ``dropped_unreachable``), new sends drop immediately, and the peer
  name is surfaced via :meth:`TcpTransport.unreachable_peers`.  A
  fresh :meth:`TcpTransport.register_address` for that peer (how a
  supervisor announces a restarted worker's new port) revives the
  link; the in-flight burst held across the outage is still retried
  in full;
* ``transport.queue_wait`` attribution is recorded when a frame leaves
  the queue for a burst, exactly as it was for per-frame writes.

Encoding reuses a per-link ``bytearray`` scratch (outer framing + the
codec's :func:`~repro.runtime.codec.encode_into`) snapshotted to
``bytes`` once per message; decoding hands the codec a ``memoryview``
into the receive buffer (see the zero-copy contract in
``runtime/codec.py`` and docs/PERFORMANCE.md).
"""

from __future__ import annotations

import asyncio
import struct
from typing import Any, Callable, Optional

from .asyncio_kernel import AsyncioKernel, LiveStore
from .kernel import Envelope

__all__ = ["LiveHost", "TcpTransport"]

_LEN = struct.Struct("!I")
_SENT_AT = struct.Struct("!d")
_U16 = struct.Struct("!H")

_BACKOFF_INITIAL = 0.05
_BACKOFF_CAP = 1.0

# Coalescing caps: bound the memory a single joined write may pin and
# keep reconnect retransmission amortised (a lost connection re-sends
# at most one burst).
_MAX_BURST_FRAMES = 128
_MAX_BURST_BYTES = 1 << 20

_LEN_PLACEHOLDER = bytes(_LEN.size)


class LiveHost:
    """A named node bound to the live kernel (sim ``Host`` mirror)."""

    __slots__ = ("env", "name", "inbox", "crashed", "incarnation", "actor")

    def __init__(self, env: AsyncioKernel, name: str):
        self.env = env
        self.name = name
        self.inbox: LiveStore = LiveStore(env)
        self.crashed = False
        self.incarnation = 0
        self.actor: Optional[Any] = None

    def crash(self) -> None:
        self.crashed = True
        self.incarnation += 1
        self.inbox = LiveStore(self.env)

    def recover(self) -> None:
        self.crashed = False
        self.inbox = LiveStore(self.env)

    def __repr__(self) -> str:
        state = "crashed" if self.crashed else "up"
        return f"<LiveHost {self.name} ({state})>"


class _PeerLink:
    """Outbound connection to one destination name."""

    def __init__(self, transport: "TcpTransport", dst: str, queue_frames: int):
        self.transport = transport
        self.dst = dst
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_frames)
        self.scratch = bytearray()   # per-link encode scratch (send path)
        self.unreachable = False
        self._failures = 0           # consecutive failed connect attempts
        self._revive = asyncio.Event()
        self.task = asyncio.ensure_future(self._run())
        self.connects = 0

    def revive(self) -> None:
        """Wake a parked link (a new address was registered)."""
        self._revive.set()

    async def _connect(self) -> tuple:
        backoff = _BACKOFF_INITIAL
        while True:
            address = self.transport._addresses.get(self.dst)
            if address is not None:
                reconnecting = self.connects > 0
                try:
                    reader, writer = await asyncio.open_connection(*address)
                    self.connects += 1
                    self._failures = 0
                    if reconnecting:
                        self.transport._count_reconnect()
                    return reader, writer
                except OSError:
                    self.transport._count_reconnect()
                    self._failures += 1
                    if self._failures >= self.transport._unreachable_after:
                        # The peer has a known address but nothing is
                        # listening there: park instead of retrying
                        # forever.  A register_address for this peer
                        # (e.g. the restarted worker's new port)
                        # revives us; until then the backlog is dead
                        # weight and is dropped.
                        await self._park()
                        backoff = _BACKOFF_INITIAL
                        continue
            # No address yet is *not* a failure: deployments create
            # links before the supervisor distributes the address map.
            await asyncio.sleep(backoff)
            backoff = min(backoff * 2, _BACKOFF_CAP)

    async def _park(self) -> None:
        self.unreachable = True
        self._revive.clear()
        dropped = 0
        while True:
            try:
                self.queue.get_nowait()
            except asyncio.QueueEmpty:
                break
            dropped += 1
        self.transport._note_unreachable(self.dst, parked=True,
                                         dropped=dropped)
        await self._revive.wait()
        self.unreachable = False
        self._failures = 0
        self.transport._note_unreachable(self.dst, parked=False)

    async def _run(self) -> None:
        writer = None
        # Frames pulled off the queue but not yet confirmed written.  On
        # a connection error the WHOLE list is retried on the next
        # connection: a burst interrupted mid-write must re-send its
        # unsent tail, not just its first frame.
        pending: list[bytes] = []
        pending_bytes = 0
        queue = self.queue
        note_dequeue = self.transport._note_dequeue
        try:
            while True:
                if not pending:
                    enqueued_at, msg_id, frame = await queue.get()
                    note_dequeue(self.dst, msg_id, enqueued_at)
                    pending.append(frame)
                    pending_bytes = len(frame)
                    # Coalesce: opportunistically drain the backlog that
                    # built up while the last burst was writing.
                    while (len(pending) < _MAX_BURST_FRAMES
                           and pending_bytes < _MAX_BURST_BYTES):
                        try:
                            enqueued_at, msg_id, frame = queue.get_nowait()
                        except asyncio.QueueEmpty:
                            break
                        note_dequeue(self.dst, msg_id, enqueued_at)
                        pending.append(frame)
                        pending_bytes += len(frame)
                if writer is None:
                    _reader, writer = await self._connect()
                try:
                    # One write + one drain for the whole burst.  The
                    # join allocates fresh immutable bytes on purpose:
                    # the loop may hold the buffer until the write
                    # lands (uvloop does), so no scratch reuse here.
                    writer.write(
                        pending[0] if len(pending) == 1
                        else b"".join(pending)
                    )
                    # Backpressure: wait for the socket buffer to drain
                    # before pulling the next burst off the queue.
                    await writer.drain()
                    self.transport._note_flush(len(pending), pending_bytes)
                    pending.clear()
                    pending_bytes = 0
                except (ConnectionError, OSError):
                    writer = None   # reconnect and retry the whole burst
        except asyncio.CancelledError:
            pass
        finally:
            if writer is not None:
                writer.close()

    def close(self) -> None:
        self.task.cancel()


class TcpTransport:
    """Transport over localhost TCP with per-peer links.

    Counter names mirror :class:`repro.sim.network.Network` so
    invariant checkers and reports read either backend unchanged.
    """

    def __init__(
        self,
        kernel: AsyncioKernel,
        bind_host: str = "127.0.0.1",
        bind_port: int = 0,
        send_queue_frames: int = 1024,
        encode: Optional[Callable[..., bytes]] = None,
        decode: Optional[Callable[[bytes], Any]] = None,
        node: Optional[str] = None,
        unreachable_after: int = 30,
    ):
        decode_with_context = None
        encode_into = None
        if encode is None or decode is None:
            from . import codec

            if encode is None:
                encode = codec.encode
                encode_into = codec.encode_into
            if decode is None:
                decode = codec.decode
                decode_with_context = codec.decode_with_context
        self.env = kernel
        self._encode = encode
        # Zero-copy fast paths, only wired when the default codec is in
        # play: scratch-append encode and memoryview-accepting decode.
        # A custom codec keeps the copying bytes-in/bytes-out contract.
        self._encode_into = encode_into
        self._decode = decode
        self._decode_with_context = decode_with_context
        self.node = node
        self._bind_host = bind_host
        self._bind_port = bind_port
        self._send_queue_frames = send_queue_frames
        self._hosts: dict[str, LiveHost] = {}
        # dst name -> (ip, port).  All local hosts map to this
        # transport's own listener; a multi-process deployment injects
        # remote entries here.
        self._addresses: dict[str, tuple[str, int]] = {}
        self._links: dict[str, _PeerLink] = {}
        if unreachable_after < 1:
            raise ValueError("unreachable_after must be >= 1")
        self._unreachable_after = unreachable_after
        self._unreachable: set[str] = set()
        # Peer names this node is partitioned from (chaos injection):
        # outbound sends to and inbound frames from a blocked peer are
        # dropped at the socket boundary, the live analogue of the sim
        # fault layer's network partition.
        self._blocked: set[str] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[tuple[str, int]] = None
        tracer = kernel.tracer
        self._tracer = tracer
        self._net_tracer = (
            tracer if tracer is not None and tracer.wants_net else None
        )
        # Trace-context propagation rides on *any* installed tracer
        # (not just the net firehose): the whole point is that another
        # node can correlate the lifecycle, and the default codec must
        # be in play for the versioned context field to exist.
        self._propagate_context = (
            tracer is not None and decode_with_context is not None
        )
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_reordered = 0
        self.bytes_delivered = 0
        self.dropped_on_crash = 0
        self.dropped_backpressure = 0
        self.dropped_unreachable = 0
        self.dropped_partition = 0
        self.peers_parked = 0
        self.reconnect_attempts = 0
        self.peak_send_queue = 0
        self.frames_coalesced = 0
        self.writer_flushes = 0
        self.bytes_written = 0
        # Registry instruments (None when no registry is installed):
        # the same numbers as the attributes above, but scrapeable via
        # the node's /metrics endpoint and `--metrics-out` dumps.
        metrics = kernel.metrics
        actor = node if node is not None else "transport"
        if metrics is not None:
            self._m_reconnects = metrics.counter(actor, "transport_reconnects")
            self._m_drop_crash = metrics.counter(
                actor, "transport_dropped_on_crash"
            )
            self._m_drop_backpressure = metrics.counter(
                actor, "transport_dropped_backpressure"
            )
            self._m_queue_depth = metrics.gauge(
                actor, "transport_send_queue_depth"
            )
            self._m_queue_wait = metrics.histogram(actor, "queue_wait_ms")
            self._m_frames_coalesced = metrics.counter(
                actor, "transport_frames_coalesced"
            )
            self._m_writer_flushes = metrics.counter(
                actor, "transport_writer_flushes"
            )
            self._m_bytes_per_write = metrics.histogram(
                actor, "bytes_per_write"
            )
        else:
            self._m_reconnects = None
            self._m_drop_crash = None
            self._m_drop_backpressure = None
            self._m_queue_depth = None
            self._m_queue_wait = None
            self._m_frames_coalesced = None
            self._m_writer_flushes = None
            self._m_bytes_per_write = None
        # Queue-wait attribution (the queue-vs-wire split of the latency
        # budget) needs the msg_id extracted even when context
        # propagation is off; only bother when someone is listening.
        self._track_queue_wait = (
            tracer is not None or self._m_queue_wait is not None
        )

    def _count_reconnect(self) -> None:
        self.reconnect_attempts += 1
        if self._m_reconnects is not None:
            self._m_reconnects.record()

    def _note_unreachable(self, dst: str, parked: bool,
                          dropped: int = 0) -> None:
        """A peer link parked as unreachable (or revived)."""
        if parked:
            self._unreachable.add(dst)
            self.peers_parked += 1
            self.messages_dropped += dropped
            self.dropped_unreachable += dropped
        else:
            self._unreachable.discard(dst)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "transport.peer_unreachable" if parked
                else "transport.peer_revived",
                self.env._now, dst=dst, dropped=dropped,
            )

    def _note_flush(self, frames: int, nbytes: int) -> None:
        """One coalesced burst was written and drained successfully."""
        self.writer_flushes += 1
        self.frames_coalesced += frames
        self.bytes_written += nbytes
        if self._m_writer_flushes is not None:
            self._m_writer_flushes.record()
        if self._m_frames_coalesced is not None:
            self._m_frames_coalesced.record(frames)
        if self._m_bytes_per_write is not None:
            self._m_bytes_per_write.record(float(nbytes))

    def _note_dequeue(
        self, dst: str, msg_id: Optional[int], enqueued_at: float
    ) -> None:
        """A frame left its per-peer send queue: record how long it sat
        there (the queue half of the latency budget's queue-vs-wire
        transport split).  Only msg_id-bearing payloads are traced so
        the volume stays at value-message scale, like ``net.context``."""
        if msg_id is None:
            return
        wait = self.env._now - enqueued_at
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "transport.queue_wait", self.env._now, dst=dst,
                msg_id=msg_id, wait=wait,
            )
        if self._m_queue_wait is not None:
            self._m_queue_wait.record(1000.0 * wait)

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the listener; register all local hosts at its address."""
        if self._server is not None:
            raise RuntimeError("transport already started")
        self._server = await asyncio.start_server(
            self._serve_connection, self._bind_host, self._bind_port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        for name in self._hosts:
            self._addresses.setdefault(name, self.address)
        return self.address

    async def stop(self) -> None:
        for link in self._links.values():
            link.close()
        await asyncio.gather(
            *(link.task for link in self._links.values()),
            return_exceptions=True,
        )
        self._links.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- hosts --------------------------------------------------------

    def add_host(self, name: str) -> LiveHost:
        if name not in self._hosts:
            self._hosts[name] = LiveHost(self.env, name)
            if self.address is not None:
                self._addresses.setdefault(name, self.address)
        return self._hosts[name]

    def host(self, name: str) -> LiveHost:
        try:
            return self._hosts[name]
        except KeyError:
            raise KeyError(f"unknown host {name!r}") from None

    def hosts(self) -> list[str]:
        return sorted(self._hosts)

    def register_address(self, name: str, address: tuple[str, int]) -> None:
        """Map a (possibly remote) host name to its listener address.

        Re-registering a peer that was parked as unreachable revives
        its link: this is how a restarted worker's fresh listener port
        is announced."""
        self._addresses[name] = address
        link = self._links.get(name)
        if link is not None and link.unreachable:
            link.revive()

    # -- fault injection (deployment chaos plane) ---------------------

    def set_partition(self, peers: list[str], blocked: bool = True) -> None:
        """Block (or heal) traffic to and from the named peer hosts.

        Symmetric at this node's boundary: outbound sends to a blocked
        peer and inbound frames from one are dropped and counted as
        ``dropped_partition``.  The supervisor applies the same set on
        both sides of the cut."""
        for peer in peers:
            if blocked:
                self._blocked.add(peer)
            else:
                self._blocked.discard(peer)
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                "transport.partition", self.env._now,
                peers=sorted(peers), blocked=blocked,
                now_blocked=sorted(self._blocked),
            )

    def partitioned_peers(self) -> list[str]:
        return sorted(self._blocked)

    def unreachable_peers(self) -> list[str]:
        """Peers whose links are currently parked (reconnect cap hit)."""
        return sorted(self._unreachable)

    # -- introspection (health endpoint / reports) --------------------

    def queue_depths(self) -> dict[str, int]:
        """Current send-queue depth per destination link."""
        return {dst: link.queue.qsize() for dst, link in self._links.items()}

    def counters(self) -> dict[str, int]:
        """The Network-compatible counter set plus live-only extras."""
        return {
            "messages_sent": self.messages_sent,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "bytes_delivered": self.bytes_delivered,
            "dropped_on_crash": self.dropped_on_crash,
            "dropped_backpressure": self.dropped_backpressure,
            "dropped_unreachable": self.dropped_unreachable,
            "dropped_partition": self.dropped_partition,
            "peers_parked": self.peers_parked,
            "peers_unreachable": len(self._unreachable),
            "reconnect_attempts": self.reconnect_attempts,
            "peak_send_queue": self.peak_send_queue,
            "frames_coalesced": self.frames_coalesced,
            "writer_flushes": self.writer_flushes,
            "bytes_written": self.bytes_written,
        }

    # -- sending ------------------------------------------------------

    def _trace_drop(self, src: str, dst: str, payload: Any, reason: str) -> None:
        tracer = self._net_tracer
        if tracer is not None:
            tracer.emit(
                "net.drop", self.env.now, src=src, dst=dst,
                type=type(payload).__name__, reason=reason,
            )

    def send(self, src: str, dst: str, payload: Any, size: int = 128) -> None:
        """Fire-and-forget: enqueue one framed message to ``dst``."""
        if size < 0:
            raise ValueError("size must be non-negative")
        self.messages_sent += 1
        sender = self._hosts.get(src)
        if sender is not None and sender.crashed:
            self.messages_dropped += 1
            self.dropped_on_crash += 1
            if self._m_drop_crash is not None:
                self._m_drop_crash.record()
            self._trace_drop(src, dst, payload, "src_crashed")
            return
        if dst in self._blocked:
            self.messages_dropped += 1
            self.dropped_partition += 1
            self._trace_drop(src, dst, payload, "partition")
            return
        tracer = self._net_tracer
        if tracer is not None:
            tracer.emit(
                "net.send", self.env.now, src=src, dst=dst,
                type=type(payload).__name__, size=size,
            )
        msg_id = None
        if self._track_queue_wait:
            # Correlate by message id when the payload carries one --
            # directly (AppValue) or as a Propose's ordering token.
            msg_id = getattr(payload, "msg_id", None)
            if msg_id is None:
                msg_id = getattr(
                    getattr(payload, "token", None), "msg_id", None
                )
        context: Optional[dict] = None
        if self._propagate_context:
            context = {"origin": self.node or src, "ts": self.env._now}
            if msg_id is not None:
                context["msg_id"] = msg_id
        link = self._links.get(dst)
        if link is None:
            link = self._links[dst] = _PeerLink(
                self, dst, self._send_queue_frames
            )
        if link.unreachable:
            # The link hit its reconnect cap and parked; queueing more
            # would only grow a backlog for a peer that is not coming
            # back on this address.
            self.messages_dropped += 1
            self.dropped_unreachable += 1
            self._trace_drop(src, dst, payload, "peer_unreachable")
            return
        src_raw = src.encode("utf-8")
        dst_raw = dst.encode("utf-8")
        if self._encode_into is not None:
            # Zero-copy encode: build the outer frame in the link's
            # reusable scratch (length patched once known), then
            # snapshot to immutable bytes -- the only allocation per
            # message, and required before queueing (writers must never
            # see a mutable buffer; see the module docstring).
            scratch = link.scratch
            scratch.clear()
            scratch += _LEN_PLACEHOLDER
            scratch += _SENT_AT.pack(self.env._now)
            scratch += _U16.pack(len(src_raw))
            scratch += src_raw
            scratch += _U16.pack(len(dst_raw))
            scratch += dst_raw
            self._encode_into(payload, scratch, context)
            _LEN.pack_into(scratch, 0, len(scratch) - _LEN.size)
            frame = bytes(scratch)
        else:
            if context is not None:
                body = self._encode(payload, trace_context=context)
            else:
                body = self._encode(payload)
            inner = (
                _SENT_AT.pack(self.env._now)
                + _U16.pack(len(src_raw)) + src_raw
                + _U16.pack(len(dst_raw)) + dst_raw
                + body
            )
            frame = _LEN.pack(len(inner)) + inner
        try:
            link.queue.put_nowait((self.env._now, msg_id, frame))
        except asyncio.QueueFull:
            # Bounded fire-and-forget queue: drop under sustained
            # backpressure, like a full kernel buffer.  The protocol's
            # retransmission repairs the loss.
            self.messages_dropped += 1
            self.dropped_backpressure += 1
            if self._m_drop_backpressure is not None:
                self._m_drop_backpressure.record()
            self._trace_drop(src, dst, payload, "backpressure")
            return
        depth = link.queue.qsize()
        if depth > self.peak_send_queue:
            self.peak_send_queue = depth
        if self._m_queue_depth is not None:
            self._m_queue_depth.record(depth)

    def broadcast(
        self, src: str, dsts: list[str], payload: Any, size: int = 128
    ) -> None:
        for dst in dsts:
            self.send(src, dst, payload, size)

    # -- receiving ----------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    header = await reader.readexactly(_LEN.size)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                (frame_len,) = _LEN.unpack(header)
                try:
                    inner = await reader.readexactly(frame_len)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                self._deliver_frame(inner, frame_len + _LEN.size)
        finally:
            writer.close()

    def _deliver_frame(self, inner: bytes, frame_bytes: int) -> None:
        (sent_at,) = _SENT_AT.unpack_from(inner, 0)
        pos = _SENT_AT.size
        (src_len,) = _U16.unpack_from(inner, pos)
        pos += 2
        src = inner[pos:pos + src_len].decode("utf-8")
        pos += src_len
        (dst_len,) = _U16.unpack_from(inner, pos)
        pos += 2
        dst = inner[pos:pos + dst_len].decode("utf-8")
        pos += dst_len
        context = None
        if self._decode_with_context is not None:
            # Zero-copy decode: the codec parses straight out of the
            # receive buffer through a memoryview -- no body copy.
            # Decoded messages own their leaves (codec contract), so
            # `inner` is free as soon as this returns.
            payload, context = self._decode_with_context(
                memoryview(inner)[pos:]
            )
        else:
            payload = self._decode(inner[pos:])
        if src in self._blocked:
            # Inbound half of a partition: frames already in flight (or
            # sent before the remote side learned of the cut) die here.
            self.messages_dropped += 1
            self.dropped_partition += 1
            self._trace_drop(src, dst, payload, "partition")
            return
        if context is not None and context.get("msg_id") is not None:
            tracer = self._tracer
            if tracer is not None:
                # The propagated context names the *origin* node and the
                # sender's node-local clock: the merge tool and the
                # lifecycle index can tie this arrival back to the send
                # even across clock domains.  Emitted as "meta" (not the
                # opt-in net firehose) because it carries the msg_id
                # correlation the default categories exist for, and only
                # for msg_id-bearing payloads so the volume stays at
                # value-message scale.
                tracer.emit(
                    "net.context", self.env._now, cat="meta", src=src,
                    dst=dst, origin=context.get("origin"),
                    msg_id=context["msg_id"], origin_ts=context.get("ts"),
                )
        receiver = self._hosts.get(dst)
        if receiver is None or receiver.crashed:
            self.messages_dropped += 1
            self._trace_drop(src, dst, payload, "dst_crashed")
            return
        now = self.env._now
        self.messages_delivered += 1
        self.bytes_delivered += frame_bytes
        envelope = Envelope(
            src=src, dst=dst, payload=payload, size=frame_bytes,
            sent_at=sent_at, delivered_at=now,
            dst_incarnation=receiver.incarnation, duplicated=False,
        )
        receiver.inbox.put_nowait(envelope)
        tracer = self._net_tracer
        if tracer is not None:
            tracer.emit(
                "net.deliver", now, src=src, dst=dst,
                type=type(payload).__name__,
                latency=now - sent_at,
                inbox_depth=len(receiver.inbox),
            )
