"""Length-prefixed TCP transport for the live runtime.

Implements the :class:`repro.runtime.kernel.Transport` interface over
real localhost sockets.  Hosts are in-process (their actors run on the
same :class:`~repro.runtime.asyncio_kernel.AsyncioKernel`), but every
``send`` is serialized with the wire codec and travels through the OS
TCP stack -- there is no in-process shortcut, so the live smoke test
exercises real framing, flow control and socket teardown.

Wire framing (outer; the codec frame has its own versioned header)::

    [u32 frame_len] [f64 sent_at] [u16 src_len][src] [u16 dst_len][dst]
    [codec frame]

``frame_len`` counts everything after itself.

Per-peer connection management: one :class:`_PeerLink` per destination
name, with

* a bounded send queue -- ``send`` is fire-and-forget; when the queue
  is full the message is *dropped* (and counted), exactly like a
  saturated kernel socket buffer under a fire-and-forget datagram
  model.  Loss is repaired by the protocol's retransmission, never by
  the transport;
* a writer task that applies backpressure with ``writer.drain()``;
* reconnect-with-backoff (50 ms doubling to 1 s) when the peer is not
  yet listening or the connection drops; the frame being written when
  a connection dies is retried on the next connection.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Any, Callable, Optional

from .asyncio_kernel import AsyncioKernel, LiveStore
from .kernel import Envelope

__all__ = ["LiveHost", "TcpTransport"]

_LEN = struct.Struct("!I")
_SENT_AT = struct.Struct("!d")
_U16 = struct.Struct("!H")

_BACKOFF_INITIAL = 0.05
_BACKOFF_CAP = 1.0


class LiveHost:
    """A named node bound to the live kernel (sim ``Host`` mirror)."""

    __slots__ = ("env", "name", "inbox", "crashed", "incarnation", "actor")

    def __init__(self, env: AsyncioKernel, name: str):
        self.env = env
        self.name = name
        self.inbox: LiveStore = LiveStore(env)
        self.crashed = False
        self.incarnation = 0
        self.actor: Optional[Any] = None

    def crash(self) -> None:
        self.crashed = True
        self.incarnation += 1
        self.inbox = LiveStore(self.env)

    def recover(self) -> None:
        self.crashed = False
        self.inbox = LiveStore(self.env)

    def __repr__(self) -> str:
        state = "crashed" if self.crashed else "up"
        return f"<LiveHost {self.name} ({state})>"


class _PeerLink:
    """Outbound connection to one destination name."""

    def __init__(self, transport: "TcpTransport", dst: str, queue_frames: int):
        self.transport = transport
        self.dst = dst
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_frames)
        self.task = asyncio.ensure_future(self._run())
        self.connects = 0

    async def _connect(self) -> tuple:
        backoff = _BACKOFF_INITIAL
        while True:
            address = self.transport._addresses.get(self.dst)
            if address is not None:
                try:
                    reader, writer = await asyncio.open_connection(*address)
                    self.connects += 1
                    return reader, writer
                except OSError:
                    pass
            await asyncio.sleep(backoff)
            backoff = min(backoff * 2, _BACKOFF_CAP)

    async def _run(self) -> None:
        writer = None
        pending: Optional[bytes] = None
        try:
            while True:
                if pending is None:
                    pending = await self.queue.get()
                if writer is None:
                    _reader, writer = await self._connect()
                try:
                    writer.write(pending)
                    # Backpressure: wait for the socket buffer to drain
                    # before pulling the next frame off the queue.
                    await writer.drain()
                    pending = None
                except (ConnectionError, OSError):
                    writer = None   # reconnect and retry this frame
        except asyncio.CancelledError:
            pass
        finally:
            if writer is not None:
                writer.close()

    def close(self) -> None:
        self.task.cancel()


class TcpTransport:
    """Transport over localhost TCP with per-peer links.

    Counter names mirror :class:`repro.sim.network.Network` so
    invariant checkers and reports read either backend unchanged.
    """

    def __init__(
        self,
        kernel: AsyncioKernel,
        bind_host: str = "127.0.0.1",
        bind_port: int = 0,
        send_queue_frames: int = 1024,
        encode: Optional[Callable[[Any], bytes]] = None,
        decode: Optional[Callable[[bytes], Any]] = None,
    ):
        if encode is None or decode is None:
            from . import codec

            encode = encode or codec.encode
            decode = decode or codec.decode
        self.env = kernel
        self._encode = encode
        self._decode = decode
        self._bind_host = bind_host
        self._bind_port = bind_port
        self._send_queue_frames = send_queue_frames
        self._hosts: dict[str, LiveHost] = {}
        # dst name -> (ip, port).  All local hosts map to this
        # transport's own listener; a multi-process deployment injects
        # remote entries here.
        self._addresses: dict[str, tuple[str, int]] = {}
        self._links: dict[str, _PeerLink] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self.address: Optional[tuple[str, int]] = None
        tracer = kernel.tracer
        self._net_tracer = (
            tracer if tracer is not None and tracer.wants_net else None
        )
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_reordered = 0
        self.bytes_delivered = 0

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> tuple[str, int]:
        """Bind the listener; register all local hosts at its address."""
        if self._server is not None:
            raise RuntimeError("transport already started")
        self._server = await asyncio.start_server(
            self._serve_connection, self._bind_host, self._bind_port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        for name in self._hosts:
            self._addresses.setdefault(name, self.address)
        return self.address

    async def stop(self) -> None:
        for link in self._links.values():
            link.close()
        await asyncio.gather(
            *(link.task for link in self._links.values()),
            return_exceptions=True,
        )
        self._links.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- hosts --------------------------------------------------------

    def add_host(self, name: str) -> LiveHost:
        if name not in self._hosts:
            self._hosts[name] = LiveHost(self.env, name)
            if self.address is not None:
                self._addresses.setdefault(name, self.address)
        return self._hosts[name]

    def host(self, name: str) -> LiveHost:
        try:
            return self._hosts[name]
        except KeyError:
            raise KeyError(f"unknown host {name!r}") from None

    def hosts(self) -> list[str]:
        return sorted(self._hosts)

    def register_address(self, name: str, address: tuple[str, int]) -> None:
        """Map a (possibly remote) host name to its listener address."""
        self._addresses[name] = address

    # -- sending ------------------------------------------------------

    def _trace_drop(self, src: str, dst: str, payload: Any, reason: str) -> None:
        tracer = self._net_tracer
        if tracer is not None:
            tracer.emit(
                "net.drop", self.env.now, src=src, dst=dst,
                type=type(payload).__name__, reason=reason,
            )

    def send(self, src: str, dst: str, payload: Any, size: int = 128) -> None:
        """Fire-and-forget: enqueue one framed message to ``dst``."""
        if size < 0:
            raise ValueError("size must be non-negative")
        self.messages_sent += 1
        sender = self._hosts.get(src)
        if sender is not None and sender.crashed:
            self.messages_dropped += 1
            self._trace_drop(src, dst, payload, "src_crashed")
            return
        tracer = self._net_tracer
        if tracer is not None:
            tracer.emit(
                "net.send", self.env.now, src=src, dst=dst,
                type=type(payload).__name__, size=size,
            )
        body = self._encode(payload)
        src_raw = src.encode("utf-8")
        dst_raw = dst.encode("utf-8")
        inner = (
            _SENT_AT.pack(self.env._now)
            + _U16.pack(len(src_raw)) + src_raw
            + _U16.pack(len(dst_raw)) + dst_raw
            + body
        )
        frame = _LEN.pack(len(inner)) + inner
        link = self._links.get(dst)
        if link is None:
            link = self._links[dst] = _PeerLink(
                self, dst, self._send_queue_frames
            )
        try:
            link.queue.put_nowait(frame)
        except asyncio.QueueFull:
            # Bounded fire-and-forget queue: drop under sustained
            # backpressure, like a full kernel buffer.  The protocol's
            # retransmission repairs the loss.
            self.messages_dropped += 1
            self._trace_drop(src, dst, payload, "backpressure")

    def broadcast(
        self, src: str, dsts: list[str], payload: Any, size: int = 128
    ) -> None:
        for dst in dsts:
            self.send(src, dst, payload, size)

    # -- receiving ----------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    header = await reader.readexactly(_LEN.size)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                (frame_len,) = _LEN.unpack(header)
                try:
                    inner = await reader.readexactly(frame_len)
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                self._deliver_frame(inner, frame_len + _LEN.size)
        finally:
            writer.close()

    def _deliver_frame(self, inner: bytes, frame_bytes: int) -> None:
        (sent_at,) = _SENT_AT.unpack_from(inner, 0)
        pos = _SENT_AT.size
        (src_len,) = _U16.unpack_from(inner, pos)
        pos += 2
        src = inner[pos:pos + src_len].decode("utf-8")
        pos += src_len
        (dst_len,) = _U16.unpack_from(inner, pos)
        pos += 2
        dst = inner[pos:pos + dst_len].decode("utf-8")
        pos += dst_len
        payload = self._decode(inner[pos:])
        receiver = self._hosts.get(dst)
        if receiver is None or receiver.crashed:
            self.messages_dropped += 1
            self._trace_drop(src, dst, payload, "dst_crashed")
            return
        now = self.env._now
        self.messages_delivered += 1
        self.bytes_delivered += frame_bytes
        envelope = Envelope(
            src=src, dst=dst, payload=payload, size=frame_bytes,
            sent_at=sent_at, delivered_at=now,
            dst_incarnation=receiver.incarnation, duplicated=False,
        )
        receiver.inbox.put_nowait(envelope)
        tracer = self._net_tracer
        if tracer is not None:
            tracer.emit(
                "net.deliver", now, src=src, dst=dst,
                type=type(payload).__name__,
                latency=now - sent_at,
                inbox_depth=len(receiver.inbox),
            )
