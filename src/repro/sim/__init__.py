"""Deterministic discrete-event simulation substrate.

Public surface:

* :class:`Environment`, :class:`Event`, :class:`Process`, timeouts and
  composite conditions -- the kernel (:mod:`repro.sim.core`);
* :class:`Store` -- blocking FIFO queues (:mod:`repro.sim.queues`);
* :class:`Network`, :class:`Host`, :class:`LinkSpec`, :class:`Envelope`
  -- the message-passing fabric (:mod:`repro.sim.network`);
* :class:`Server` -- CPU/disk capacity model (:mod:`repro.sim.resources`);
* :class:`Counter`, :class:`Series`, :class:`UtilisationProbe` --
  measurement probes (:mod:`repro.sim.monitor`);
* :class:`RngRegistry` -- named seeded RNG streams (:mod:`repro.sim.rng`).
"""

from .core import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .monitor import Counter, Series, UtilisationProbe, percentile
from .network import Envelope, Host, LinkSpec, Network
from .queues import QueueFull, Store
from .resources import Server
from .rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Envelope",
    "Environment",
    "Event",
    "Host",
    "Interrupt",
    "LinkSpec",
    "Network",
    "Process",
    "QueueFull",
    "RngRegistry",
    "Series",
    "Server",
    "SimulationError",
    "Store",
    "Timeout",
    "UtilisationProbe",
    "percentile",
]
