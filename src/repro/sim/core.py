"""Discrete-event simulation kernel.

This module implements a small, deterministic, generator-based
discrete-event simulator in the style of SimPy.  Protocol actors are
plain Python generator functions that ``yield`` events (timeouts, other
processes, custom events); the :class:`Environment` owns virtual time
and an event calendar, and advances time from one scheduled event to the
next.

Design notes
------------
* Determinism: events scheduled for the same instant fire in FIFO
  order of scheduling (a monotonically increasing sequence number breaks
  ties), so a fixed seed yields a bit-identical run.
* Failure handling: exceptions raised inside a process propagate to the
  processes waiting on it, and ultimately out of :meth:`Environment.run`
  if nobody catches them.  Errors never pass silently.
* Interrupts: a process may be interrupted (used for crash injection
  and timeout patterns) which raises :class:`Interrupt` inside it.
* Hot path: the calendar holds two kinds of entries -- full
  :class:`Event` objects (waitable, with callback lists) and pooled
  :class:`_ScheduledCall` records (plain ``fn(*args)`` at an instant,
  no callback list, recycled through a free list).  Message delivery,
  throttle wakeups and process resumption at the current instant all
  use the pooled fast path; the scheduling *order* is identical to the
  event-based layout, so same-seed runs stay bit-identical.
"""

from __future__ import annotations

import itertools
from heapq import heappop, heappush
from typing import Any, Callable, Generator, Iterable, Optional

from ..obs.trace import current_metrics, current_tracer
from ..runtime.kernel import Interrupt

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Base class for simulation kernel errors."""


_PENDING = object()


class _ScheduledCall:
    """A pooled calendar entry: run ``fn(*args)`` at an instant.

    Not an event -- nothing can wait on it, it has no value and no
    callback list, which is exactly why it is cheap.  Instances are
    recycled through the environment's free list once executed.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Optional[Callable], args: tuple):
        self.fn = fn
        self.args = args


class Event:
    """An event that may succeed (with a value) or fail (with an exception).

    Processes wait on events by yielding them.  Callbacks attached to an
    event run when the event is *processed* (popped from the calendar),
    in attachment order.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._defused = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        env = self.env
        heappush(env._queue, (env._now, next(env._counter), self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay.

    Construction is flattened (no chained ``__init__``) because a
    timeout is born triggered: it only exists to sit in the calendar.
    """

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._defused = False
        self.delay = delay
        env._schedule(self, delay)


class Process(Event):
    """A running process; itself an event that triggers on termination.

    The wrapped generator yields :class:`Event` instances.  When a
    yielded event succeeds, the generator is resumed with the event's
    value; when it fails, the exception is thrown into the generator.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        # Bootstrap: resume the process at the current instant.
        env._schedule_call(self._advance_checked, (True, None))

    @property
    def is_alive(self) -> bool:
        """True while the process has not terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process.

        Interrupting a terminated process is an error; interrupting a
        process that is waiting on an event detaches it from that event.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        self._detach_from_target()
        self.env._schedule_call(self._deliver_interrupt, (Interrupt(cause),))

    def _detach_from_target(self) -> None:
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    def _deliver_interrupt(self, exc: Interrupt) -> None:
        # The process may have acquired a (new) wait target between the
        # interrupt being requested and delivered; detach from it now or
        # its later firing would resume a terminated generator.
        if self.triggered:
            return  # terminated in the meantime: nothing to interrupt
        self._detach_from_target()
        self._advance(False, exc, None)

    def _resume(self, event: Event) -> None:
        if self._value is not _PENDING:   # i.e. ``self.triggered``
            # Stale wakeup: an event we were once waiting on fired after
            # the process already terminated (interrupt delivery race).
            if not event._ok:
                event._defused = True
            return
        self._target = None
        if event._ok:
            self._advance(True, event._value, None)
        else:
            self._advance(False, event._value, event)

    def _advance_checked(self, ok: bool, value: Any) -> None:
        """Scheduled-call entry point (bootstrap / already-processed
        targets); guards against the process having terminated in the
        meantime (interrupt delivered at the same instant)."""
        if self.triggered:
            return
        self._target = None
        self._advance(ok, value, None)

    def _advance(self, ok: bool, value: Any, failed_event: Optional[Event]) -> None:
        try:
            if ok:
                next_event = self._generator.send(value)
            else:
                # Mark the failure as handled: it is being delivered.
                if failed_event is not None:
                    failed_event._defused = True
                next_event = self._generator.throw(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An unhandled interrupt terminates the process with failure.
            self.fail(exc)
            return
        except BaseException as exc:  # propagate to waiters / run()
            self.fail(exc)
            return
        if not isinstance(next_event, Event):
            self._generator.close()
            self.fail(SimulationError(f"process yielded a non-event: {next_event!r}"))
            return
        if next_event.callbacks is None:
            # Already processed: resume immediately at this instant.  A
            # processed failure was consumed by whoever processed it, so
            # the re-delivery here needs no defuse bookkeeping.
            self.env._schedule_call(
                self._advance_checked, (next_event._ok, next_event._value)
            )
        else:
            self._target = next_event
            next_event.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    __slots__ = ("_events", "_done")

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._done = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {
            event: event._value
            for event in self._events
            if event.processed and event._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers as soon as any constituent event triggers."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when all constituent events have triggered."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self._events):
            self.succeed(self._collect())


# Free-list bound: enough to absorb bursts of same-instant deliveries
# without letting an idle pool pin memory.
_CALL_POOL_LIMIT = 512


class Environment:
    """Owns virtual time and the event calendar.

    Typical use::

        env = Environment()

        def clock(env, name, tick):
            while True:
                yield env.timeout(tick)
                print(name, env.now)

        env.process(clock(env, "fast", 0.5))
        env.run(until=2.0)
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Any]] = []
        self._counter = itertools.count()
        self._call_pool: list[_ScheduledCall] = []
        # Observability: adopt the process-wide tracer / metrics registry
        # at construction (see repro.obs.trace).  Both default to None;
        # probe sites guard with a single `is None` test.
        self.tracer = current_tracer()
        self.metrics = current_metrics()
        if self.metrics is not None:
            self.metrics.bind(self)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heappush(self._queue, (self._now + delay, next(self._counter), event))

    def _schedule_call(self, fn: Callable, args: tuple, delay: float = 0.0) -> None:
        """Schedule ``fn(*args)`` via the pooled fast path."""
        pool = self._call_pool
        if pool:
            call = pool.pop()
            call.fn = fn
            call.args = args
        else:
            call = _ScheduledCall(fn, args)
        heappush(self._queue, (self._now + delay, next(self._counter), call))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Return an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Return a fresh untriggered event."""
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Start a new process running ``generator``."""
        tracer = self.tracer
        if tracer is not None and tracer.wants_sim:
            tracer.emit(
                "sim.process",
                self._now,
                name=getattr(generator, "__name__", repr(generator)),
            )
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def call_later(self, delay: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` to run after ``delay`` time units.

        The hot-path scheduling primitive (message delivery, wakeups):
        it allocates no event and no callback list -- the calendar entry
        is a pooled record recycled after it runs.  Nothing can wait on
        a scheduled call; spawn a process or use :meth:`timeout` when a
        waitable event is needed.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self._schedule_call(fn, args, delay)

    def call_at(self, when: float, fn: Callable, *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute virtual time ``when``.

        Convenience over :meth:`call_later` for pre-compiled schedules
        (fault injection plans are authored in absolute sim time).
        """
        if when < self._now:
            raise ValueError(f"when ({when}) lies in the past (now={self._now})")
        self._schedule_call(fn, args, when - self._now)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event from the calendar."""
        if not self._queue:
            raise SimulationError("no more events")
        when, _, event = heappop(self._queue)
        self._now = when
        if event.__class__ is _ScheduledCall:
            fn, args = event.fn, event.args
            pool = self._call_pool
            if len(pool) < _CALL_POOL_LIMIT:
                event.fn = None
                event.args = ()
                pool.append(event)
            fn(*args)
            return
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event._defused:
            # A failure nobody consumed: crash the simulation loudly.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar empties or virtual time reaches ``until``.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if no event is scheduled at that instant.

        The drain loop is inlined (rather than delegating to
        :meth:`step`) -- it is the single hottest loop in the
        reproduction and the method-call overhead is measurable.
        """
        queue = self._queue
        pool = self._call_pool
        stop = None
        if until is not None:
            if until < self._now:
                raise ValueError(
                    f"until ({until}) lies in the past (now={self._now})"
                )
            stop = Event(self)
            stop._ok = True
            stop._value = None
            self._schedule(stop, until - self._now)
        while queue:
            t, _seq, event = heappop(queue)
            if event is stop:
                self._now = until
                return
            self._now = t
            if event.__class__ is _ScheduledCall:
                fn, args = event.fn, event.args
                if len(pool) < _CALL_POOL_LIMIT:
                    event.fn = None
                    event.args = ()
                    pool.append(event)
                fn(*args)
                continue
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event._defused:
                # A failure nobody consumed: crash the simulation loudly.
                raise event._value
        if until is not None:
            self._now = until
