"""Discrete-event simulation kernel.

This module implements a small, deterministic, generator-based
discrete-event simulator in the style of SimPy.  Protocol actors are
plain Python generator functions that ``yield`` events (timeouts, other
processes, custom events); the :class:`Environment` owns virtual time
and an event calendar, and advances time from one scheduled event to the
next.

Design notes
------------
* Determinism: events scheduled for the same instant fire in FIFO
  order of scheduling (a monotonically increasing sequence number breaks
  ties), so a fixed seed yields a bit-identical run.
* Failure handling: exceptions raised inside a process propagate to the
  processes waiting on it, and ultimately out of :meth:`Environment.run`
  if nobody catches them.  Errors never pass silently.
* Interrupts: a process may be interrupted (used for crash injection
  and timeout patterns) which raises :class:`Interrupt` inside it.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from ..obs.trace import current_metrics, current_tracer

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Base class for simulation kernel errors."""


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


_PENDING = object()


class Event:
    """An event that may succeed (with a value) or fail (with an exception).

    Processes wait on events by yielding them.  Callbacks attached to an
    event run when the event is *processed* (popped from the calendar),
    in attachment order.
    """

    def __init__(self, env: "Environment"):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event has not been triggered yet")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or exception if it failed)."""
        if self._value is _PENDING:
            raise SimulationError("event has not been triggered yet")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def __repr__(self) -> str:
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed virtual-time delay."""

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, delay)


class Process(Event):
    """A running process; itself an event that triggers on termination.

    The wrapped generator yields :class:`Event` instances.  When a
    yielded event succeeds, the generator is resumed with the event's
    value; when it fails, the exception is thrown into the generator.
    """

    def __init__(self, env: "Environment", generator: Generator):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self._target: Optional[Event] = None
        # Bootstrap: resume the process at the current instant.
        init = Event(env)
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        env._schedule(init)

    @property
    def is_alive(self) -> bool:
        """True while the process has not terminated."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Raise :class:`Interrupt` inside the process.

        Interrupting a terminated process is an error; interrupting a
        process that is waiting on an event detaches it from that event.
        """
        if self.triggered:
            raise SimulationError("cannot interrupt a terminated process")
        self._detach_from_target()
        hit = Event(self.env)
        hit._ok = False
        hit._value = Interrupt(cause)
        hit._defused = True  # the interrupt is delivered, not propagated
        hit.callbacks.append(self._deliver_interrupt)
        self.env._schedule(hit)

    def _detach_from_target(self) -> None:
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    def _deliver_interrupt(self, event: Event) -> None:
        # The process may have acquired a (new) wait target between the
        # interrupt being requested and delivered; detach from it now or
        # its later firing would resume a terminated generator.
        if self.triggered:
            return  # terminated in the meantime: nothing to interrupt
        self._detach_from_target()
        self._resume(event)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            # Stale wakeup: an event we were once waiting on fired after
            # the process already terminated (interrupt delivery race).
            if not event._ok:
                event._defused = True
            return
        self._target = None
        try:
            if event._ok:
                next_event = self._generator.send(event._value)
            else:
                # Mark the failure as handled: it is being delivered.
                event._defused = True
                next_event = self._generator.throw(event._value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt as exc:
            # An unhandled interrupt terminates the process with failure.
            self.fail(exc)
            return
        except BaseException as exc:  # propagate to waiters / run()
            self.fail(exc)
            return
        if not isinstance(next_event, Event):
            self._generator.close()
            self.fail(SimulationError(f"process yielded a non-event: {next_event!r}"))
            return
        if next_event.callbacks is None:
            # Already processed: resume immediately at this instant.
            immediate = Event(self.env)
            immediate._ok = next_event._ok
            immediate._value = next_event._value
            if not next_event._ok:
                immediate._defused = True
            immediate.callbacks.append(self._resume)
            self.env._schedule(immediate)
        else:
            self._target = next_event
            next_event.callbacks.append(self._resume)


class _Condition(Event):
    """Base for AnyOf / AllOf composite events."""

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env)
        self._events = list(events)
        self._done = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")
        if not self._events:
            self.succeed({})
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self) -> dict:
        return {
            event: event._value
            for event in self._events
            if event.processed and event._ok
        }

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AnyOf(_Condition):
    """Triggers as soon as any constituent event triggers."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        else:
            self.succeed(self._collect())


class AllOf(_Condition):
    """Triggers when all constituent events have triggered."""

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done += 1
        if self._done == len(self._events):
            self.succeed(self._collect())


class Environment:
    """Owns virtual time and the event calendar.

    Typical use::

        env = Environment()

        def clock(env, name, tick):
            while True:
                yield env.timeout(tick)
                print(name, env.now)

        env.process(clock(env, "fast", 0.5))
        env.run(until=2.0)
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        # Observability: adopt the process-wide tracer / metrics registry
        # at construction (see repro.obs.trace).  Both default to None;
        # probe sites guard with a single `is None` test.
        self.tracer = current_tracer()
        self.metrics = current_metrics()
        if self.metrics is not None:
            self.metrics.bind(self)

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._queue, (self._now + delay, next(self._counter), event))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Return an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Return a fresh untriggered event."""
        return Event(self)

    def process(self, generator: Generator) -> Process:
        """Start a new process running ``generator``."""
        tracer = self.tracer
        if tracer is not None and tracer.wants_sim:
            tracer.emit(
                "sim.process",
                self._now,
                name=getattr(generator, "__name__", repr(generator)),
            )
        return Process(self, generator)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def call_later(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run after ``delay`` time units.

        Cheaper than spawning a process; used on hot paths such as
        message delivery.  The returned event fires right after ``fn``.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        event = Event(self)
        event._ok = True
        event._value = None
        event.callbacks.append(lambda _evt: fn(*args))
        self._schedule(event, delay)
        return event

    def call_at(self, when: float, fn: Callable, *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute virtual time ``when``.

        Convenience over :meth:`call_later` for pre-compiled schedules
        (fault injection plans are authored in absolute sim time).
        """
        if when < self._now:
            raise ValueError(f"when ({when}) lies in the past (now={self._now})")
        return self.call_later(when - self._now, fn, *args)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event from the calendar."""
        if not self._queue:
            raise SimulationError("no more events")
        when, _, event = heapq.heappop(self._queue)
        self._now = when
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not getattr(event, "_defused", False):
            # A failure nobody consumed: crash the simulation loudly.
            raise event._value

    def run(self, until: Optional[float] = None) -> None:
        """Run until the calendar empties or virtual time reaches ``until``.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` even if no event is scheduled at that instant.
        """
        if until is not None:
            if until < self._now:
                raise ValueError(
                    f"until ({until}) lies in the past (now={self._now})"
                )
            stop = Event(self)
            stop._ok = True
            stop._value = None
            self._schedule(stop, until - self._now)
            while self._queue:
                if self._queue[0][2] is stop:
                    self._now = until
                    heapq.heappop(self._queue)
                    return
                self.step()
            self._now = until
            return
        while self._queue:
            self.step()
