"""Measurement probes for simulated experiments.

The paper's figures plot per-interval throughput, latency percentiles
and CPU utilisation against runtime.  :class:`Counter` accumulates
discrete occurrences (operations, bytes) and can be folded into
per-interval rates; :class:`Series` records raw ``(time, value)``
samples; :class:`UtilisationProbe` integrates busy time of a server.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Optional, Sequence

from .core import Environment

__all__ = ["Counter", "Series", "UtilisationProbe", "percentile"]


def percentile(samples: Sequence[float], pct: float) -> float:
    """Return the ``pct``-th percentile of ``samples`` (nearest-rank).

    Raises ``ValueError`` on an empty sample set: an experiment that
    measured nothing should fail loudly, not report 0 latency.
    """
    if not samples:
        raise ValueError("no samples")
    if not 0 < pct <= 100:
        raise ValueError(f"percentile {pct} out of (0, 100]")
    ordered = sorted(samples)
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


class Counter:
    """Counts timestamped occurrences, e.g. completed operations."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._times: list[float] = []
        self._weights: list[float] = []
        self._total = 0.0

    def record(self, weight: float = 1.0) -> None:
        """Record ``weight`` occurrences at the current instant."""
        self._times.append(self.env.now)
        self._weights.append(weight)
        self._total += weight

    @property
    def total(self) -> float:
        return self._total

    def rate_between(self, start: float, end: float) -> float:
        """Average rate (occurrences / time unit) over ``[start, end)``."""
        if end <= start:
            raise ValueError("end must be after start")
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        return sum(self._weights[lo:hi]) / (end - start)

    def interval_rates(
        self, interval: float, start: float = 0.0, end: Optional[float] = None
    ) -> list[tuple[float, float]]:
        """Fold occurrences into consecutive intervals.

        Returns ``[(interval_start, rate), ...]`` covering
        ``[start, end)``; ``end`` defaults to the current instant.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        stop = self.env.now if end is None else end
        points = []
        t = start
        while t < stop:
            t_next = min(t + interval, stop)
            points.append((t, self.rate_between(t, t_next)))
            t = t + interval
        return points


class Series:
    """Raw ``(time, value)`` samples, e.g. per-request latencies."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def record(self, value: float) -> None:
        self._times.append(self.env.now)
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> tuple[float, ...]:
        return tuple(self._values)

    @property
    def times(self) -> tuple[float, ...]:
        return tuple(self._times)

    def between(self, start: float, end: float) -> list[float]:
        """Values sampled in ``[start, end)``."""
        lo = bisect.bisect_left(self._times, start)
        hi = bisect.bisect_left(self._times, end)
        return self._values[lo:hi]

    def percentile(self, pct: float) -> float:
        return percentile(self._values, pct)

    def mean(self) -> float:
        if not self._values:
            raise ValueError("no samples")
        return sum(self._values) / len(self._values)


class UtilisationProbe:
    """Integrates the busy time of a server to report CPU utilisation."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._busy_since: Optional[float] = None
        self._episodes: list[tuple[float, float]] = []

    def busy(self) -> None:
        """Mark the server busy from now on (idempotent)."""
        if self._busy_since is None:
            self._busy_since = self.env.now

    def idle(self) -> None:
        """Mark the server idle from now on (idempotent)."""
        if self._busy_since is not None:
            self._episodes.append((self._busy_since, self.env.now))
            self._busy_since = None

    def utilisation_between(self, start: float, end: float) -> float:
        """Fraction of ``[start, end)`` spent busy, in ``[0, 1]``."""
        if end <= start:
            raise ValueError("end must be after start")
        episodes: Iterable[tuple[float, float]] = self._episodes
        if self._busy_since is not None:
            episodes = list(self._episodes) + [(self._busy_since, self.env.now)]
        busy = 0.0
        for b, e in episodes:
            busy += max(0.0, min(e, end) - max(b, start))
        return busy / (end - start)

    def interval_utilisation(
        self, interval: float, start: float = 0.0, end: Optional[float] = None
    ) -> list[tuple[float, float]]:
        """Per-interval utilisation points, mirroring Counter.interval_rates."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        stop = self.env.now if end is None else end
        points = []
        t = start
        while t < stop:
            points.append((t, self.utilisation_between(t, min(t + interval, stop))))
            t += interval
        return points
